//! The primal network-simplex backend.
//!
//! Modeled on the classic spanning-tree formulation: the s→t demand is
//! turned into node excesses, an artificial root with big-M arcs provides
//! the initial (strongly feasible) spanning-tree basis, and pivots exchange
//! one entering non-basic arc for one leaving tree arc until no arc has a
//! priced-out violation. The entering arc is chosen by a **block-search
//! pivot rule**: candidate arcs are scanned in fixed-size blocks from a
//! rotating cursor and the most-violating arc of the first non-empty block
//! enters — a middle ground between Dantzig's full scan (best pivots, slow
//! scans) and first-eligible (fast scans, many pivots).
//!
//! The leaving arc is the first blocking arc on the entering arc's tail
//! side and the last blocking arc on its head side (traversal order along
//! the pivot cycle), which keeps the basis strongly feasible and thereby
//! avoids cycling on degenerate pivots. Because strong feasibility is a
//! heuristic-strength argument under floating-point pricing rather than a
//! proof, a two-stage watchdog backs it up: after `4·m` consecutive
//! degenerate pivots the pricing rule falls back to Bland's rule
//! (first-eligible by arc id, provably acyclic under exact arithmetic),
//! and a hard pivot cap turns any remaining non-termination into
//! [`FlowError::PivotLimit`] instead of a silent loop.
//!
//! **Warm starts.** A successful solve can export its optimal basis as a
//! [`SpanningBasis`]; a later solve over the identical topology with
//! different costs restores the saved arc states and flows, re-prices the
//! potentials under the new costs, and re-pivots — typically a handful of
//! pivots instead of rebuilding from the artificial root. The restored
//! basis is validated (spanning-tree shape, flow conservation, bounds)
//! and any mismatch falls back to a cold solve; the infeasibility
//! classification is shared between the two paths, so a cost change that
//! makes the instance unroutable reports the identical
//! [`FlowError::Infeasible`] either way.
//!
//! **Numeric scale.** The big-M cost on artificial arcs is rounded up to
//! a power of two so it carries no representation error of its own, and
//! the pricing threshold is scale-aware: an arc's violation must clear
//! `PRICE_EPS` *or* the cancellation noise floor of its reduced-cost
//! computation (`O(ε_mach · (|c| + |π_u| + |π_v|))`), whichever is larger.
//! With the absolute-only threshold, instances mixing O(big-M) potentials
//! and O(1) costs (1000+ strings, adversarial cost spreads) could
//! misclassify arcs whose true reduced cost sits inside the rounding noise
//! and pivot endlessly on them.
//!
//! Tree bookkeeping is deliberately simple: parent/depth/potential arrays
//! are recomputed for the whole tree after each basis exchange (O(n) per
//! pivot). The solve cost is dominated by pricing scans over the arc list,
//! so the simple recompute keeps the code auditable at no measurable cost
//! for the bipartite transportation instances this crate serves.

use std::time::Instant;

use crate::basis::{topology_fingerprint, BasisArcState as ArcState, SpanningBasis};
use crate::graph::{FlowError, FlowNetwork, FlowResult, MinCostFlowSolver, SolveProfile, CAP_EPS};

/// Reduced-cost violation threshold for pricing: an arc enters only if its
/// violation exceeds this, so float noise cannot drive endless pivots.
const PRICE_EPS: f64 = 1e-9;

/// Relative component of the pricing threshold: the reduced cost
/// `c + π(u) − π(v)` carries rounding error proportional to the magnitudes
/// of its terms, so the eligibility cut scales with them. ~450 ε_mach —
/// comfortably above the cancellation noise, relatively negligible.
const PRICE_REL_EPS: f64 = 1e-13;

/// Residual flow left on an artificial arc above this is classified as
/// infeasibility (the routed amount fell short of the request).
const INFEASIBLE_EPS: f64 = 1e-9;

/// Consecutive degenerate (zero-delta) pivots tolerated per arc before the
/// pricing rule falls back to Bland's rule.
const STALL_FACTOR: usize = 4;

/// The primal network-simplex solver (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct NetworkSimplex;

#[derive(Debug, Clone)]
struct Arc {
    from: usize,
    to: usize,
    upper: f64,
    cost: f64,
    flow: f64,
    state: ArcState,
}

impl Arc {
    fn residual(&self) -> f64 {
        self.upper - self.flow
    }
}

struct Tree {
    /// Parent node (`usize::MAX` at the root).
    parent: Vec<usize>,
    /// Arc id connecting a node to its parent.
    parent_arc: Vec<usize>,
    depth: Vec<usize>,
    potential: Vec<f64>,
    /// Tree adjacency: basic arc ids per node.
    adjacency: Vec<Vec<usize>>,
}

impl MinCostFlowSolver for NetworkSimplex {
    fn name(&self) -> &'static str {
        "network_simplex"
    }

    fn solve(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<FlowResult, FlowError> {
        self.run(network, source, sink, amount, None)
            .map(|(result, _)| result)
    }

    fn solve_with_basis(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        self.run(network, source, sink, amount, None)
    }

    fn solve_warm(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
        basis: &SpanningBasis,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        self.run(network, source, sink, amount, Some(basis))
    }
}

impl NetworkSimplex {
    /// The shared cold/warm solve. `warm` is a basis to restore; if it does
    /// not match the instance or fails validation the solve silently starts
    /// cold, so a stale or corrupt basis can cost time but never
    /// correctness.
    fn run(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
        warm: Option<&SpanningBasis>,
    ) -> Result<(FlowResult, Option<SpanningBasis>), FlowError> {
        network.validate_endpoints(source, sink)?;
        let num_real = network.num_edges();
        if amount <= CAP_EPS || source == sink {
            return Ok((
                FlowResult {
                    amount,
                    cost: 0.0,
                    edge_flows: vec![0.0; num_real],
                    solver: self.name(),
                    bellman_ford_skipped: false,
                    warm_start: false,
                    profile: SolveProfile::default(),
                },
                None,
            ));
        }

        let init_started = Instant::now();
        let n = network.num_nodes();
        let root = n;

        // Big-M cost for the artificial arcs: any simple path of real arcs
        // is cheaper, so the optimum drives artificial flow to its minimum
        // (zero when the demand is routable, the unroutable remainder
        // otherwise). Rounded up to a power of two so M itself is exactly
        // representable and adds no rounding error of its own to the
        // potentials it dominates.
        let max_abs_cost = network
            .edges()
            .iter()
            .map(|e| e.cost.abs())
            .fold(0.0f64, f64::max);
        let big_m = f64::powi(2.0, (1.0 + (n as f64) * max_abs_cost).log2().ceil() as i32);

        // Real arcs first, then one artificial arc per node. The source's
        // excess flows source→root, the sink's root→sink; every other node
        // is balanced and its artificial arc just completes the initial
        // basis with zero flow.
        let mut arcs: Vec<Arc> = network
            .edges()
            .iter()
            .map(|e| Arc {
                from: e.from,
                to: e.to,
                upper: e.capacity,
                cost: e.cost,
                flow: 0.0,
                state: ArcState::Lower,
            })
            .collect();
        for v in 0..n {
            let excess = if v == source { amount } else { 0.0 };
            let deficit = if v == sink { amount } else { 0.0 };
            let (from, to, flow) = if excess >= deficit {
                (v, root, excess)
            } else {
                (root, v, deficit)
            };
            arcs.push(Arc {
                from,
                to,
                upper: f64::INFINITY,
                cost: big_m,
                flow,
                state: ArcState::Tree,
            });
        }
        let total_arcs = arcs.len();

        // Try to restore the saved basis. Flows and states are
        // cost-independent, so a matching basis is primal-feasible as-is;
        // only the potentials (recomputed below) change under new costs.
        let mut warm_used = false;
        if let Some(basis) = warm {
            if basis.matches(network, source, sink, amount)
                && restore(&mut arcs, basis, source, sink, amount)
            {
                warm_used = true;
            }
        }

        let mut tree = Tree {
            parent: vec![usize::MAX; n + 1],
            parent_arc: vec![usize::MAX; n + 1],
            depth: vec![0; n + 1],
            potential: vec![0.0; n + 1],
            adjacency: vec![Vec::new(); n + 1],
        };
        for (arc_id, arc) in arcs.iter().enumerate() {
            if arc.state == ArcState::Tree {
                tree.adjacency[arc.from].push(arc_id);
                tree.adjacency[arc.to].push(arc_id);
            }
        }
        if recompute_tree(&mut tree, &arcs, root) != n + 1 {
            // The restored basis did not span every node (only possible
            // with a corrupt basis — the cold basis always spans): rebuild
            // the artificial starting basis and solve cold.
            debug_assert!(warm_used, "the cold initial basis always spans");
            warm_used = false;
            for (offset, arc) in arcs[num_real..].iter_mut().enumerate() {
                let v = offset;
                arc.flow = if v == source || v == sink {
                    amount
                } else {
                    0.0
                };
                arc.state = ArcState::Tree;
            }
            for arc in &mut arcs[..num_real] {
                arc.flow = 0.0;
                arc.state = ArcState::Lower;
            }
            for adjacency in &mut tree.adjacency {
                adjacency.clear();
            }
            for v in 0..n {
                let arc_id = num_real + v;
                tree.adjacency[v].push(arc_id);
                tree.adjacency[root].push(arc_id);
            }
            let spanned = recompute_tree(&mut tree, &arcs, root);
            debug_assert_eq!(spanned, n + 1);
        }

        // Block-search pricing with the Bland's-rule watchdog.
        let block = ((total_arcs as f64).sqrt().ceil() as usize)
            .max(16)
            .min(total_arcs);
        let num_blocks = total_arcs.div_ceil(block);
        let mut cursor = 0usize;
        let mut clean_blocks = 0usize;
        // Hard termination backstop far above any plausible pivot count;
        // exceeding it is reported as `PivotLimit`, never a silent break.
        let pivot_cap = 1000 + 64 * total_arcs;
        let stall_cap = STALL_FACTOR * total_arcs;
        let mut stalled = 0usize;
        let mut bland = false;
        let mut pivots = 0usize;
        let optimize_started = Instant::now();
        let init_seconds = optimize_started
            .saturating_duration_since(init_started)
            .as_secs_f64();

        loop {
            let entering = if bland {
                // Bland's rule: the first eligible arc by id. Slower per
                // scan, provably cycle-free ordering.
                (0..total_arcs).find(|&arc_id| {
                    let arc = &arcs[arc_id];
                    violation(arc, &tree) > price_tolerance(arc, &tree)
                })
            } else {
                let mut best = None;
                let mut best_violation = 0.0f64;
                for offset in 0..block {
                    let arc_id = (cursor + offset) % total_arcs;
                    let arc = &arcs[arc_id];
                    let violation = violation(arc, &tree);
                    if violation > price_tolerance(arc, &tree) && violation > best_violation {
                        best_violation = violation;
                        best = Some(arc_id);
                    }
                }
                cursor = (cursor + block) % total_arcs;
                best
            };
            match entering {
                None => {
                    if bland {
                        // A full Bland scan found nothing eligible: optimal.
                        break;
                    }
                    clean_blocks += 1;
                    if clean_blocks >= num_blocks {
                        break;
                    }
                }
                Some(entering) => {
                    clean_blocks = 0;
                    let delta = pivot(&mut tree, &mut arcs, root, entering);
                    pivots += 1;
                    if pivots > pivot_cap {
                        return Err(FlowError::PivotLimit {
                            pivots: pivots as u64,
                        });
                    }
                    if delta > 0.0 {
                        stalled = 0;
                    } else {
                        stalled += 1;
                        if stalled > stall_cap {
                            bland = true;
                        }
                    }
                }
            }
        }

        // Any flow left on an artificial arc is demand the real network
        // could not carry — the identical classification on the cold and
        // warm paths.
        let leftover = arcs[num_real..]
            .iter()
            .map(|a| a.flow)
            .fold(0.0f64, f64::max);
        if leftover > INFEASIBLE_EPS {
            return Err(FlowError::Infeasible {
                routed: amount - leftover,
                requested: amount,
            });
        }

        let mut cost = 0.0;
        let mut edge_flows = vec![0.0f64; num_real];
        for (id, arc) in arcs[..num_real].iter().enumerate() {
            edge_flows[id] = arc.flow;
            cost += arc.flow * arc.cost;
        }
        let basis = SpanningBasis {
            topology: topology_fingerprint(network, source, sink, amount),
            num_nodes: n,
            num_real_arcs: num_real,
            states: arcs.iter().map(|a| a.state).collect(),
            flows: arcs.iter().map(|a| a.flow).collect(),
        };
        Ok((
            FlowResult {
                amount,
                cost,
                edge_flows,
                solver: self.name(),
                bellman_ford_skipped: false,
                warm_start: warm_used,
                profile: SolveProfile {
                    pivots: pivots as u64,
                    init_seconds,
                    optimize_seconds: optimize_started.elapsed().as_secs_f64(),
                },
            },
            Some(basis),
        ))
    }
}

/// Restores the saved per-arc states and flows onto a freshly built arc
/// list, validating bounds and flow conservation so a corrupt basis (e.g.
/// a tampered persisted file) degrades to a cold solve. Returns whether
/// the restore was applied.
fn restore(
    arcs: &mut [Arc],
    basis: &SpanningBasis,
    source: usize,
    sink: usize,
    amount: f64,
) -> bool {
    if basis.states.len() != arcs.len() {
        return false;
    }
    // Validate before mutating: bounds per arc, conservation per node.
    let amount_scale = basis
        .flows
        .iter()
        .fold(amount.abs().max(1.0), |acc, &flow| acc.max(flow.abs()));
    let bound_eps = 1e-9 * amount_scale;
    for (arc, &flow) in arcs.iter().zip(&basis.flows) {
        if !(-bound_eps..=arc.upper + bound_eps).contains(&flow) {
            return false;
        }
    }
    let mut balance = vec![0.0f64; basis.num_nodes + 1];
    for (arc, &flow) in arcs.iter().zip(&basis.flows) {
        balance[arc.from] -= flow;
        balance[arc.to] += flow;
    }
    // s–t conservation over real plus artificial arcs: the source emits
    // `amount`, the sink absorbs it, every other node (root included)
    // balances.
    balance[source] += amount;
    balance[sink] -= amount;
    let conservation_eps = 1e-7 * amount_scale;
    if balance.iter().any(|b| b.abs() > conservation_eps) {
        return false;
    }
    let tree_arcs = basis
        .states
        .iter()
        .filter(|&&s| s == ArcState::Tree)
        .count();
    if tree_arcs != basis.num_nodes {
        return false;
    }
    for ((arc, &state), &flow) in arcs.iter_mut().zip(&basis.states).zip(&basis.flows) {
        arc.state = state;
        arc.flow = flow;
    }
    true
}

/// Reduced cost `c + π(from) − π(to)` of an arc under the tree potentials.
fn reduced_cost(arc: &Arc, tree: &Tree) -> f64 {
    arc.cost + tree.potential[arc.from] - tree.potential[arc.to]
}

/// Scale-aware eligibility threshold for one arc: the fixed `PRICE_EPS`
/// floor or the rounding-noise scale of the reduced-cost cancellation,
/// whichever is larger. Potentials on instances still carrying big-M
/// artificial arcs in the basis are O(M); comparing their O(M·ε_mach)
/// cancellation noise against an absolute 1e-9 misclassifies arcs once
/// `M` crosses ~1e7 (1000+ strings with wide cost spreads).
fn price_tolerance(arc: &Arc, tree: &Tree) -> f64 {
    let scale = arc.cost.abs() + tree.potential[arc.from].abs() + tree.potential[arc.to].abs();
    PRICE_EPS.max(PRICE_REL_EPS * scale)
}

/// Pricing violation: positive iff pivoting the arc in improves the
/// objective (lower-bound arcs want negative reduced cost, upper-bound
/// arcs positive).
fn violation(arc: &Arc, tree: &Tree) -> f64 {
    match arc.state {
        ArcState::Tree => 0.0,
        ArcState::Lower => {
            if arc.residual() > CAP_EPS {
                -reduced_cost(arc, tree)
            } else {
                0.0
            }
        }
        ArcState::Upper => reduced_cost(arc, tree),
    }
}

/// Recomputes parent/depth/potential for the whole tree from `root` using
/// the current tree adjacency, returning how many nodes were reached (a
/// valid spanning tree reaches all of them). Tree arcs have zero reduced
/// cost, which fixes every potential relative to `π(root) = 0`.
fn recompute_tree(tree: &mut Tree, arcs: &[Arc], root: usize) -> usize {
    tree.parent[root] = usize::MAX;
    tree.parent_arc[root] = usize::MAX;
    tree.depth[root] = 0;
    tree.potential[root] = 0.0;
    let mut stack = vec![root];
    let mut visited = vec![false; tree.parent.len()];
    visited[root] = true;
    let mut reached = 1usize;
    while let Some(u) = stack.pop() {
        for idx in 0..tree.adjacency[u].len() {
            let arc_id = tree.adjacency[u][idx];
            let arc = &arcs[arc_id];
            let v = if arc.from == u { arc.to } else { arc.from };
            if visited[v] {
                continue;
            }
            visited[v] = true;
            reached += 1;
            tree.parent[v] = u;
            tree.parent_arc[v] = arc_id;
            tree.depth[v] = tree.depth[u] + 1;
            tree.potential[v] = if arc.from == u {
                // u → v basic: c + π(u) − π(v) = 0.
                tree.potential[u] + arc.cost
            } else {
                tree.potential[u] - arc.cost
            };
            stack.push(v);
        }
    }
    reached
}

/// One basis exchange around the entering arc's pivot cycle. Returns the
/// flow change `delta` pushed around the cycle (zero for a degenerate
/// pivot — the stall signal for the Bland's-rule watchdog).
fn pivot(tree: &mut Tree, arcs: &mut [Arc], root: usize, entering: usize) -> f64 {
    // Push direction: lower-bound arcs push from→to, upper-bound arcs
    // reverse flow to→from.
    let at_lower = arcs[entering].state == ArcState::Lower;
    let (tail, head) = if at_lower {
        (arcs[entering].from, arcs[entering].to)
    } else {
        (arcs[entering].to, arcs[entering].from)
    };

    // Walk both endpoints to the cycle apex, tracking the blocking arc with
    // the smallest residual in push direction. Tie rule (strong
    // feasibility): first blocking arc on the tail side (strict <), last on
    // the head side (<=).
    let mut delta = if at_lower {
        arcs[entering].residual()
    } else {
        arcs[entering].flow
    };
    let mut leaving = entering;
    // When the leaving arc blocks at its upper bound the basis exchange
    // parks it there; when it blocks at zero flow it parks at the lower
    // bound. The entering arc's own bound flips state instead.
    let mut leaving_at_upper = !at_lower;

    let (mut u, mut v) = (tail, head);
    while u != v {
        if tree.depth[u] >= tree.depth[v] {
            // Tail side: cycle direction runs parent→u, so an arc oriented
            // parent→u has residual headroom and an arc u→parent is drained.
            let arc_id = tree.parent_arc[u];
            let arc = &arcs[arc_id];
            let (room, hits_upper) = if arc.to == u {
                (arc.residual(), true)
            } else {
                (arc.flow, false)
            };
            if room < delta {
                delta = room;
                leaving = arc_id;
                leaving_at_upper = hits_upper;
            }
            u = tree.parent[u];
        } else {
            // Head side: cycle direction runs v→parent.
            let arc_id = tree.parent_arc[v];
            let arc = &arcs[arc_id];
            let (room, hits_upper) = if arc.from == v {
                (arc.residual(), true)
            } else {
                (arc.flow, false)
            };
            if room <= delta {
                delta = room;
                leaving = arc_id;
                leaving_at_upper = hits_upper;
            }
            v = tree.parent[v];
        }
    }

    // Apply the flow change around the cycle.
    if delta > 0.0 {
        if at_lower {
            arcs[entering].flow += delta;
        } else {
            arcs[entering].flow -= delta;
        }
        let (mut u, mut v) = (tail, head);
        while u != v {
            if tree.depth[u] >= tree.depth[v] {
                let arc_id = tree.parent_arc[u];
                if arcs[arc_id].to == u {
                    arcs[arc_id].flow += delta;
                } else {
                    arcs[arc_id].flow -= delta;
                }
                u = tree.parent[u];
            } else {
                let arc_id = tree.parent_arc[v];
                if arcs[arc_id].from == v {
                    arcs[arc_id].flow += delta;
                } else {
                    arcs[arc_id].flow -= delta;
                }
                v = tree.parent[v];
            }
        }
    }

    if leaving == entering {
        // The entering arc saturated before any tree arc blocked: it just
        // jumps to its other bound, the basis is unchanged.
        let arc = &mut arcs[entering];
        if at_lower {
            arc.flow = arc.upper;
            arc.state = ArcState::Upper;
        } else {
            arc.flow = 0.0;
            arc.state = ArcState::Lower;
        }
        return delta;
    }

    // Basis exchange: the leaving arc parks exactly at the bound it
    // blocked on, the entering arc joins the tree.
    {
        let arc = &mut arcs[leaving];
        if leaving_at_upper {
            arc.flow = arc.upper;
            arc.state = ArcState::Upper;
        } else {
            arc.flow = 0.0;
            arc.state = ArcState::Lower;
        }
    }
    arcs[entering].state = ArcState::Tree;
    let (lf, lt) = (arcs[leaving].from, arcs[leaving].to);
    tree.adjacency[lf].retain(|&a| a != leaving);
    tree.adjacency[lt].retain(|&a| a != leaving);
    let (ef, et) = (arcs[entering].from, arcs[entering].to);
    tree.adjacency[ef].push(entering);
    tree.adjacency[et].push(entering);
    recompute_tree(tree, arcs, root);
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SolverKind;

    #[test]
    fn simplex_matches_ssp_on_a_grid_of_random_instances() {
        // Deterministic xorshift-generated networks; optimal cost must agree
        // with the default backend to 1e-9.
        let mut state = 0x9e37_79b9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..40 {
            let n = 3 + (next() % 6) as usize;
            let mut net = FlowNetwork::new(n);
            // A guaranteed backbone path plus random extras.
            for v in 0..n - 1 {
                net.add_edge(v, v + 1, 1.0 + (next() % 4) as f64, (next() % 9) as f64);
            }
            for _ in 0..2 * n {
                let u = (next() % n as u64) as usize;
                let v = (next() % n as u64) as usize;
                if u != v {
                    net.add_edge(u, v, (next() % 5) as f64 * 0.5, (next() % 11) as f64);
                }
            }
            let amount = 0.5 + (next() % 3) as f64 * 0.5;
            let ssp = net.min_cost_flow_with(SolverKind::SuccessiveShortestPath, 0, n - 1, amount);
            let ns = net.min_cost_flow_with(SolverKind::NetworkSimplex, 0, n - 1, amount);
            match (ssp, ns) {
                (Ok(a), Ok(b)) => {
                    assert!(
                        (a.cost - b.cost).abs() < 1e-9,
                        "case {case}: ssp {} vs simplex {}",
                        a.cost,
                        b.cost
                    );
                }
                (
                    Err(FlowError::Infeasible {
                        routed: ra,
                        requested: qa,
                    }),
                    Err(FlowError::Infeasible {
                        routed: rb,
                        requested: qb,
                    }),
                ) => {
                    assert!((ra - rb).abs() < 1e-9, "case {case}: routed {ra} vs {rb}");
                    assert_eq!(qa.to_bits(), qb.to_bits(), "case {case}");
                }
                (a, b) => panic!("case {case}: diverging classification {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn simplex_handles_saturating_parallel_arcs() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_edge(0, 1, 1.0, 3.0);
        let b = net.add_edge(0, 1, 2.0, 1.0);
        let r = net
            .min_cost_flow_with(SolverKind::NetworkSimplex, 0, 1, 2.5)
            .unwrap();
        assert!((r.edge_flows[b] - 2.0).abs() < 1e-9, "cheap arc saturates");
        assert!((r.edge_flows[a] - 0.5).abs() < 1e-9);
        assert!((r.cost - (2.0 + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn simplex_totally_disconnected_sink_is_infeasible_with_zero_routed() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0, 1.0);
        let err = net
            .min_cost_flow_with(SolverKind::NetworkSimplex, 0, 2, 1.0)
            .unwrap_err();
        match err {
            FlowError::Infeasible { routed, requested } => {
                assert!(routed.abs() < 1e-9);
                assert!((requested - 1.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simplex_matches_ssp_under_adversarial_cost_spreads() {
        // Regression for the big-M precision bug: costs spanning nine
        // orders of magnitude put the artificial arcs' M (and thus the
        // transient potentials) far beyond the old absolute 1e-9 pricing
        // tolerance's useful range. The relative (scale-aware) tolerance
        // must still land on the ssp cost to relative 1e-9.
        let mut state = 0x51ed_270bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..20 {
            let n = 6 + (next() % 5) as usize;
            let mut net = FlowNetwork::new(n);
            // Backbone path so the instance stays feasible, with costs
            // alternating between O(1e9) and O(1e-3).
            for v in 0..n - 1 {
                let cost = if v % 2 == 0 {
                    1e9 + (next() % 1000) as f64
                } else {
                    1e-3 * (next() % 1000) as f64
                };
                net.add_edge(v, v + 1, 1.0 + (next() % 3) as f64, cost);
            }
            for _ in 0..3 * n {
                let u = (next() % n as u64) as usize;
                let v = (next() % n as u64) as usize;
                if u != v {
                    // Non-negative spreads only: a capacitated negative
                    // cycle would put the instance outside the
                    // cross-backend equivalence contract (ssp does not
                    // cancel cycles).
                    let cost = match next() % 3 {
                        0 => (next() % 2_000_000_000) as f64,
                        1 => 1e-6 * (next() % 1000) as f64,
                        _ => (next() % 100) as f64,
                    };
                    net.add_edge(u, v, 0.5 + (next() % 4) as f64 * 0.5, cost);
                }
            }
            let amount = 0.5 + (next() % 4) as f64 * 0.5;
            let ssp = net
                .min_cost_flow_with(SolverKind::SuccessiveShortestPath, 0, n - 1, amount)
                .unwrap_or_else(|e| panic!("case {case}: ssp failed: {e}"));
            let ns = net
                .min_cost_flow_with(SolverKind::NetworkSimplex, 0, n - 1, amount)
                .unwrap_or_else(|e| panic!("case {case}: simplex failed: {e}"));
            let scale = ssp.cost.abs().max(1.0);
            assert!(
                (ssp.cost - ns.cost).abs() <= 1e-9 * scale,
                "case {case}: ssp {} vs simplex {} (relative {})",
                ssp.cost,
                ns.cost,
                (ssp.cost - ns.cost).abs() / scale
            );
        }
    }

    #[test]
    fn warm_start_from_a_matching_basis_reaches_the_same_optimum() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0, 1.0);
        net.add_edge(0, 2, 2.0, 2.0);
        net.add_edge(1, 3, 2.0, 3.0);
        net.add_edge(2, 3, 2.0, 1.0);
        net.add_edge(1, 2, 1.0, 0.5);
        let (cold, basis) = net
            .min_cost_flow_with_basis(SolverKind::NetworkSimplex, 0, 3, 2.0)
            .unwrap();
        assert!(!cold.warm_start);
        let basis = basis.expect("the simplex exports its basis");

        // Same topology, shifted costs: the warm solve must agree with a
        // fresh cold solve on the re-costed instance.
        let mut recosted = FlowNetwork::new(4);
        recosted.add_edge(0, 1, 2.0, 4.0);
        recosted.add_edge(0, 2, 2.0, 0.5);
        recosted.add_edge(1, 3, 2.0, 1.0);
        recosted.add_edge(2, 3, 2.0, 5.0);
        recosted.add_edge(1, 2, 1.0, 2.0);
        let (warm, warm_basis) = net
            .min_cost_flow_warm(SolverKind::NetworkSimplex, 0, 3, 2.0, &basis)
            .unwrap();
        assert!(warm.warm_start, "matching basis must be reused");
        assert!(warm_basis.is_some());
        let (rewarm, _) = recosted
            .min_cost_flow_warm(SolverKind::NetworkSimplex, 0, 3, 2.0, &basis)
            .unwrap();
        assert!(rewarm.warm_start);
        let (recold, _) = recosted
            .min_cost_flow_with_basis(SolverKind::NetworkSimplex, 0, 3, 2.0)
            .unwrap();
        assert!(
            (rewarm.cost - recold.cost).abs() < 1e-9,
            "warm {} vs cold {}",
            rewarm.cost,
            recold.cost
        );
    }

    #[test]
    fn mismatched_or_corrupt_bases_fall_back_to_cold_solves() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0, 1.0);
        net.add_edge(1, 2, 2.0, 1.0);
        let (_, basis) = net
            .min_cost_flow_with_basis(SolverKind::NetworkSimplex, 0, 2, 1.0)
            .unwrap();
        let basis = basis.unwrap();

        // Topology change: an extra edge invalidates the fingerprint.
        let mut grown = net.clone();
        grown.add_edge(0, 2, 1.0, 10.0);
        let (r, _) = grown
            .min_cost_flow_warm(SolverKind::NetworkSimplex, 0, 2, 1.0, &basis)
            .unwrap();
        assert!(!r.warm_start, "fingerprint mismatch must solve cold");

        // Amount change invalidates too.
        let (r, _) = net
            .min_cost_flow_warm(SolverKind::NetworkSimplex, 0, 2, 1.5, &basis)
            .unwrap();
        assert!(!r.warm_start);

        // A corrupt basis (conservation violated) is rejected by restore.
        let mut corrupt = basis.clone();
        corrupt.flows[0] += 0.5;
        let (r, _) = net
            .min_cost_flow_warm(SolverKind::NetworkSimplex, 0, 2, 1.0, &corrupt)
            .unwrap();
        assert!(!r.warm_start, "corrupt flows must solve cold");
        assert!((r.cost - 2.0).abs() < 1e-9);

        // A corrupt basis with no spanning tree is rejected after the
        // adjacency rebuild.
        let mut no_tree = basis.clone();
        for state in &mut no_tree.states {
            *state = ArcState::Lower;
        }
        // Keep the tree-arc count plausible so the restore-time count
        // check alone does not catch it.
        for state in no_tree.states.iter_mut().take(no_tree.num_nodes) {
            *state = ArcState::Tree;
        }
        let (r, _) = net
            .min_cost_flow_warm(SolverKind::NetworkSimplex, 0, 2, 1.0, &no_tree)
            .unwrap();
        assert!((r.cost - 2.0).abs() < 1e-9, "still the right answer");
    }

    #[test]
    fn warm_infeasible_classification_matches_cold() {
        // A saturating instance: capacity 1.0 but 2.0 requested.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0, 1.0);
        net.add_edge(1, 2, 1.0, 1.0);
        let cold_err = net
            .min_cost_flow_with(SolverKind::NetworkSimplex, 0, 2, 2.0)
            .unwrap_err();

        // Build a matching basis from the *feasible* 2.0-capacity variant?
        // No — the fingerprint covers capacities, so the only way to get a
        // matching basis for the infeasible instance is a feasible solve of
        // the same topology. Route the feasible 1.0 first, then warm-start
        // the 2.0 request: the fingerprint (amount differs) rejects reuse
        // and the cold path classifies. Either way the error must be
        // identical to the cold solve.
        let (_, basis) = net
            .min_cost_flow_with_basis(SolverKind::NetworkSimplex, 0, 2, 1.0)
            .unwrap();
        let warm_err = net
            .min_cost_flow_warm(SolverKind::NetworkSimplex, 0, 2, 2.0, &basis.unwrap())
            .unwrap_err();
        assert_eq!(cold_err, warm_err);
        match warm_err {
            FlowError::Infeasible { routed, requested } => {
                assert!((routed - 1.0).abs() < 1e-9);
                assert!((requested - 2.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_symmetric_instances_terminate_and_match_ssp() {
        // Anti-cycling property: fully symmetric bipartite-like instances
        // (every cost equal, every capacity equal — the tiny-ising shape)
        // maximize degenerate ties. The solve must terminate without
        // tripping the pivot cap and agree with ssp.
        quickprop::check(
            "degenerate symmetric instances terminate",
            quickprop::Config::default().with_cases(40),
            |g| {
                let side = g.usize_in(2..6);
                let cost = (g.u64_in(0..=4)) as f64;
                let cap = 0.25 * (1 + g.u64_in(0..=3)) as f64;
                (side, cost, cap, g.u64())
            },
            |&(side, cost, cap, _seed)| {
                // S -> side left nodes -> side right nodes -> T, all arcs
                // identical: maximal symmetry, maximal degeneracy.
                let n = 2 * side + 2;
                let mut net = FlowNetwork::new(n);
                let (s, t) = (0, n - 1);
                for i in 0..side {
                    net.add_edge(s, 1 + i, cap, cost);
                    for j in 0..side {
                        net.add_edge(1 + i, 1 + side + j, cap, cost);
                    }
                    net.add_edge(1 + side + i, t, cap, cost);
                }
                let amount = cap * side as f64;
                let ns = net.min_cost_flow_with(SolverKind::NetworkSimplex, s, t, amount);
                let ssp = net.min_cost_flow_with(SolverKind::SuccessiveShortestPath, s, t, amount);
                match (ns, ssp) {
                    (Ok(a), Ok(b)) => {
                        let scale = b.cost.abs().max(1.0);
                        if (a.cost - b.cost).abs() <= 1e-9 * scale {
                            Ok(())
                        } else {
                            Err(format!("cost mismatch: simplex {} ssp {}", a.cost, b.cost))
                        }
                    }
                    (Err(a), Err(b)) if a == b => Ok(()),
                    (a, b) => Err(format!("classification diverged: {a:?} vs {b:?}")),
                }
            },
        );
    }

    #[test]
    fn pivot_limit_is_an_error_not_a_silent_break() {
        // There is no known input that trips the cap (that is the point of
        // the watchdog); assert the error type's contract instead.
        let err = FlowError::PivotLimit { pivots: 123 };
        assert!(err.to_string().contains("123"));
        assert_ne!(
            err,
            FlowError::Infeasible {
                routed: 0.0,
                requested: 1.0
            }
        );
    }
}
