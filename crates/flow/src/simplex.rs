//! The primal network-simplex backend.
//!
//! Modeled on the classic spanning-tree formulation: the s→t demand is
//! turned into node excesses, an artificial root with big-M arcs provides
//! the initial (strongly feasible) spanning-tree basis, and pivots exchange
//! one entering non-basic arc for one leaving tree arc until no arc has a
//! priced-out violation. The entering arc is chosen by a **block-search
//! pivot rule**: candidate arcs are scanned in fixed-size blocks from a
//! rotating cursor and the most-violating arc of the first non-empty block
//! enters — a middle ground between Dantzig's full scan (best pivots, slow
//! scans) and first-eligible (fast scans, many pivots).
//!
//! The leaving arc is the first blocking arc on the entering arc's tail
//! side and the last blocking arc on its head side (traversal order along
//! the pivot cycle), which keeps the basis strongly feasible and thereby
//! avoids cycling on degenerate pivots.
//!
//! Tree bookkeeping is deliberately simple: parent/depth/potential arrays
//! are recomputed for the whole tree after each basis exchange (O(n) per
//! pivot). The solve cost is dominated by pricing scans over the arc list,
//! so the simple recompute keeps the code auditable at no measurable cost
//! for the bipartite transportation instances this crate serves.

use std::time::Instant;

use crate::graph::{FlowError, FlowNetwork, FlowResult, MinCostFlowSolver, SolveProfile, CAP_EPS};

/// Reduced-cost violation threshold for pricing: an arc enters only if its
/// violation exceeds this, so float noise cannot drive endless pivots.
const PRICE_EPS: f64 = 1e-9;

/// Residual flow left on an artificial arc above this is classified as
/// infeasibility (the routed amount fell short of the request).
const INFEASIBLE_EPS: f64 = 1e-9;

/// The primal network-simplex solver (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct NetworkSimplex;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ArcState {
    /// In the spanning-tree basis.
    Tree,
    /// Non-basic at its lower bound (zero flow).
    Lower,
    /// Non-basic at its upper bound (flow == capacity).
    Upper,
}

#[derive(Debug, Clone)]
struct Arc {
    from: usize,
    to: usize,
    upper: f64,
    cost: f64,
    flow: f64,
    state: ArcState,
}

impl Arc {
    fn residual(&self) -> f64 {
        self.upper - self.flow
    }
}

struct Tree {
    /// Parent node (`usize::MAX` at the root).
    parent: Vec<usize>,
    /// Arc id connecting a node to its parent.
    parent_arc: Vec<usize>,
    depth: Vec<usize>,
    potential: Vec<f64>,
    /// Tree adjacency: basic arc ids per node.
    adjacency: Vec<Vec<usize>>,
}

impl MinCostFlowSolver for NetworkSimplex {
    fn name(&self) -> &'static str {
        "network_simplex"
    }

    fn solve(
        &self,
        network: &FlowNetwork,
        source: usize,
        sink: usize,
        amount: f64,
    ) -> Result<FlowResult, FlowError> {
        network.validate_endpoints(source, sink)?;
        let num_real = network.num_edges();
        if amount <= CAP_EPS || source == sink {
            return Ok(FlowResult {
                amount,
                cost: 0.0,
                edge_flows: vec![0.0; num_real],
                solver: self.name(),
                bellman_ford_skipped: false,
                profile: SolveProfile::default(),
            });
        }

        let init_started = Instant::now();
        let n = network.num_nodes();
        let root = n;

        // Big-M cost for the artificial arcs: any simple path of real arcs
        // is cheaper, so the optimum drives artificial flow to its minimum
        // (zero when the demand is routable, the unroutable remainder
        // otherwise).
        let max_abs_cost = network
            .edges()
            .iter()
            .map(|e| e.cost.abs())
            .fold(0.0f64, f64::max);
        let big_m = 1.0 + (n as f64) * max_abs_cost;

        // Real arcs first, then one artificial arc per node. The source's
        // excess flows source→root, the sink's root→sink; every other node
        // is balanced and its artificial arc just completes the initial
        // basis with zero flow.
        let mut arcs: Vec<Arc> = network
            .edges()
            .iter()
            .map(|e| Arc {
                from: e.from,
                to: e.to,
                upper: e.capacity,
                cost: e.cost,
                flow: 0.0,
                state: ArcState::Lower,
            })
            .collect();
        for v in 0..n {
            let excess = if v == source { amount } else { 0.0 };
            let deficit = if v == sink { amount } else { 0.0 };
            let (from, to, flow) = if excess >= deficit {
                (v, root, excess)
            } else {
                (root, v, deficit)
            };
            arcs.push(Arc {
                from,
                to,
                upper: f64::INFINITY,
                cost: big_m,
                flow,
                state: ArcState::Tree,
            });
        }
        let total_arcs = arcs.len();

        let mut tree = Tree {
            parent: vec![usize::MAX; n + 1],
            parent_arc: vec![usize::MAX; n + 1],
            depth: vec![0; n + 1],
            potential: vec![0.0; n + 1],
            adjacency: vec![Vec::new(); n + 1],
        };
        for v in 0..n {
            let arc_id = num_real + v;
            tree.adjacency[v].push(arc_id);
            tree.adjacency[root].push(arc_id);
        }
        recompute_tree(&mut tree, &arcs, root);

        // Block-search pricing.
        let block = ((total_arcs as f64).sqrt().ceil() as usize)
            .max(16)
            .min(total_arcs);
        let num_blocks = total_arcs.div_ceil(block);
        let mut cursor = 0usize;
        let mut clean_blocks = 0usize;
        // Termination backstop far above any plausible pivot count; strong
        // feasibility makes cycling a theoretical-only concern.
        let pivot_cap = 1000 + 64 * total_arcs;
        let mut pivots = 0usize;
        let optimize_started = Instant::now();
        let init_seconds = optimize_started
            .saturating_duration_since(init_started)
            .as_secs_f64();

        while clean_blocks < num_blocks {
            let mut entering = None;
            let mut best_violation = PRICE_EPS;
            for offset in 0..block {
                let arc_id = (cursor + offset) % total_arcs;
                let violation = violation(&arcs[arc_id], &tree);
                if violation > best_violation {
                    best_violation = violation;
                    entering = Some(arc_id);
                }
            }
            cursor = (cursor + block) % total_arcs;
            match entering {
                None => clean_blocks += 1,
                Some(entering) => {
                    clean_blocks = 0;
                    pivot(&mut tree, &mut arcs, root, entering);
                    pivots += 1;
                    debug_assert!(pivots <= pivot_cap, "network simplex failed to converge");
                    if pivots > pivot_cap {
                        break;
                    }
                }
            }
        }

        // Any flow left on an artificial arc is demand the real network
        // could not carry.
        let leftover = arcs[num_real..]
            .iter()
            .map(|a| a.flow)
            .fold(0.0f64, f64::max);
        if leftover > INFEASIBLE_EPS {
            return Err(FlowError::Infeasible {
                routed: amount - leftover,
                requested: amount,
            });
        }

        let mut cost = 0.0;
        let mut edge_flows = vec![0.0f64; num_real];
        for (id, arc) in arcs[..num_real].iter().enumerate() {
            edge_flows[id] = arc.flow;
            cost += arc.flow * arc.cost;
        }
        Ok(FlowResult {
            amount,
            cost,
            edge_flows,
            solver: self.name(),
            bellman_ford_skipped: false,
            profile: SolveProfile {
                pivots: pivots as u64,
                init_seconds,
                optimize_seconds: optimize_started.elapsed().as_secs_f64(),
            },
        })
    }
}

/// Reduced cost `c + π(from) − π(to)` of an arc under the tree potentials.
fn reduced_cost(arc: &Arc, tree: &Tree) -> f64 {
    arc.cost + tree.potential[arc.from] - tree.potential[arc.to]
}

/// Pricing violation: positive iff pivoting the arc in improves the
/// objective (lower-bound arcs want negative reduced cost, upper-bound
/// arcs positive).
fn violation(arc: &Arc, tree: &Tree) -> f64 {
    match arc.state {
        ArcState::Tree => 0.0,
        ArcState::Lower => {
            if arc.residual() > CAP_EPS {
                -reduced_cost(arc, tree)
            } else {
                0.0
            }
        }
        ArcState::Upper => reduced_cost(arc, tree),
    }
}

/// Recomputes parent/depth/potential for the whole tree from `root` using
/// the current tree adjacency. Tree arcs have zero reduced cost, which
/// fixes every potential relative to `π(root) = 0`.
fn recompute_tree(tree: &mut Tree, arcs: &[Arc], root: usize) {
    tree.parent[root] = usize::MAX;
    tree.parent_arc[root] = usize::MAX;
    tree.depth[root] = 0;
    tree.potential[root] = 0.0;
    let mut stack = vec![root];
    let mut visited = vec![false; tree.parent.len()];
    visited[root] = true;
    while let Some(u) = stack.pop() {
        for idx in 0..tree.adjacency[u].len() {
            let arc_id = tree.adjacency[u][idx];
            let arc = &arcs[arc_id];
            let v = if arc.from == u { arc.to } else { arc.from };
            if visited[v] {
                continue;
            }
            visited[v] = true;
            tree.parent[v] = u;
            tree.parent_arc[v] = arc_id;
            tree.depth[v] = tree.depth[u] + 1;
            tree.potential[v] = if arc.from == u {
                // u → v basic: c + π(u) − π(v) = 0.
                tree.potential[u] + arc.cost
            } else {
                tree.potential[u] - arc.cost
            };
            stack.push(v);
        }
    }
}

/// One basis exchange around the entering arc's pivot cycle.
fn pivot(tree: &mut Tree, arcs: &mut [Arc], root: usize, entering: usize) {
    // Push direction: lower-bound arcs push from→to, upper-bound arcs
    // reverse flow to→from.
    let at_lower = arcs[entering].state == ArcState::Lower;
    let (tail, head) = if at_lower {
        (arcs[entering].from, arcs[entering].to)
    } else {
        (arcs[entering].to, arcs[entering].from)
    };

    // Walk both endpoints to the cycle apex, tracking the blocking arc with
    // the smallest residual in push direction. Tie rule (strong
    // feasibility): first blocking arc on the tail side (strict <), last on
    // the head side (<=).
    let mut delta = if at_lower {
        arcs[entering].residual()
    } else {
        arcs[entering].flow
    };
    let mut leaving = entering;
    // When the leaving arc blocks at its upper bound the basis exchange
    // parks it there; when it blocks at zero flow it parks at the lower
    // bound. The entering arc's own bound flips state instead.
    let mut leaving_at_upper = !at_lower;

    let (mut u, mut v) = (tail, head);
    while u != v {
        if tree.depth[u] >= tree.depth[v] {
            // Tail side: cycle direction runs parent→u, so an arc oriented
            // parent→u has residual headroom and an arc u→parent is drained.
            let arc_id = tree.parent_arc[u];
            let arc = &arcs[arc_id];
            let (room, hits_upper) = if arc.to == u {
                (arc.residual(), true)
            } else {
                (arc.flow, false)
            };
            if room < delta {
                delta = room;
                leaving = arc_id;
                leaving_at_upper = hits_upper;
            }
            u = tree.parent[u];
        } else {
            // Head side: cycle direction runs v→parent.
            let arc_id = tree.parent_arc[v];
            let arc = &arcs[arc_id];
            let (room, hits_upper) = if arc.from == v {
                (arc.residual(), true)
            } else {
                (arc.flow, false)
            };
            if room <= delta {
                delta = room;
                leaving = arc_id;
                leaving_at_upper = hits_upper;
            }
            v = tree.parent[v];
        }
    }

    // Apply the flow change around the cycle.
    if delta > 0.0 {
        if at_lower {
            arcs[entering].flow += delta;
        } else {
            arcs[entering].flow -= delta;
        }
        let (mut u, mut v) = (tail, head);
        while u != v {
            if tree.depth[u] >= tree.depth[v] {
                let arc_id = tree.parent_arc[u];
                if arcs[arc_id].to == u {
                    arcs[arc_id].flow += delta;
                } else {
                    arcs[arc_id].flow -= delta;
                }
                u = tree.parent[u];
            } else {
                let arc_id = tree.parent_arc[v];
                if arcs[arc_id].from == v {
                    arcs[arc_id].flow += delta;
                } else {
                    arcs[arc_id].flow -= delta;
                }
                v = tree.parent[v];
            }
        }
    }

    if leaving == entering {
        // The entering arc saturated before any tree arc blocked: it just
        // jumps to its other bound, the basis is unchanged.
        let arc = &mut arcs[entering];
        if at_lower {
            arc.flow = arc.upper;
            arc.state = ArcState::Upper;
        } else {
            arc.flow = 0.0;
            arc.state = ArcState::Lower;
        }
        return;
    }

    // Basis exchange: the leaving arc parks exactly at the bound it
    // blocked on, the entering arc joins the tree.
    {
        let arc = &mut arcs[leaving];
        if leaving_at_upper {
            arc.flow = arc.upper;
            arc.state = ArcState::Upper;
        } else {
            arc.flow = 0.0;
            arc.state = ArcState::Lower;
        }
    }
    arcs[entering].state = ArcState::Tree;
    let (lf, lt) = (arcs[leaving].from, arcs[leaving].to);
    tree.adjacency[lf].retain(|&a| a != leaving);
    tree.adjacency[lt].retain(|&a| a != leaving);
    let (ef, et) = (arcs[entering].from, arcs[entering].to);
    tree.adjacency[ef].push(entering);
    tree.adjacency[et].push(entering);
    recompute_tree(tree, arcs, root);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SolverKind;

    #[test]
    fn simplex_matches_ssp_on_a_grid_of_random_instances() {
        // Deterministic xorshift-generated networks; optimal cost must agree
        // with the default backend to 1e-9.
        let mut state = 0x9e37_79b9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..40 {
            let n = 3 + (next() % 6) as usize;
            let mut net = FlowNetwork::new(n);
            // A guaranteed backbone path plus random extras.
            for v in 0..n - 1 {
                net.add_edge(v, v + 1, 1.0 + (next() % 4) as f64, (next() % 9) as f64);
            }
            for _ in 0..2 * n {
                let u = (next() % n as u64) as usize;
                let v = (next() % n as u64) as usize;
                if u != v {
                    net.add_edge(u, v, (next() % 5) as f64 * 0.5, (next() % 11) as f64);
                }
            }
            let amount = 0.5 + (next() % 3) as f64 * 0.5;
            let ssp = net.min_cost_flow_with(SolverKind::SuccessiveShortestPath, 0, n - 1, amount);
            let ns = net.min_cost_flow_with(SolverKind::NetworkSimplex, 0, n - 1, amount);
            match (ssp, ns) {
                (Ok(a), Ok(b)) => {
                    assert!(
                        (a.cost - b.cost).abs() < 1e-9,
                        "case {case}: ssp {} vs simplex {}",
                        a.cost,
                        b.cost
                    );
                }
                (
                    Err(FlowError::Infeasible {
                        routed: ra,
                        requested: qa,
                    }),
                    Err(FlowError::Infeasible {
                        routed: rb,
                        requested: qb,
                    }),
                ) => {
                    assert!((ra - rb).abs() < 1e-9, "case {case}: routed {ra} vs {rb}");
                    assert_eq!(qa.to_bits(), qb.to_bits(), "case {case}");
                }
                (a, b) => panic!("case {case}: diverging classification {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn simplex_handles_saturating_parallel_arcs() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_edge(0, 1, 1.0, 3.0);
        let b = net.add_edge(0, 1, 2.0, 1.0);
        let r = net
            .min_cost_flow_with(SolverKind::NetworkSimplex, 0, 1, 2.5)
            .unwrap();
        assert!((r.edge_flows[b] - 2.0).abs() < 1e-9, "cheap arc saturates");
        assert!((r.edge_flows[a] - 0.5).abs() < 1e-9);
        assert!((r.cost - (2.0 + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn simplex_totally_disconnected_sink_is_infeasible_with_zero_routed() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0, 1.0);
        let err = net
            .min_cost_flow_with(SolverKind::NetworkSimplex, 0, 2, 1.0)
            .unwrap_err();
        match err {
            FlowError::Infeasible { routed, requested } => {
                assert!(routed.abs() < 1e-9);
                assert!((requested - 1.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
