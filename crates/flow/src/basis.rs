//! The reusable spanning-tree basis for warm-start re-solves.
//!
//! A successful network-simplex solve ends on an optimal spanning-tree
//! basis: every arc is either basic (in the tree) or parked at one of its
//! bounds, and the arc flows are determined by that classification plus the
//! node balances. None of this depends on the arc *costs* — only on the
//! topology (nodes, arc endpoints, capacities) and the routed amount. A
//! [`SpanningBasis`] snapshots exactly the cost-independent part, so a
//! later solve over the same topology with different costs can restore the
//! basis, recompute the node potentials under the new costs (the
//! "re-pricing"), and re-pivot from a primal-feasible — typically
//! near-optimal — starting point instead of rebuilding from the artificial
//! big-M root.
//!
//! Reuse is only valid when the topology is unchanged; [`SpanningBasis`]
//! therefore carries a fingerprint over the structural inputs
//! ([`topology_fingerprint`]) and [`SpanningBasis::matches`] gates every
//! warm start. A mismatch (different node count, endpoints, capacities,
//! source/sink, or amount) silently degrades to a cold solve — never to a
//! wrong answer.

use crate::graph::FlowNetwork;

/// Basis classification of one arc. `Tree` arcs form the spanning tree
/// (including the artificial root arcs), non-basic arcs are parked at a
/// bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BasisArcState {
    /// In the spanning-tree basis.
    Tree,
    /// Non-basic at its lower bound (zero flow).
    Lower,
    /// Non-basic at its upper bound (flow == capacity).
    Upper,
}

impl BasisArcState {
    fn to_byte(self) -> u8 {
        match self {
            BasisArcState::Tree => 0,
            BasisArcState::Lower => 1,
            BasisArcState::Upper => 2,
        }
    }

    fn from_byte(byte: u8) -> Option<BasisArcState> {
        match byte {
            0 => Some(BasisArcState::Tree),
            1 => Some(BasisArcState::Lower),
            2 => Some(BasisArcState::Upper),
            _ => None,
        }
    }
}

/// FNV-1a over the structural (cost-independent) solve inputs: node count,
/// per-arc endpoints and capacity bits, source, sink, and the routed
/// amount's bits. Two solves with equal fingerprints present identical
/// feasible regions, so a basis from one is primal-feasible for the other.
pub fn topology_fingerprint(network: &FlowNetwork, source: usize, sink: usize, amount: f64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(network.num_nodes() as u64);
    eat(network.num_edges() as u64);
    for edge in network.edges() {
        eat(edge.from as u64);
        eat(edge.to as u64);
        eat(edge.capacity.to_bits());
    }
    eat(source as u64);
    eat(sink as u64);
    eat(amount.to_bits());
    hash
}

/// A saved optimal spanning-tree basis from a network-simplex solve: the
/// per-arc basis states and flows for every real arc plus the artificial
/// root arcs, guarded by a topology fingerprint (see the
/// [module docs](self)). Node potentials are deliberately *not* stored —
/// they depend on the costs and are recomputed at warm start.
#[derive(Debug, Clone)]
pub struct SpanningBasis {
    pub(crate) topology: u64,
    /// Real node count of the network the basis was extracted from (the
    /// artificial root is node `num_nodes`).
    pub(crate) num_nodes: usize,
    /// Real arc count; artificial arcs follow at ids
    /// `num_real_arcs..num_real_arcs + num_nodes`.
    pub(crate) num_real_arcs: usize,
    /// Basis state per arc, real arcs first then artificial.
    pub(crate) states: Vec<BasisArcState>,
    /// Flow per arc, same indexing as `states`.
    pub(crate) flows: Vec<f64>,
}

impl SpanningBasis {
    /// The topology fingerprint the basis was extracted under.
    pub fn topology(&self) -> u64 {
        self.topology
    }

    /// Real node count of the originating network.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Real arc count of the originating network.
    pub fn num_real_arcs(&self) -> usize {
        self.num_real_arcs
    }

    /// Whether this basis may warm-start a solve of the given instance:
    /// the structural fingerprint and dimensions must be identical. Cost
    /// changes are exactly what warm starts are for; anything else
    /// invalidates the basis.
    pub fn matches(&self, network: &FlowNetwork, source: usize, sink: usize, amount: f64) -> bool {
        self.num_nodes == network.num_nodes()
            && self.num_real_arcs == network.num_edges()
            && self.states.len() == self.num_real_arcs + self.num_nodes
            && self.flows.len() == self.states.len()
            && self.topology == topology_fingerprint(network, source, sink, amount)
    }

    /// Serialized per-arc states (one byte each) for the persistence layer.
    pub fn state_bytes(&self) -> Vec<u8> {
        self.states.iter().map(|s| s.to_byte()).collect()
    }

    /// Per-arc flows, same indexing as [`Self::state_bytes`].
    pub fn flows(&self) -> &[f64] {
        &self.flows
    }

    /// Rebuilds a basis from its serialized parts, validating lengths and
    /// state encodings. Returns `None` for any inconsistency — a corrupt
    /// persisted basis must degrade to a cold solve, never panic.
    pub fn from_raw(
        topology: u64,
        num_nodes: usize,
        num_real_arcs: usize,
        state_bytes: &[u8],
        flows: Vec<f64>,
    ) -> Option<SpanningBasis> {
        let total = num_real_arcs.checked_add(num_nodes)?;
        if state_bytes.len() != total || flows.len() != total {
            return None;
        }
        if flows.iter().any(|f| !f.is_finite()) {
            return None;
        }
        let states = state_bytes
            .iter()
            .map(|&b| BasisArcState::from_byte(b))
            .collect::<Option<Vec<_>>>()?;
        Some(SpanningBasis {
            topology,
            num_nodes,
            num_real_arcs,
            states,
            flows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> FlowNetwork {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0, 1.0);
        net.add_edge(1, 2, 2.0, 4.0);
        net
    }

    #[test]
    fn fingerprint_ignores_costs_but_sees_structure() {
        let base = topology_fingerprint(&net(), 0, 2, 1.0);

        // Costs do not participate.
        let mut recosted = FlowNetwork::new(3);
        recosted.add_edge(0, 1, 2.0, 9.0);
        recosted.add_edge(1, 2, 2.0, -3.0);
        assert_eq!(topology_fingerprint(&recosted, 0, 2, 1.0), base);

        // Capacities, endpoints, amount, and endpoints of the solve all do.
        let mut recap = net();
        recap.add_edge(0, 2, 1.0, 0.0);
        assert_ne!(topology_fingerprint(&recap, 0, 2, 1.0), base);
        assert_ne!(topology_fingerprint(&net(), 0, 1, 1.0), base);
        assert_ne!(topology_fingerprint(&net(), 0, 2, 2.0), base);
    }

    #[test]
    fn raw_round_trip_validates() {
        let basis = SpanningBasis {
            topology: 7,
            num_nodes: 3,
            num_real_arcs: 2,
            states: vec![BasisArcState::Tree; 5],
            flows: vec![0.5; 5],
        };
        let back = SpanningBasis::from_raw(
            basis.topology,
            basis.num_nodes,
            basis.num_real_arcs,
            &basis.state_bytes(),
            basis.flows().to_vec(),
        )
        .unwrap();
        assert_eq!(back.states, basis.states);
        assert_eq!(back.flows, basis.flows);

        // Bad state byte, bad lengths, and non-finite flows are rejected.
        assert!(SpanningBasis::from_raw(7, 3, 2, &[0, 1, 2, 3, 0], vec![0.0; 5]).is_none());
        assert!(SpanningBasis::from_raw(7, 3, 2, &[0; 4], vec![0.0; 5]).is_none());
        assert!(SpanningBasis::from_raw(7, 3, 2, &[0; 5], vec![f64::NAN; 5]).is_none());
    }
}
