//! Minimum-cost flow for the MarQSim transition-matrix optimization.
//!
//! §5 of the paper tunes the Markov transition matrix by solving a Min-Cost
//! Flow Problem on a bipartite network: source → `Prev` terms → `Next` terms
//! → sink, with the stationary distribution as the capacities of the outer
//! edges and the pairwise CNOT count as the cost of the inner edges. The
//! paper uses Python's `networkx` solver; this crate is the from-scratch
//! replacement, redesigned around a **pluggable solver API**:
//!
//! * [`FlowNetwork`] — a directed flow network with real-valued capacities
//!   and costs (Definition 2.7), stored as an immutable edge list.
//! * [`MinCostFlowSolver`] — the backend trait: `name()` plus
//!   `solve(&network, source, sink, amount)`. Backends build their own
//!   per-solve working state over a shared CSR residual core (`csr`), so
//!   adding a solver never touches the network type or its callers.
//! * [`SolverKind`] — the registered backends:
//!   [`SolverKind::SuccessiveShortestPath`] (`ssp`, the default — Johnson
//!   potentials with a Dijkstra inner loop, preserving the historical
//!   solver's arc-order tie-breaking, with a recorded Bellman–Ford skip
//!   when all costs are non-negative) and [`SolverKind::NetworkSimplex`]
//!   (`network_simplex` — primal network simplex on a spanning-tree basis
//!   with a block-search pivot rule).
//! * [`bipartite`] — the MarQSim-shaped bipartite transportation network:
//!   given a marginal distribution `π` and a cost matrix, it returns the
//!   optimal flow between `Prev` and `Next` copies of the states, under any
//!   backend ([`bipartite::solve_with`]).
//! * [`SpanningBasis`] — warm-start re-solves: the network simplex exports
//!   its optimal spanning-tree basis, and a later solve over the same
//!   topology with different costs re-prices and re-pivots from it
//!   ([`FlowNetwork::min_cost_flow_warm`]) instead of rebuilding from the
//!   artificial root — the cost-perturbation shape of `P_rp` sampling and
//!   sweep grids. Backends without warm support fall back to cold solves.
//!
//! On networks **without negative-cost cycles** — which includes every
//! MarQSim model (CNOT counts are non-negative) — every backend reports
//! the same optimal cost (the cross-backend equivalence property the test
//! suite enforces to 1e-9) and the same [`FlowError`] classification;
//! individually optimal *flows* may differ when the optimum is not unique.
//! Networks that do contain a capacitated negative-cost cycle are outside
//! the equivalence contract: successive shortest paths solves the pure
//! s→t problem (it never circulates flow that does not serve the demand),
//! while the network simplex returns the true minimum-cost flow, which
//! additionally cancels such cycles. See `docs/flow.md` for the
//! architecture and how to add a backend.
//!
//! # Example
//!
//! ```
//! use marqsim_flow::{FlowNetwork, SolverKind};
//!
//! // Send one unit from 0 to 3 over two parallel routes with different costs.
//! let mut net = FlowNetwork::new(4);
//! net.add_edge(0, 1, 1.0, 1.0);
//! net.add_edge(1, 3, 1.0, 1.0);
//! net.add_edge(0, 2, 1.0, 5.0);
//! net.add_edge(2, 3, 1.0, 5.0);
//! let result = net.min_cost_flow(0, 3, 1.0).unwrap();
//! assert!((result.cost - 2.0).abs() < 1e-9);
//!
//! // The same solve through the network-simplex backend: equal optimum.
//! let simplex = net
//!     .min_cost_flow_with(SolverKind::NetworkSimplex, 0, 3, 1.0)
//!     .unwrap();
//! assert!((simplex.cost - result.cost).abs() < 1e-9);
//! ```

mod basis;
mod csr;
mod graph;
mod simplex;
mod ssp;

pub mod bipartite;

pub use basis::{topology_fingerprint, SpanningBasis};
pub use graph::{
    FlowEdge, FlowError, FlowNetwork, FlowResult, MinCostFlowSolver, SolveProfile, SolverKind,
};
pub use simplex::NetworkSimplex;
pub use ssp::SuccessiveShortestPath;
