//! Minimum-cost flow for the MarQSim transition-matrix optimization.
//!
//! §5 of the paper tunes the Markov transition matrix by solving a Min-Cost
//! Flow Problem on a bipartite network: source → `Prev` terms → `Next` terms
//! → sink, with the stationary distribution as the capacities of the outer
//! edges and the pairwise CNOT count as the cost of the inner edges. The
//! paper uses Python's `networkx` solver; this crate is the from-scratch
//! replacement:
//!
//! * [`FlowNetwork`] — a directed flow network with real-valued capacities
//!   and costs (Definition 2.7).
//! * [`FlowNetwork::min_cost_flow`] — successive-shortest-path min-cost flow
//!   with Johnson potentials (Dijkstra inner loop), supporting fractional
//!   capacities.
//! * [`bipartite`] — the MarQSim-shaped bipartite transportation network:
//!   given a marginal distribution `π` and a cost matrix, it returns the
//!   optimal flow between `Prev` and `Next` copies of the states.
//!
//! # Example
//!
//! ```
//! use marqsim_flow::FlowNetwork;
//!
//! // Send one unit from 0 to 3 over two parallel routes with different costs.
//! let mut net = FlowNetwork::new(4);
//! net.add_edge(0, 1, 1.0, 1.0);
//! net.add_edge(1, 3, 1.0, 1.0);
//! net.add_edge(0, 2, 1.0, 5.0);
//! net.add_edge(2, 3, 1.0, 5.0);
//! let result = net.min_cost_flow(0, 3, 1.0).unwrap();
//! assert!((result.cost - 2.0).abs() < 1e-9);
//! ```

mod graph;

pub mod bipartite;

pub use graph::{FlowError, FlowNetwork, FlowResult};
