//! The Table 1 benchmark suite.

use std::f64::consts::PI;

use marqsim_fermion::molecular::{molecular_hamiltonian, MolecularParams};
use marqsim_fermion::syk::{syk_hamiltonian, SykParams};
use marqsim_pauli::Hamiltonian;

/// How large the generated benchmarks should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// The paper's sizes (qubit counts 8–14, hundreds of Pauli strings).
    /// Gate-count experiments run at this scale; exact-unitary fidelity at 12
    /// or more qubits is expensive on a CPU.
    Full,
    /// A scaled-down suite (at most 8 qubits, tens of Pauli strings) with the
    /// same relative structure, used by tests and quick fidelity sweeps.
    Reduced,
}

/// Which generator family a benchmark comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkKind {
    /// Synthetic electronic-structure system (PySCF substitution).
    Molecular,
    /// Sachdev–Ye–Kitaev instance.
    Syk,
}

/// One benchmark of the evaluation suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The paper's benchmark name (e.g. `"Na+"`, `"SYK model 1"`).
    pub name: &'static str,
    /// Which generator produced it.
    pub kind: BenchmarkKind,
    /// Number of qubits.
    pub qubits: usize,
    /// Number of Pauli strings (matches Table 1 at full scale).
    pub pauli_strings: usize,
    /// Evolution time `t` used in the evaluation.
    pub time: f64,
    /// The Hamiltonian itself.
    pub hamiltonian: Hamiltonian,
}

/// Specification of one Table 1 row.
struct Spec {
    name: &'static str,
    kind: BenchmarkKind,
    qubits: usize,
    strings: usize,
    time: f64,
    seed: u64,
}

fn table1_specs() -> Vec<Spec> {
    vec![
        Spec {
            name: "Na+",
            kind: BenchmarkKind::Molecular,
            qubits: 8,
            strings: 60,
            time: PI / 4.0,
            seed: 101,
        },
        Spec {
            name: "Cl-",
            kind: BenchmarkKind::Molecular,
            qubits: 8,
            strings: 60,
            time: PI / 4.0,
            seed: 102,
        },
        Spec {
            name: "Ar",
            kind: BenchmarkKind::Molecular,
            qubits: 8,
            strings: 60,
            time: PI / 4.0,
            seed: 103,
        },
        Spec {
            name: "OH-",
            kind: BenchmarkKind::Molecular,
            qubits: 10,
            strings: 275,
            time: PI / 4.0,
            seed: 104,
        },
        Spec {
            name: "HF",
            kind: BenchmarkKind::Molecular,
            qubits: 10,
            strings: 275,
            time: PI / 4.0,
            seed: 105,
        },
        Spec {
            name: "LiH (froze)",
            kind: BenchmarkKind::Molecular,
            qubits: 10,
            strings: 275,
            time: PI / 4.0,
            seed: 106,
        },
        Spec {
            name: "BeH2 (froze)",
            kind: BenchmarkKind::Molecular,
            qubits: 12,
            strings: 661,
            time: PI / 4.0,
            seed: 107,
        },
        Spec {
            name: "LiH",
            kind: BenchmarkKind::Molecular,
            qubits: 12,
            strings: 614,
            time: PI / 4.0,
            seed: 108,
        },
        Spec {
            name: "H2O",
            kind: BenchmarkKind::Molecular,
            qubits: 12,
            strings: 550,
            time: PI / 4.0,
            seed: 109,
        },
        Spec {
            name: "SYK model 1",
            kind: BenchmarkKind::Syk,
            qubits: 8,
            strings: 210,
            time: 0.15,
            seed: 110,
        },
        Spec {
            name: "SYK model 2",
            kind: BenchmarkKind::Syk,
            qubits: 10,
            strings: 210,
            time: 0.15,
            seed: 111,
        },
        Spec {
            name: "BeH2",
            kind: BenchmarkKind::Syk,
            qubits: 14,
            strings: 661,
            time: 0.15,
            seed: 112,
        },
    ]
}

/// Generates one benchmark from its spec at the requested scale.
fn build(spec: &Spec, scale: SuiteScale) -> Benchmark {
    let (qubits, strings) = match scale {
        SuiteScale::Full => (spec.qubits, spec.strings),
        SuiteScale::Reduced => (spec.qubits.min(8), (spec.strings / 6).clamp(12, 60)),
    };
    let hamiltonian = match spec.kind {
        BenchmarkKind::Molecular => {
            // Increase two-body density until the generator produces at least
            // the requested number of strings, then trim to the exact count.
            let mut density = 0.3;
            loop {
                let params = MolecularParams {
                    spin_orbitals: qubits,
                    seed: spec.seed,
                    one_body_scale: 1.0,
                    two_body_scale: 0.35,
                    two_body_density: density,
                };
                let ham = molecular_hamiltonian(&params, Some(strings))
                    .expect("molecular generator always yields terms");
                if ham.num_terms() >= strings || density >= 1.0 {
                    break ham;
                }
                density = (density + 0.2).min(1.0);
            }
        }
        BenchmarkKind::Syk => {
            // Pick the number of Majoranas that fits the qubit count, then
            // trim to the requested coupling count.
            let params = SykParams {
                majoranas: 2 * qubits,
                coupling: 1.0,
                seed: spec.seed,
            };
            syk_hamiltonian(&params, Some(strings))
        }
    };
    Benchmark {
        name: spec.name,
        kind: spec.kind,
        qubits,
        pauli_strings: hamiltonian.num_terms(),
        time: spec.time,
        hamiltonian,
    }
}

/// Generates the full Table 1 suite at the requested scale.
pub fn table1_suite(scale: SuiteScale) -> Vec<Benchmark> {
    table1_specs().iter().map(|s| build(s, scale)).collect()
}

/// The benchmark names of Table 1, in table order. Useful for constructing
/// the suite benchmark-by-benchmark (e.g. in parallel with
/// [`benchmark_by_name`]) without building every Hamiltonian up front.
pub fn table1_names() -> Vec<&'static str> {
    table1_specs().iter().map(|s| s.name).collect()
}

/// Generates a single named benchmark from the Table 1 suite.
///
/// Returns `None` if the name is not in the suite. Names match Table 1
/// (e.g. `"Na+"`, `"LiH (froze)"`, `"SYK model 1"`).
pub fn benchmark_by_name(name: &str, scale: SuiteScale) -> Option<Benchmark> {
    table1_specs()
        .iter()
        .find(|s| s.name == name)
        .map(|s| build(s, scale))
}

/// The tiny fixed `(name, hamiltonian, time)` set the golden regression
/// files (`tests/golden/`) are rendered on. **One** definition, shared by
/// the golden tests and the serve smoke's over-TCP replay — editing it
/// means re-blessing the goldens (`MARQSIM_GOLDEN_REGEN=1`), and keeping a
/// single source prevents the two consumers from silently diverging.
pub fn golden_tiny_benchmarks() -> Vec<(&'static str, Hamiltonian, f64)> {
    vec![
        (
            "example-4.1",
            Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").expect("fixed input"),
            std::f64::consts::FRAC_PI_4,
        ),
        (
            "tiny-ising",
            Hamiltonian::parse("1.0 ZZI + 0.8 IZZ + 0.5 XII + 0.5 IXI + 0.5 IIX")
                .expect("fixed input"),
            0.5,
        ),
        (
            "tiny-heisenberg",
            Hamiltonian::parse("0.6 XXII + 0.6 YYII + 0.6 ZZII + 0.4 IXXI + 0.4 IYYI + 0.4 IZZI")
                .expect("fixed input"),
            0.4,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_suite_has_twelve_benchmarks() {
        let suite = table1_suite(SuiteScale::Reduced);
        assert_eq!(suite.len(), 12);
        for b in &suite {
            assert!(b.qubits <= 8);
            assert!(b.hamiltonian.num_terms() >= 10);
            assert_eq!(b.hamiltonian.num_qubits(), b.qubits);
            assert_eq!(b.hamiltonian.num_terms(), b.pauli_strings);
        }
    }

    #[test]
    fn benchmark_lookup_by_name() {
        let b = benchmark_by_name("Na+", SuiteScale::Reduced).unwrap();
        assert_eq!(b.name, "Na+");
        assert!(benchmark_by_name("Unobtainium", SuiteScale::Reduced).is_none());
    }

    #[test]
    fn full_scale_matches_table_1_metadata() {
        // Spot-check two entries at full scale without building the whole
        // (more expensive) suite.
        let na = benchmark_by_name("Na+", SuiteScale::Full).unwrap();
        assert_eq!(na.qubits, 8);
        assert_eq!(na.pauli_strings, 60);
        assert!((na.time - PI / 4.0).abs() < 1e-12);

        let syk = benchmark_by_name("SYK model 1", SuiteScale::Full).unwrap();
        assert_eq!(syk.qubits, 8);
        assert_eq!(syk.pauli_strings, 210);
        assert!((syk.time - 0.15).abs() < 1e-12);
    }

    #[test]
    fn benchmarks_are_reproducible() {
        let a = benchmark_by_name("HF", SuiteScale::Reduced).unwrap();
        let b = benchmark_by_name("HF", SuiteScale::Reduced).unwrap();
        assert_eq!(a.hamiltonian, b.hamiltonian);
    }

    #[test]
    fn distinct_benchmarks_have_distinct_hamiltonians() {
        let a = benchmark_by_name("Na+", SuiteScale::Reduced).unwrap();
        let b = benchmark_by_name("Cl-", SuiteScale::Reduced).unwrap();
        assert_ne!(a.hamiltonian, b.hamiltonian);
    }
}
