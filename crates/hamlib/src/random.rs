//! Random Hamiltonians for the scalability study (Table 2).
//!
//! §6.6 of the paper benchmarks compilation time on randomly generated
//! Hamiltonians with 10/20/30 qubits and 100/500/1000 Pauli strings. This
//! module reproduces that workload generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use marqsim_pauli::{Hamiltonian, PauliOp, PauliString, Term};

/// Parameters of the random-Hamiltonian generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomHamiltonianParams {
    /// Number of qubits.
    pub qubits: usize,
    /// Number of distinct Pauli strings to generate.
    pub terms: usize,
    /// Probability that a given qubit of a string is the identity (controls
    /// the typical Pauli weight; molecular Hamiltonians are sparse in this
    /// sense).
    pub identity_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomHamiltonianParams {
    fn default() -> Self {
        RandomHamiltonianParams {
            qubits: 10,
            terms: 100,
            identity_bias: 0.6,
            seed: 1,
        }
    }
}

/// Generates a random Hamiltonian with the requested number of distinct
/// Pauli strings and coefficients drawn uniformly from `(0, 1]`.
///
/// # Panics
///
/// Panics if `terms == 0`, `qubits == 0`, or more distinct strings are
/// requested than exist on the given number of qubits.
pub fn random_hamiltonian(params: &RandomHamiltonianParams) -> Hamiltonian {
    assert!(params.qubits > 0, "need at least one qubit");
    assert!(params.terms > 0, "need at least one term");
    let capacity = 4f64.powi(params.qubits.min(15) as i32);
    assert!(
        params.qubits > 15 || (params.terms as f64) < capacity,
        "cannot generate {} distinct strings on {} qubits",
        params.terms,
        params.qubits
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut seen = std::collections::HashSet::new();
    let mut terms = Vec::with_capacity(params.terms);
    while terms.len() < params.terms {
        let ops: Vec<PauliOp> = (0..params.qubits)
            .map(|_| {
                if rng.gen::<f64>() < params.identity_bias {
                    PauliOp::I
                } else {
                    match rng.gen_range(0..3) {
                        0 => PauliOp::X,
                        1 => PauliOp::Y,
                        _ => PauliOp::Z,
                    }
                }
            })
            .collect();
        let string = PauliString::from_ops(ops);
        if string.is_identity() || !seen.insert(string.clone()) {
            continue;
        }
        let coefficient = rng.gen::<f64>().max(1e-3);
        terms.push(Term::new(coefficient, string));
    }
    Hamiltonian::new(terms).expect("generator always produces at least one term")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_size() {
        let ham = random_hamiltonian(&RandomHamiltonianParams {
            qubits: 10,
            terms: 100,
            ..Default::default()
        });
        assert_eq!(ham.num_qubits(), 10);
        assert_eq!(ham.num_terms(), 100);
    }

    #[test]
    fn strings_are_distinct_and_non_identity() {
        let ham = random_hamiltonian(&RandomHamiltonianParams {
            qubits: 6,
            terms: 50,
            ..Default::default()
        });
        let mut seen = std::collections::HashSet::new();
        for t in ham.terms() {
            assert!(!t.string.is_identity());
            assert!(
                seen.insert(t.string.clone()),
                "duplicate string {}",
                t.string
            );
            assert!(t.coefficient > 0.0);
        }
    }

    #[test]
    fn generation_is_seeded() {
        let p = RandomHamiltonianParams {
            qubits: 8,
            terms: 64,
            identity_bias: 0.5,
            seed: 99,
        };
        assert_eq!(random_hamiltonian(&p), random_hamiltonian(&p));
        let q = RandomHamiltonianParams { seed: 100, ..p };
        assert_ne!(random_hamiltonian(&p), random_hamiltonian(&q));
    }

    #[test]
    fn identity_bias_controls_average_weight() {
        let sparse = random_hamiltonian(&RandomHamiltonianParams {
            qubits: 12,
            terms: 200,
            identity_bias: 0.8,
            seed: 5,
        });
        let dense = random_hamiltonian(&RandomHamiltonianParams {
            qubits: 12,
            terms: 200,
            identity_bias: 0.2,
            seed: 5,
        });
        let avg = |h: &Hamiltonian| {
            h.terms().iter().map(|t| t.string.weight()).sum::<usize>() as f64 / h.num_terms() as f64
        };
        assert!(avg(&dense) > avg(&sparse) + 2.0);
    }

    #[test]
    fn table_2_sizes_generate_quickly() {
        for &(qubits, terms) in &[(10usize, 100usize), (20, 500), (30, 1000)] {
            let ham = random_hamiltonian(&RandomHamiltonianParams {
                qubits,
                terms,
                identity_bias: 0.6,
                seed: 7,
            });
            assert_eq!(ham.num_terms(), terms);
            assert_eq!(ham.num_qubits(), qubits);
        }
    }

    #[test]
    #[should_panic(expected = "distinct strings")]
    fn impossible_request_is_rejected() {
        let _ = random_hamiltonian(&RandomHamiltonianParams {
            qubits: 1,
            terms: 10,
            identity_bias: 0.0,
            seed: 1,
        });
    }
}
