//! The benchmark Hamiltonian library.
//!
//! Table 1 of the paper lists twelve benchmarks: nine electronic-structure
//! systems (Na+, Cl-, Ar, OH-, HF, LiH, BeH2, H2O, with and without frozen
//! cores) generated with PySCF/Qiskit Nature, plus two SYK instances and a
//! larger BeH2. This crate reproduces that suite with the in-repo generators
//! from `marqsim-fermion` (the substitution is documented in `DESIGN.md`):
//! each entry matches the paper's qubit count, Pauli-string count, and
//! evolution time, while the coefficients come from the seeded synthetic
//! molecular / SYK generators.
//!
//! * [`suite`] — the Table 1 benchmark suite, at full or reduced scale.
//! * [`random`] — random Hamiltonians of a given size (Table 2 scalability
//!   study).
//! * [`spin`] — Heisenberg and transverse-field Ising chains used by the
//!   examples.
//!
//! # Example
//!
//! ```
//! use marqsim_hamlib::suite::{table1_suite, SuiteScale};
//!
//! let suite = table1_suite(SuiteScale::Reduced);
//! assert_eq!(suite.len(), 12);
//! for bench in &suite {
//!     assert!(bench.hamiltonian.num_terms() > 0);
//! }
//! ```

pub mod random;
pub mod spin;
pub mod suite;
