//! Spin-chain model Hamiltonians.
//!
//! These are not part of the paper's benchmark table, but they are the
//! canonical "hello world" of Hamiltonian simulation and are used by the
//! examples and several integration tests.

use marqsim_pauli::{Hamiltonian, PauliOp, PauliString, Term};

/// Builds the 1D transverse-field Ising model
/// `H = -J Σ Z_i Z_{i+1} - h Σ X_i` on `sites` qubits.
///
/// # Panics
///
/// Panics if `sites < 2`.
pub fn transverse_field_ising(
    sites: usize,
    coupling: f64,
    field: f64,
    periodic: bool,
) -> Hamiltonian {
    assert!(sites >= 2, "the Ising chain needs at least two sites");
    let mut terms = Vec::new();
    let bonds: Vec<(usize, usize)> = if periodic {
        (0..sites).map(|i| (i, (i + 1) % sites)).collect()
    } else {
        (0..sites - 1).map(|i| (i, i + 1)).collect()
    };
    for (i, j) in bonds {
        let mut ops = vec![PauliOp::I; sites];
        ops[i] = PauliOp::Z;
        ops[j] = PauliOp::Z;
        terms.push(Term::new(-coupling, PauliString::from_ops(ops)));
    }
    for i in 0..sites {
        terms.push(Term::new(-field, PauliString::single(sites, i, PauliOp::X)));
    }
    Hamiltonian::new(terms).expect("Ising chain always has terms")
}

/// Builds the 1D Heisenberg XXZ model
/// `H = J Σ (X_i X_{i+1} + Y_i Y_{i+1} + Δ Z_i Z_{i+1})`.
///
/// # Panics
///
/// Panics if `sites < 2`.
pub fn heisenberg_xxz(sites: usize, coupling: f64, anisotropy: f64, periodic: bool) -> Hamiltonian {
    assert!(sites >= 2, "the Heisenberg chain needs at least two sites");
    let mut terms = Vec::new();
    let bonds: Vec<(usize, usize)> = if periodic {
        (0..sites).map(|i| (i, (i + 1) % sites)).collect()
    } else {
        (0..sites - 1).map(|i| (i, i + 1)).collect()
    };
    for (i, j) in bonds {
        for (op, weight) in [
            (PauliOp::X, coupling),
            (PauliOp::Y, coupling),
            (PauliOp::Z, coupling * anisotropy),
        ] {
            if weight == 0.0 {
                continue;
            }
            let mut ops = vec![PauliOp::I; sites];
            ops[i] = op;
            ops[j] = op;
            terms.push(Term::new(weight, PauliString::from_ops(ops)));
        }
    }
    Hamiltonian::new(terms).expect("Heisenberg chain always has terms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ising_term_count_open_and_periodic() {
        let open = transverse_field_ising(5, 1.0, 0.5, false);
        assert_eq!(open.num_terms(), 4 + 5);
        let periodic = transverse_field_ising(5, 1.0, 0.5, true);
        assert_eq!(periodic.num_terms(), 5 + 5);
    }

    #[test]
    fn ising_is_hermitian_with_expected_lambda() {
        let ham = transverse_field_ising(3, 1.0, 0.5, false);
        assert!(ham.to_matrix().is_hermitian(1e-12));
        // 2 bonds of weight 1 + 3 fields of weight 0.5.
        assert!((ham.lambda() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn heisenberg_term_count_and_structure() {
        let ham = heisenberg_xxz(4, 1.0, 0.5, false);
        assert_eq!(ham.num_terms(), 3 * 3);
        for term in ham.terms() {
            assert_eq!(term.string.weight(), 2);
        }
    }

    #[test]
    fn zero_anisotropy_drops_zz_terms() {
        let ham = heisenberg_xxz(4, 1.0, 0.0, false);
        assert_eq!(ham.num_terms(), 3 * 2);
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn single_site_chain_rejected() {
        let _ = transverse_field_ising(1, 1.0, 1.0, false);
    }
}
