//! Sampling trajectories from a Markov chain.
//!
//! Algorithm 1 of the paper samples `N` states: the first from the initial
//! distribution `π`, each subsequent one from the row of the transition
//! matrix indexed by the previous state. This module provides that sampler
//! plus a cumulative-distribution table for `O(log n)` per-step sampling
//! (matching the complexity analysis in §6.6).

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TransitionMatrix;

/// Why a weight vector cannot be turned into a [`DiscreteSampler`].
///
/// The all-zero case used to be underspecified (an `assert!` with a generic
/// message deep inside construction); it is now a first-class error so
/// callers sampling user-provided weights — e.g. a service front-end — can
/// reject the input instead of crashing the worker.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleError {
    /// The weight vector is empty — there is nothing to sample.
    Empty,
    /// A weight is negative, NaN, or infinite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Every weight is zero: the vector normalizes to no distribution at
    /// all, so sampling from it has no defined semantics.
    ZeroTotalWeight,
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Empty => write!(f, "weights must be non-empty"),
            SampleError::InvalidWeight { index, value } => {
                write!(
                    f,
                    "weight {index} is {value}; weights must be finite and non-negative"
                )
            }
            SampleError::ZeroTotalWeight => {
                write!(
                    f,
                    "all weights are zero; a distribution needs positive total mass"
                )
            }
        }
    }
}

impl std::error::Error for SampleError {}

/// A pre-processed discrete distribution supporting `O(log n)` sampling via
/// binary search on the cumulative table.
#[derive(Debug, Clone)]
pub struct DiscreteSampler {
    cumulative: Vec<f64>,
}

impl DiscreteSampler {
    /// Builds the sampler from (not necessarily normalized) non-negative
    /// weights, validating them.
    ///
    /// # Errors
    ///
    /// Returns [`SampleError::Empty`] for an empty vector,
    /// [`SampleError::InvalidWeight`] for a negative/NaN/infinite entry,
    /// and [`SampleError::ZeroTotalWeight`] when every weight is zero.
    pub fn try_new(weights: &[f64]) -> Result<Self, SampleError> {
        if weights.is_empty() {
            return Err(SampleError::Empty);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for (index, &w) in weights.iter().enumerate() {
            if !(w >= 0.0 && w.is_finite()) {
                return Err(SampleError::InvalidWeight { index, value: w });
            }
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return Err(SampleError::ZeroTotalWeight);
        }
        for c in cumulative.iter_mut() {
            *c /= acc;
        }
        Ok(DiscreteSampler { cumulative })
    }

    /// Builds the sampler from (not necessarily normalized) non-negative
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero — see [`try_new`](Self::try_new) for the non-panicking form.
    pub fn new(weights: &[f64]) -> Self {
        match Self::try_new(weights) {
            Ok(sampler) => sampler,
            Err(error) => panic!("invalid sampling weights: {error}"),
        }
    }

    /// Samples an index according to the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the distribution has no categories (never true for a
    /// constructed sampler; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// A Markov-chain sampler: holds per-row [`DiscreteSampler`]s plus the
/// initial distribution.
#[derive(Debug, Clone)]
pub struct ChainSampler {
    initial: DiscreteSampler,
    rows: Vec<DiscreteSampler>,
}

impl ChainSampler {
    /// Builds a sampler for the chain `p` with initial distribution
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != p.num_states()`.
    pub fn new(p: &TransitionMatrix, initial: &[f64]) -> Self {
        assert_eq!(
            initial.len(),
            p.num_states(),
            "initial distribution length must match the state count"
        );
        ChainSampler {
            initial: DiscreteSampler::new(initial),
            rows: (0..p.num_states())
                .map(|i| DiscreteSampler::new(p.row(i)))
                .collect(),
        }
    }

    /// Samples a trajectory of `length` states using the given RNG.
    pub fn sample_trajectory<R: Rng + ?Sized>(&self, length: usize, rng: &mut R) -> Vec<usize> {
        let mut out = Vec::with_capacity(length);
        if length == 0 {
            return out;
        }
        let mut state = self.initial.sample(rng);
        out.push(state);
        for _ in 1..length {
            state = self.rows[state].sample(rng);
            out.push(state);
        }
        out
    }

    /// Samples a trajectory with a seeded RNG (deterministic given the seed).
    pub fn sample_trajectory_seeded(&self, length: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample_trajectory(length, &mut rng)
    }
}

/// Empirical state frequencies of a trajectory (used in tests and the
/// experiment drivers to check convergence to the stationary distribution).
pub fn empirical_distribution(trajectory: &[usize], num_states: usize) -> Vec<f64> {
    let mut counts = vec![0usize; num_states];
    for &s in trajectory {
        counts[s] += 1;
    }
    let total = trajectory.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_sampler_respects_distribution() {
        let sampler = DiscreteSampler::new(&[0.7, 0.2, 0.1]);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.7).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.1).abs() < 0.01);
    }

    #[test]
    fn sampler_handles_zero_weight_categories() {
        let sampler = DiscreteSampler::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn sampler_rejects_negative_weights() {
        let _ = DiscreteSampler::new(&[0.5, -0.1]);
    }

    #[test]
    fn try_new_reports_every_invalid_weight_shape() {
        assert!(matches!(
            DiscreteSampler::try_new(&[]),
            Err(SampleError::Empty)
        ));
        match DiscreteSampler::try_new(&[0.5, -0.1]) {
            Err(SampleError::InvalidWeight { index: 1, value }) => assert_eq!(value, -0.1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            DiscreteSampler::try_new(&[0.5, f64::NAN]),
            Err(SampleError::InvalidWeight { index: 1, .. })
        ));
        assert!(matches!(
            DiscreteSampler::try_new(&[f64::INFINITY]),
            Err(SampleError::InvalidWeight { index: 0, .. })
        ));
        assert!(DiscreteSampler::try_new(&[0.3, 0.7]).is_ok());
    }

    #[test]
    fn all_zero_weights_are_a_zero_total_weight_error() {
        // Previously an underspecified assert; now a first-class error.
        assert!(matches!(
            DiscreteSampler::try_new(&[0.0, 0.0, 0.0]),
            Err(SampleError::ZeroTotalWeight)
        ));
        let shown = SampleError::ZeroTotalWeight.to_string();
        assert!(shown.contains("all weights are zero"), "{shown}");
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn new_panics_on_all_zero_weights_with_a_clear_message() {
        let _ = DiscreteSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn trajectory_has_requested_length_and_valid_states() {
        let pi = vec![0.5, 0.25, 0.2, 0.05];
        let p = TransitionMatrix::from_stationary(&pi);
        let sampler = ChainSampler::new(&p, &pi);
        let traj = sampler.sample_trajectory_seeded(1000, 42);
        assert_eq!(traj.len(), 1000);
        assert!(traj.iter().all(|&s| s < 4));
    }

    #[test]
    fn seeded_trajectories_are_reproducible() {
        let pi = vec![0.3, 0.3, 0.4];
        let p = TransitionMatrix::from_stationary(&pi);
        let sampler = ChainSampler::new(&p, &pi);
        let a = sampler.sample_trajectory_seeded(500, 7);
        let b = sampler.sample_trajectory_seeded(500, 7);
        let c = sampler.sample_trajectory_seeded(500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn qdrift_chain_trajectory_matches_stationary_distribution() {
        let pi = vec![0.5, 0.25, 0.2, 0.05];
        let p = TransitionMatrix::from_stationary(&pi);
        let sampler = ChainSampler::new(&p, &pi);
        let traj = sampler.sample_trajectory_seeded(100_000, 3);
        let emp = empirical_distribution(&traj, 4);
        for (e, t) in emp.iter().zip(pi.iter()) {
            assert!((e - t).abs() < 0.01, "{e} vs {t}");
        }
    }

    #[test]
    fn markov_chain_trajectory_follows_transition_structure() {
        // Deterministic cycle 0 -> 1 -> 2 -> 0.
        let p = TransitionMatrix::new(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        let sampler = ChainSampler::new(&p, &[1.0, 0.0, 0.0]);
        let traj = sampler.sample_trajectory_seeded(9, 0);
        assert_eq!(traj, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empirical_distribution_sums_to_one() {
        let traj = vec![0, 1, 1, 2, 2, 2];
        let emp = empirical_distribution(&traj, 3);
        assert!((emp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((emp[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_trajectory() {
        let pi = vec![1.0];
        let p = TransitionMatrix::from_stationary(&pi);
        let sampler = ChainSampler::new(&p, &pi);
        assert!(sampler.sample_trajectory_seeded(0, 1).is_empty());
    }
}
