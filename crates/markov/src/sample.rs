//! Sampling trajectories from a Markov chain.
//!
//! Algorithm 1 of the paper samples `N` states: the first from the initial
//! distribution `π`, each subsequent one from the row of the transition
//! matrix indexed by the previous state. This module provides that sampler
//! plus a cumulative-distribution table for `O(log n)` per-step sampling
//! (matching the complexity analysis in §6.6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TransitionMatrix;

/// A pre-processed discrete distribution supporting `O(log n)` sampling via
/// binary search on the cumulative table.
#[derive(Debug, Clone)]
pub struct DiscreteSampler {
    cumulative: Vec<f64>,
}

impl DiscreteSampler {
    /// Builds the sampler from (not necessarily normalized) non-negative
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for c in cumulative.iter_mut() {
            *c /= acc;
        }
        DiscreteSampler { cumulative }
    }

    /// Samples an index according to the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the distribution has no categories (never true for a
    /// constructed sampler; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// A Markov-chain sampler: holds per-row [`DiscreteSampler`]s plus the
/// initial distribution.
#[derive(Debug, Clone)]
pub struct ChainSampler {
    initial: DiscreteSampler,
    rows: Vec<DiscreteSampler>,
}

impl ChainSampler {
    /// Builds a sampler for the chain `p` with initial distribution
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != p.num_states()`.
    pub fn new(p: &TransitionMatrix, initial: &[f64]) -> Self {
        assert_eq!(
            initial.len(),
            p.num_states(),
            "initial distribution length must match the state count"
        );
        ChainSampler {
            initial: DiscreteSampler::new(initial),
            rows: (0..p.num_states())
                .map(|i| DiscreteSampler::new(p.row(i)))
                .collect(),
        }
    }

    /// Samples a trajectory of `length` states using the given RNG.
    pub fn sample_trajectory<R: Rng + ?Sized>(&self, length: usize, rng: &mut R) -> Vec<usize> {
        let mut out = Vec::with_capacity(length);
        if length == 0 {
            return out;
        }
        let mut state = self.initial.sample(rng);
        out.push(state);
        for _ in 1..length {
            state = self.rows[state].sample(rng);
            out.push(state);
        }
        out
    }

    /// Samples a trajectory with a seeded RNG (deterministic given the seed).
    pub fn sample_trajectory_seeded(&self, length: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample_trajectory(length, &mut rng)
    }
}

/// Empirical state frequencies of a trajectory (used in tests and the
/// experiment drivers to check convergence to the stationary distribution).
pub fn empirical_distribution(trajectory: &[usize], num_states: usize) -> Vec<f64> {
    let mut counts = vec![0usize; num_states];
    for &s in trajectory {
        counts[s] += 1;
    }
    let total = trajectory.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_sampler_respects_distribution() {
        let sampler = DiscreteSampler::new(&[0.7, 0.2, 0.1]);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.7).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.1).abs() < 0.01);
    }

    #[test]
    fn sampler_handles_zero_weight_categories() {
        let sampler = DiscreteSampler::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn sampler_rejects_negative_weights() {
        let _ = DiscreteSampler::new(&[0.5, -0.1]);
    }

    #[test]
    fn trajectory_has_requested_length_and_valid_states() {
        let pi = vec![0.5, 0.25, 0.2, 0.05];
        let p = TransitionMatrix::from_stationary(&pi);
        let sampler = ChainSampler::new(&p, &pi);
        let traj = sampler.sample_trajectory_seeded(1000, 42);
        assert_eq!(traj.len(), 1000);
        assert!(traj.iter().all(|&s| s < 4));
    }

    #[test]
    fn seeded_trajectories_are_reproducible() {
        let pi = vec![0.3, 0.3, 0.4];
        let p = TransitionMatrix::from_stationary(&pi);
        let sampler = ChainSampler::new(&p, &pi);
        let a = sampler.sample_trajectory_seeded(500, 7);
        let b = sampler.sample_trajectory_seeded(500, 7);
        let c = sampler.sample_trajectory_seeded(500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn qdrift_chain_trajectory_matches_stationary_distribution() {
        let pi = vec![0.5, 0.25, 0.2, 0.05];
        let p = TransitionMatrix::from_stationary(&pi);
        let sampler = ChainSampler::new(&p, &pi);
        let traj = sampler.sample_trajectory_seeded(100_000, 3);
        let emp = empirical_distribution(&traj, 4);
        for (e, t) in emp.iter().zip(pi.iter()) {
            assert!((e - t).abs() < 0.01, "{e} vs {t}");
        }
    }

    #[test]
    fn markov_chain_trajectory_follows_transition_structure() {
        // Deterministic cycle 0 -> 1 -> 2 -> 0.
        let p = TransitionMatrix::new(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        let sampler = ChainSampler::new(&p, &[1.0, 0.0, 0.0]);
        let traj = sampler.sample_trajectory_seeded(9, 0);
        assert_eq!(traj, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empirical_distribution_sums_to_one() {
        let traj = vec![0, 1, 1, 2, 2, 2];
        let emp = empirical_distribution(&traj, 3);
        assert!((emp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((emp[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_trajectory() {
        let pi = vec![1.0];
        let p = TransitionMatrix::from_stationary(&pi);
        let sampler = ChainSampler::new(&p, &pi);
        assert!(sampler.sample_trajectory_seeded(0, 1).is_empty());
    }
}
