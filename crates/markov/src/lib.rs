//! Homogeneous Markov chains for the MarQSim compiler.
//!
//! MarQSim formulates circuit generation as sampling from a homogeneous
//! Markov chain whose states are the Hamiltonian terms (§2.4, §4). This crate
//! provides the chain machinery independently of any quantum semantics:
//!
//! * [`TransitionMatrix`] — a validated row-stochastic matrix.
//! * [`stationary`] — stationary-distribution computation and verification
//!   (`π P = π`, condition (2) of Theorem 4.1).
//! * [`connectivity`] — strong-connectivity analysis via Tarjan's SCC
//!   algorithm (condition (1) of Theorem 4.1).
//! * [`spectra`] — eigenvalue-magnitude spectra used to reason about
//!   convergence speed and sampling variance (§5.4, Fig. 11 / Fig. 15).
//! * [`combine`] — convex combination of transition matrices (Theorem 5.2).
//! * [`sample`] — sampling trajectories from a chain with a seeded RNG
//!   (the `Sample(p)` oracle of Algorithm 1).
//!
//! # Example
//!
//! ```
//! use marqsim_markov::TransitionMatrix;
//!
//! // The qDRIFT chain for π = (0.5, 0.25, 0.2, 0.05): every row is π.
//! let pi = vec![0.5, 0.25, 0.2, 0.05];
//! let p = TransitionMatrix::from_stationary(&pi);
//! assert!(p.preserves_distribution(&pi, 1e-12));
//! assert!(p.is_strongly_connected());
//! ```

mod transition;

pub mod combine;
pub mod connectivity;
pub mod sample;
pub mod spectra;
pub mod stationary;

pub use transition::{TransitionError, TransitionMatrix};
