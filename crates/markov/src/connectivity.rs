//! Strong-connectivity analysis of state transition graphs.
//!
//! Condition (1) of Theorem 4.1 requires the HTT graph to be strongly
//! connected (a single recurrence class containing every state). We check
//! this with Tarjan's strongly-connected-components algorithm, implemented
//! iteratively so that large chains (1000+ states in Table 2) do not
//! overflow the stack.

use crate::TransitionMatrix;

/// Computes the strongly connected components of the transition graph
/// (edges wherever `p_ij > 0`). Components are returned as lists of state
/// indices, in reverse topological order of the condensation.
pub fn strongly_connected_components(p: &TransitionMatrix) -> Vec<Vec<usize>> {
    let n = p.num_states();
    let adjacency: Vec<Vec<usize>> = (0..n)
        .map(|i| (0..n).filter(|&j| p.prob(i, j) > 0.0).collect())
        .collect();
    tarjan_scc(&adjacency)
}

/// Returns `true` if the transition graph is strongly connected.
pub fn is_strongly_connected(p: &TransitionMatrix) -> bool {
    strongly_connected_components(p).len() == 1
}

/// Iterative Tarjan SCC over an adjacency-list graph.
fn tarjan_scc(adjacency: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adjacency.len();
    const UNVISITED: usize = usize::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, next child position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos < adjacency[v].len() {
                let w = adjacency[v][*child_pos];
                *child_pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(rows: Vec<Vec<f64>>) -> TransitionMatrix {
        TransitionMatrix::new(rows).unwrap()
    }

    #[test]
    fn fully_connected_chain_is_one_component() {
        let p = TransitionMatrix::from_stationary(&[0.25, 0.25, 0.25, 0.25]);
        assert!(is_strongly_connected(&p));
        assert_eq!(strongly_connected_components(&p).len(), 1);
    }

    #[test]
    fn absorbing_state_splits_components() {
        let p = chain(vec![vec![0.5, 0.5], vec![0.0, 1.0]]);
        let sccs = strongly_connected_components(&p);
        assert_eq!(sccs.len(), 2);
        assert!(!is_strongly_connected(&p));
    }

    #[test]
    fn directed_cycle_is_strongly_connected() {
        let p = chain(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ]);
        assert!(is_strongly_connected(&p));
    }

    #[test]
    fn two_disjoint_cycles() {
        let p = chain(vec![
            vec![0.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ]);
        let sccs = strongly_connected_components(&p);
        assert_eq!(sccs.len(), 2);
        for scc in sccs {
            assert_eq!(scc.len(), 2);
        }
    }

    #[test]
    fn one_way_bridge_between_cycles_is_not_strongly_connected() {
        // 0 <-> 1, 2 <-> 3, plus an edge 1 -> 2 but no way back.
        let p = chain(vec![
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ]);
        assert!(!is_strongly_connected(&p));
        assert_eq!(strongly_connected_components(&p).len(), 2);
    }

    #[test]
    fn every_state_appears_in_exactly_one_component() {
        let p = chain(vec![
            vec![0.2, 0.8, 0.0, 0.0, 0.0],
            vec![0.0, 0.3, 0.7, 0.0, 0.0],
            vec![0.0, 0.0, 0.1, 0.9, 0.0],
            vec![0.0, 0.0, 0.0, 0.5, 0.5],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ]);
        let sccs = strongly_connected_components(&p);
        let mut seen = [false; 5];
        for scc in &sccs {
            for &v in scc {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn large_ring_does_not_overflow_stack() {
        let n = 5000;
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            row[(i + 1) % n] = 1.0;
        }
        let p = TransitionMatrix::new(rows).unwrap();
        assert!(is_strongly_connected(&p));
    }
}
