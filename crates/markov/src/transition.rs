//! Row-stochastic transition matrices.

use std::fmt;

use crate::connectivity;
use crate::stationary;

/// Errors produced when constructing a [`TransitionMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionError {
    /// The matrix is not square.
    NotSquare {
        /// Number of rows found.
        rows: usize,
        /// Number of columns found in the offending row.
        cols: usize,
    },
    /// An entry is negative or non-finite.
    InvalidEntry {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// A row does not sum to one (within tolerance).
    RowNotNormalized {
        /// Index of the offending row.
        row: usize,
        /// The row sum found.
        sum: f64,
    },
    /// The matrix has no rows.
    Empty,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionError::NotSquare { rows, cols } => {
                write!(
                    f,
                    "transition matrix is not square: {rows} rows, row of length {cols}"
                )
            }
            TransitionError::InvalidEntry { row, col, value } => {
                write!(
                    f,
                    "invalid transition probability {value} at ({row}, {col})"
                )
            }
            TransitionError::RowNotNormalized { row, sum } => {
                write!(f, "row {row} sums to {sum}, expected 1")
            }
            TransitionError::Empty => write!(f, "transition matrix has no rows"),
        }
    }
}

impl std::error::Error for TransitionError {}

/// A validated row-stochastic matrix `P = (p_ij)`: every entry lies in
/// `[0, 1]` and every row sums to one (Definition 2.3 of the paper).
///
/// # Example
///
/// ```
/// use marqsim_markov::TransitionMatrix;
///
/// let p = TransitionMatrix::new(vec![
///     vec![0.0, 0.8, 0.0, 0.2],
///     vec![0.5, 0.0, 0.5, 0.0],
///     vec![0.5, 0.0, 0.2, 0.3],
///     vec![0.4, 0.0, 0.6, 0.0],
/// ]).unwrap();
/// assert_eq!(p.num_states(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    rows: Vec<Vec<f64>>,
}

/// Tolerance for row normalization checks.
const ROW_SUM_TOL: f64 = 1e-9;

impl TransitionMatrix {
    /// Creates a transition matrix, validating stochasticity.
    ///
    /// # Errors
    ///
    /// Returns a [`TransitionError`] if the matrix is empty, not square, has
    /// an entry outside `[0, 1]`, or has a row that does not sum to one.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self, TransitionError> {
        if rows.is_empty() {
            return Err(TransitionError::Empty);
        }
        let n = rows.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(TransitionError::NotSquare {
                    rows: n,
                    cols: row.len(),
                });
            }
            let mut sum = 0.0;
            for (j, &p) in row.iter().enumerate() {
                if !p.is_finite() || !(-1e-12..=1.0 + 1e-12).contains(&p) {
                    return Err(TransitionError::InvalidEntry {
                        row: i,
                        col: j,
                        value: p,
                    });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(TransitionError::RowNotNormalized { row: i, sum });
            }
        }
        Ok(TransitionMatrix { rows })
    }

    /// Creates a transition matrix by normalizing each row of a non-negative
    /// weight matrix. Rows that sum to zero become uniform rows.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty, non-square, or contains negative
    /// weights.
    pub fn from_weights(weights: &[Vec<f64>]) -> Self {
        assert!(!weights.is_empty(), "weight matrix must be non-empty");
        let n = weights.len();
        let rows = weights
            .iter()
            .map(|row| {
                assert_eq!(row.len(), n, "weight matrix must be square");
                let sum: f64 = row
                    .iter()
                    .inspect(|&&w| {
                        assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
                    })
                    .sum();
                if sum <= 0.0 {
                    vec![1.0 / n as f64; n]
                } else {
                    row.iter().map(|&w| w / sum).collect()
                }
            })
            .collect();
        TransitionMatrix { rows }
    }

    /// The rank-one "qDRIFT" chain for a probability distribution `π`: every
    /// row equals `π`, so each step samples independently from `π`
    /// (Corollary 4.1).
    ///
    /// # Panics
    ///
    /// Panics if `pi` is empty, has negative entries, or does not sum to one.
    pub fn from_stationary(pi: &[f64]) -> Self {
        assert!(!pi.is_empty(), "distribution must be non-empty");
        let sum: f64 = pi.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "distribution must be normalized (sums to {sum})"
        );
        assert!(
            pi.iter().all(|&p| p >= 0.0),
            "probabilities must be non-negative"
        );
        TransitionMatrix {
            rows: vec![pi.to_vec(); pi.len()],
        }
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// The probability of transitioning from state `i` to state `j`.
    #[inline]
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.rows[i][j]
    }

    /// Borrow of row `i` (the distribution over successors of state `i`).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Borrow of the full matrix as rows.
    #[inline]
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Left action of a distribution: `(π P)_j = Σ_i π_i p_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.num_states()`.
    pub fn propagate(&self, pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.num_states(), "distribution length mismatch");
        let n = self.num_states();
        let mut out = vec![0.0; n];
        for i in 0..n {
            let pi_i = pi[i];
            if pi_i == 0.0 {
                continue;
            }
            for j in 0..n {
                out[j] += pi_i * self.rows[i][j];
            }
        }
        out
    }

    /// Returns `true` if `π P = π` within `tol` (the Stationary Distribution
    /// Preservation condition of Theorem 4.1).
    pub fn preserves_distribution(&self, pi: &[f64], tol: f64) -> bool {
        let propagated = self.propagate(pi);
        propagated
            .iter()
            .zip(pi.iter())
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if the state transition graph (edges where `p_ij > 0`)
    /// is strongly connected (the Strong Connectivity condition of
    /// Theorem 4.1).
    pub fn is_strongly_connected(&self) -> bool {
        connectivity::is_strongly_connected(self)
    }

    /// Computes the stationary distribution of the chain.
    ///
    /// See [`stationary::stationary_distribution`] for details and failure
    /// modes.
    pub fn stationary_distribution(&self) -> Option<Vec<f64>> {
        stationary::stationary_distribution(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_2_1() -> TransitionMatrix {
        TransitionMatrix::new(vec![
            vec![0.0, 0.8, 0.0, 0.2],
            vec![0.5, 0.0, 0.5, 0.0],
            vec![0.5, 0.0, 0.2, 0.3],
            vec![0.4, 0.0, 0.6, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn valid_matrix_is_accepted() {
        let p = example_2_1();
        assert_eq!(p.num_states(), 4);
        assert!((p.prob(0, 1) - 0.8).abs() < 1e-15);
    }

    #[test]
    fn empty_matrix_rejected() {
        assert_eq!(
            TransitionMatrix::new(vec![]).unwrap_err(),
            TransitionError::Empty
        );
    }

    #[test]
    fn non_square_rejected() {
        let err = TransitionMatrix::new(vec![vec![0.5, 0.5], vec![1.0]]).unwrap_err();
        assert!(matches!(err, TransitionError::NotSquare { .. }));
    }

    #[test]
    fn negative_entry_rejected() {
        let err = TransitionMatrix::new(vec![vec![1.5, -0.5], vec![0.5, 0.5]]).unwrap_err();
        assert!(matches!(err, TransitionError::InvalidEntry { .. }));
    }

    #[test]
    fn unnormalized_row_rejected() {
        let err = TransitionMatrix::new(vec![vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap_err();
        assert!(matches!(
            err,
            TransitionError::RowNotNormalized { row: 0, .. }
        ));
    }

    #[test]
    fn from_weights_normalizes_rows() {
        let p = TransitionMatrix::from_weights(&[vec![2.0, 2.0], vec![0.0, 0.0]]);
        assert!((p.prob(0, 0) - 0.5).abs() < 1e-15);
        // Zero-weight row becomes uniform.
        assert!((p.prob(1, 0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn from_stationary_builds_rank_one_chain() {
        let pi = vec![0.5, 0.25, 0.2, 0.05];
        let p = TransitionMatrix::from_stationary(&pi);
        for i in 0..4 {
            for j in 0..4 {
                assert!((p.prob(i, j) - pi[j]).abs() < 1e-15);
            }
        }
        assert!(p.preserves_distribution(&pi, 1e-12));
    }

    #[test]
    fn propagate_preserves_total_probability() {
        let p = example_2_1();
        let pi = vec![0.25; 4];
        let out = p.propagate(&pi);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_stationary_distribution_is_preserved() {
        // An irreducible 4-state chain in the style of Example 2.1: its
        // computed stationary distribution must be a fixed point of P.
        let p = example_2_1();
        let pi = p.stationary_distribution().expect("chain is irreducible");
        assert!(p.preserves_distribution(&pi, 1e-10));
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(pi.iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn strong_connectivity_of_example() {
        assert!(example_2_1().is_strongly_connected());
        // A chain with an absorbing state is not strongly connected.
        let absorbing = TransitionMatrix::new(vec![vec![0.5, 0.5], vec![0.0, 1.0]]).unwrap();
        assert!(!absorbing.is_strongly_connected());
    }

    #[test]
    fn display_of_errors() {
        let err = TransitionMatrix::new(vec![vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap_err();
        assert!(err.to_string().contains("sums to"));
    }
}
