//! Transition-matrix spectra analysis (§5.4 of the paper).
//!
//! The convergence speed of the Markov sampling process — and therefore the
//! variance of the sampled circuit unitary — is governed by the sub-dominant
//! eigenvalues of the transition matrix: `P^k π_0` approaches the stationary
//! distribution at a rate set by `|λ_2|`, and a spectrum with smaller
//! magnitudes mixes faster (Equation (16)). The qDRIFT matrix is rank one
//! (`λ_2 = … = λ_n = 0`), while gate-cancellation-tuned matrices trade some
//! of that for structure; the random-perturbation technique of §5.5 pushes
//! the spectrum back down.

use marqsim_linalg::eigenvalues_real;

use crate::TransitionMatrix;

/// The eigenvalue-magnitude spectrum of a transition matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Eigenvalue magnitudes sorted in descending order; `values[0]` is
    /// always `≈ 1` for a stochastic matrix.
    pub values: Vec<f64>,
}

impl Spectrum {
    /// The magnitude of the second-largest eigenvalue (the mixing bottleneck),
    /// or `0` for a single-state chain.
    pub fn subdominant(&self) -> f64 {
        self.values.get(1).copied().unwrap_or(0.0)
    }

    /// The spectral gap `1 − |λ_2|`.
    pub fn spectral_gap(&self) -> f64 {
        1.0 - self.subdominant()
    }

    /// Sum of all sub-dominant magnitudes — the "area under the trend line"
    /// plotted in Fig. 11 / Fig. 15; smaller means faster convergence.
    pub fn subdominant_mass(&self) -> f64 {
        self.values.iter().skip(1).sum()
    }

    /// Number of eigenvalues with magnitude above `threshold`, excluding the
    /// leading eigenvalue.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.values
            .iter()
            .skip(1)
            .filter(|&&v| v > threshold)
            .count()
    }
}

/// Computes the eigenvalue-magnitude spectrum of a transition matrix, sorted
/// in descending order.
pub fn spectrum(p: &TransitionMatrix) -> Spectrum {
    let eigs = eigenvalues_real(p.rows());
    let mut values: Vec<f64> = eigs.iter().map(|z| z.abs()).collect();
    values.sort_by(|a, b| b.partial_cmp(a).expect("magnitudes are finite"));
    Spectrum { values }
}

/// Estimates the number of steps needed for `‖π_0 P^k − π‖_1` to drop below
/// `epsilon`, based on the sub-dominant eigenvalue (`k ≈ ln ε / ln |λ_2|`).
/// Returns `0` for rank-one chains that mix in a single step.
pub fn mixing_time_estimate(p: &TransitionMatrix, epsilon: f64) -> usize {
    let s = spectrum(p);
    let lambda2 = s.subdominant();
    if lambda2 <= 1e-12 {
        return 0;
    }
    if lambda2 >= 1.0 - 1e-12 {
        return usize::MAX;
    }
    (epsilon.ln() / lambda2.ln()).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdrift_matrix_is_rank_one() {
        let p = TransitionMatrix::from_stationary(&[0.4, 0.3, 0.2, 0.1]);
        let s = spectrum(&p);
        assert!((s.values[0] - 1.0).abs() < 1e-8);
        for v in &s.values[1..] {
            assert!(*v < 1e-8);
        }
        assert_eq!(mixing_time_estimate(&p, 1e-3), 0);
        assert!((s.spectral_gap() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn leading_eigenvalue_of_any_stochastic_matrix_is_one() {
        let p = TransitionMatrix::new(vec![
            vec![0.0, 0.8, 0.0, 0.2],
            vec![0.5, 0.0, 0.5, 0.0],
            vec![0.5, 0.0, 0.2, 0.3],
            vec![0.4, 0.0, 0.6, 0.0],
        ])
        .unwrap();
        let s = spectrum(&p);
        assert!((s.values[0] - 1.0).abs() < 1e-7);
        for v in &s.values {
            assert!(*v <= 1.0 + 1e-7);
        }
    }

    #[test]
    fn identity_chain_has_all_unit_eigenvalues() {
        let p = TransitionMatrix::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let s = spectrum(&p);
        assert!((s.subdominant() - 1.0).abs() < 1e-9);
        assert_eq!(mixing_time_estimate(&p, 1e-3), usize::MAX);
    }

    #[test]
    fn lazy_chain_spectrum_matches_closed_form() {
        // P = (1-a) I + a * qDRIFT(π) has eigenvalues 1 and (1-a).
        let a = 0.6;
        let pi = [0.5, 0.3, 0.2];
        let qd = TransitionMatrix::from_stationary(&pi);
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..3)
                    .map(|j| a * qd.prob(i, j) + if i == j { 1.0 - a } else { 0.0 })
                    .collect()
            })
            .collect();
        let p = TransitionMatrix::new(rows).unwrap();
        let s = spectrum(&p);
        assert!((s.values[0] - 1.0).abs() < 1e-8);
        assert!((s.values[1] - (1.0 - a)).abs() < 1e-8);
        assert!((s.values[2] - (1.0 - a)).abs() < 1e-8);
        let mt = mixing_time_estimate(&p, 1e-3);
        assert!(mt > 0 && mt < 20);
    }

    #[test]
    fn subdominant_mass_and_count() {
        let s = Spectrum {
            values: vec![1.0, 0.46, 0.46, 0.25, 0.0],
        };
        assert!((s.subdominant_mass() - 1.17).abs() < 1e-12);
        assert_eq!(s.count_above(0.3), 2);
        assert_eq!(s.count_above(0.5), 0);
    }
}
