//! Stationary distributions.
//!
//! A distribution `π` is stationary for a chain `P` when `π P = π`
//! (Definition 2.6). For an irreducible chain the stationary distribution is
//! unique; we compute it by solving the linear system
//! `(Pᵀ − I) π = 0, Σ π_i = 1` with the last balance equation replaced by the
//! normalization constraint, and fall back to power iteration if the solve
//! fails numerically.

use marqsim_linalg::{solve_linear, Complex, Matrix};

use crate::TransitionMatrix;

/// Computes the stationary distribution of `p`.
///
/// Returns `None` when the chain has no unique stationary distribution the
/// solver can find (for example when the chain is reducible and the linear
/// system is singular in a way the normalization row cannot repair).
pub fn stationary_distribution(p: &TransitionMatrix) -> Option<Vec<f64>> {
    let n = p.num_states();
    if n == 1 {
        return Some(vec![1.0]);
    }
    if let Some(pi) = solve_balance_equations(p) {
        if pi.iter().all(|&x| x >= -1e-9) {
            let mut pi = pi;
            for x in pi.iter_mut() {
                *x = x.max(0.0);
            }
            let total: f64 = pi.iter().sum();
            if total > 0.0 {
                for x in pi.iter_mut() {
                    *x /= total;
                }
                if p.preserves_distribution(&pi, 1e-8) {
                    return Some(pi);
                }
            }
        }
    }
    power_iteration(p)
}

/// Direct linear solve of the balance equations.
fn solve_balance_equations(p: &TransitionMatrix) -> Option<Vec<f64>> {
    let n = p.num_states();
    // Build (Pᵀ - I) with the last row replaced by the all-ones normalization.
    let a = Matrix::from_fn(n, n, |i, j| {
        if i == n - 1 {
            Complex::ONE
        } else {
            let mut v = p.prob(j, i);
            if i == j {
                v -= 1.0;
            }
            Complex::real(v)
        }
    });
    let mut b = vec![Complex::ZERO; n];
    b[n - 1] = Complex::ONE;
    let x = solve_linear(&a, &b).ok()?;
    Some(x.into_iter().map(|z| z.re).collect())
}

/// Power iteration fallback: repeatedly apply `π ← π P` from the uniform
/// distribution. Converges for irreducible aperiodic chains.
fn power_iteration(p: &TransitionMatrix) -> Option<Vec<f64>> {
    let n = p.num_states();
    let mut pi = vec![1.0 / n as f64; n];
    for _ in 0..100_000 {
        let next = p.propagate(&pi);
        let delta: f64 = next.iter().zip(pi.iter()).map(|(a, b)| (a - b).abs()).sum();
        pi = next;
        if delta < 1e-13 {
            return Some(pi);
        }
    }
    if p.preserves_distribution(&pi, 1e-6) {
        Some(pi)
    } else {
        None
    }
}

/// Verifies both Theorem 4.1 conditions at once: strong connectivity and
/// preservation of the given distribution.
pub fn satisfies_theorem_4_1(p: &TransitionMatrix, pi: &[f64], tol: f64) -> bool {
    p.is_strongly_connected() && p.preserves_distribution(pi, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_chain_closed_form() {
        // P = [[1-a, a], [b, 1-b]] has stationary (b, a)/(a+b).
        let a = 0.3;
        let b = 0.1;
        let p = TransitionMatrix::new(vec![vec![1.0 - a, a], vec![b, 1.0 - b]]).unwrap();
        let pi = stationary_distribution(&p).unwrap();
        assert!((pi[0] - b / (a + b)).abs() < 1e-10);
        assert!((pi[1] - a / (a + b)).abs() < 1e-10);
    }

    #[test]
    fn qdrift_chain_recovers_its_distribution() {
        let target = vec![0.5, 0.25, 0.2, 0.05];
        let p = TransitionMatrix::from_stationary(&target);
        let pi = stationary_distribution(&p).unwrap();
        for (a, b) in pi.iter().zip(target.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn four_state_irreducible_chain_distribution() {
        // A chain in the style of Example 2.1 / Fig. 4 (the paper's figure
        // does not fully specify which edge carries which weight, so we only
        // check the defining properties of the unique stationary
        // distribution).
        let p = TransitionMatrix::new(vec![
            vec![0.0, 0.8, 0.0, 0.2],
            vec![0.5, 0.0, 0.5, 0.0],
            vec![0.5, 0.0, 0.2, 0.3],
            vec![0.4, 0.0, 0.6, 0.0],
        ])
        .unwrap();
        let pi = stationary_distribution(&p).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(pi.iter().all(|&x| x > 0.0));
        assert!(p.preserves_distribution(&pi, 1e-10));
        // Cross-check against long-run power iteration from a different start.
        let mut q = vec![1.0, 0.0, 0.0, 0.0];
        for _ in 0..10_000 {
            q = p.propagate(&q);
        }
        for (a, b) in pi.iter().zip(q.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn single_state_chain() {
        let p = TransitionMatrix::new(vec![vec![1.0]]).unwrap();
        assert_eq!(stationary_distribution(&p).unwrap(), vec![1.0]);
    }

    #[test]
    fn periodic_chain_still_has_stationary_distribution() {
        // A deterministic 3-cycle is periodic but has uniform stationary
        // distribution; the direct solve handles it.
        let p = TransitionMatrix::new(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        let pi = stationary_distribution(&p).unwrap();
        for x in &pi {
            assert!((x - 1.0 / 3.0).abs() < 1e-10);
        }
    }

    #[test]
    fn theorem_4_1_check() {
        let pi = vec![0.5, 0.25, 0.2, 0.05];
        let qdrift = TransitionMatrix::from_stationary(&pi);
        assert!(satisfies_theorem_4_1(&qdrift, &pi, 1e-12));

        // A strongly connected chain that does NOT preserve this particular π.
        let other = TransitionMatrix::new(vec![
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.25, 0.25, 0.25, 0.25],
        ])
        .unwrap();
        assert!(!satisfies_theorem_4_1(&other, &pi, 1e-12));
    }

    #[test]
    fn stationary_of_reducible_chain_with_absorbing_state() {
        // Reducible chain: the absorbing state soaks up everything; the
        // solver should still return a valid stationary distribution
        // (concentrated on the absorbing state).
        let p = TransitionMatrix::new(vec![vec![0.5, 0.5], vec![0.0, 1.0]]).unwrap();
        let pi = stationary_distribution(&p).unwrap();
        assert!((pi[1] - 1.0).abs() < 1e-6);
    }
}
