//! Convex combination of transition matrices (Theorem 5.2).
//!
//! If every `P_i` preserves the stationary distribution `π`, then so does any
//! convex combination `Σ Θ_i P_i`. MarQSim uses this to blend the qDRIFT
//! matrix (for strong connectivity and fast mixing), the gate-cancellation
//! matrix, and the random-perturbation matrix into a single chain.

use crate::{TransitionError, TransitionMatrix};

/// Errors produced by [`combine`].
#[derive(Debug, Clone, PartialEq)]
pub enum CombineError {
    /// No matrices were given.
    Empty,
    /// The number of weights differs from the number of matrices.
    WeightCountMismatch {
        /// Number of matrices supplied.
        matrices: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// Weights are negative or do not sum to one.
    InvalidWeights {
        /// Sum of the supplied weights.
        sum: f64,
    },
    /// The matrices have different state counts.
    DimensionMismatch {
        /// State count of the first matrix.
        expected: usize,
        /// State count of the offending matrix.
        found: usize,
    },
    /// The combination failed row-stochasticity validation (should not happen
    /// for valid inputs; surfaced for completeness).
    Invalid(TransitionError),
}

impl std::fmt::Display for CombineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineError::Empty => write!(f, "no transition matrices to combine"),
            CombineError::WeightCountMismatch { matrices, weights } => {
                write!(f, "{matrices} matrices but {weights} weights supplied")
            }
            CombineError::InvalidWeights { sum } => {
                write!(f, "weights must be non-negative and sum to 1 (sum = {sum})")
            }
            CombineError::DimensionMismatch { expected, found } => {
                write!(f, "matrix with {found} states, expected {expected}")
            }
            CombineError::Invalid(e) => write!(f, "combined matrix invalid: {e}"),
        }
    }
}

impl std::error::Error for CombineError {}

/// Computes the convex combination `Σ_i weights[i] · matrices[i]`.
///
/// # Errors
///
/// Returns a [`CombineError`] if the inputs are empty, mismatched in size, or
/// the weights are not a probability vector.
///
/// # Example
///
/// ```
/// use marqsim_markov::{combine::combine, TransitionMatrix};
///
/// let pi = vec![0.5, 0.5];
/// let p_qd = TransitionMatrix::from_stationary(&pi);
/// let p_swap = TransitionMatrix::new(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
/// let p = combine(&[p_qd, p_swap], &[0.4, 0.6]).unwrap();
/// assert!(p.preserves_distribution(&pi, 1e-12));
/// ```
pub fn combine(
    matrices: &[TransitionMatrix],
    weights: &[f64],
) -> Result<TransitionMatrix, CombineError> {
    let refs: Vec<&TransitionMatrix> = matrices.iter().collect();
    combine_refs(&refs, weights)
}

/// Like [`combine`], but borrows each matrix. This is the entry point for
/// callers holding components in shared storage — e.g. the engine's
/// transition cache reusing one solved `P_gc` across strategies — where
/// cloning an `n × n` matrix per combination would dominate the (cheap)
/// combine itself.
///
/// # Errors
///
/// Same failure modes as [`combine`].
pub fn combine_refs(
    matrices: &[&TransitionMatrix],
    weights: &[f64],
) -> Result<TransitionMatrix, CombineError> {
    if matrices.is_empty() {
        return Err(CombineError::Empty);
    }
    if matrices.len() != weights.len() {
        return Err(CombineError::WeightCountMismatch {
            matrices: matrices.len(),
            weights: weights.len(),
        });
    }
    let sum: f64 = weights.iter().sum();
    if weights.iter().any(|&w| w < -1e-12) || (sum - 1.0).abs() > 1e-9 {
        return Err(CombineError::InvalidWeights { sum });
    }
    let n = matrices[0].num_states();
    for &m in matrices {
        if m.num_states() != n {
            return Err(CombineError::DimensionMismatch {
                expected: n,
                found: m.num_states(),
            });
        }
    }
    let mut rows = vec![vec![0.0; n]; n];
    for (&m, &w) in matrices.iter().zip(weights.iter()) {
        if w == 0.0 {
            continue;
        }
        for i in 0..n {
            for j in 0..n {
                rows[i][j] += w * m.prob(i, j);
            }
        }
    }
    TransitionMatrix::new(rows).map_err(CombineError::Invalid)
}

/// Convenience for the two-matrix blend `θ·A + (1−θ)·B` used throughout the
/// evaluation (`P = 0.4 P_qd + 0.6 P_gc`, etc.).
///
/// # Errors
///
/// Same failure modes as [`combine`].
pub fn blend(
    a: &TransitionMatrix,
    b: &TransitionMatrix,
    weight_a: f64,
) -> Result<TransitionMatrix, CombineError> {
    combine_refs(&[a, b], &[weight_a, 1.0 - weight_a])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pi() -> Vec<f64> {
        vec![0.5, 0.25, 0.2, 0.05]
    }

    /// A deterministic stationary-preserving matrix other than qDRIFT: the
    /// gate-cancellation matrix of Example 5.1.
    fn p_gc() -> TransitionMatrix {
        TransitionMatrix::new(vec![
            vec![0.0, 0.5, 0.4, 0.1],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn paper_example_5_2_combination() {
        let p_qd = TransitionMatrix::from_stationary(&pi());
        let p = combine(&[p_qd, p_gc()], &[0.4, 0.6]).unwrap();
        // Equation (15) of the paper.
        let expected = [
            [0.2, 0.4, 0.32, 0.08],
            [0.8, 0.1, 0.08, 0.02],
            [0.8, 0.1, 0.08, 0.02],
            [0.8, 0.1, 0.08, 0.02],
        ];
        for i in 0..4 {
            for j in 0..4 {
                assert!((p.prob(i, j) - expected[i][j]).abs() < 1e-12, "({i},{j})");
            }
        }
        assert!(p.preserves_distribution(&pi(), 1e-12));
        assert!(p.is_strongly_connected());
    }

    #[test]
    fn theorem_5_2_stationarity_is_preserved_by_any_convex_combination() {
        let p_qd = TransitionMatrix::from_stationary(&pi());
        assert!(p_gc().preserves_distribution(&pi(), 1e-12));
        for theta in [0.0, 0.1, 0.35, 0.5, 0.8, 1.0] {
            let p = blend(&p_qd, &p_gc(), theta).unwrap();
            assert!(p.preserves_distribution(&pi(), 1e-12), "theta={theta}");
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(combine(&[], &[]).unwrap_err(), CombineError::Empty);
        assert_eq!(combine_refs(&[], &[]).unwrap_err(), CombineError::Empty);
    }

    #[test]
    fn combine_refs_matches_the_owning_variant() {
        let p_qd = TransitionMatrix::from_stationary(&pi());
        let owned = combine(&[p_qd.clone(), p_gc()], &[0.4, 0.6]).unwrap();
        let borrowed = combine_refs(&[&p_qd, &p_gc()], &[0.4, 0.6]).unwrap();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn weight_count_mismatch_rejected() {
        let p = TransitionMatrix::from_stationary(&[1.0]);
        assert!(matches!(
            combine(&[p], &[0.5, 0.5]).unwrap_err(),
            CombineError::WeightCountMismatch { .. }
        ));
    }

    #[test]
    fn invalid_weights_rejected() {
        let p = TransitionMatrix::from_stationary(&[0.5, 0.5]);
        assert!(matches!(
            combine(&[p.clone(), p.clone()], &[0.7, 0.7]).unwrap_err(),
            CombineError::InvalidWeights { .. }
        ));
        assert!(matches!(
            combine(&[p.clone(), p], &[1.5, -0.5]).unwrap_err(),
            CombineError::InvalidWeights { .. }
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = TransitionMatrix::from_stationary(&[0.5, 0.5]);
        let b = TransitionMatrix::from_stationary(&[0.4, 0.3, 0.3]);
        assert!(matches!(
            combine(&[a, b], &[0.5, 0.5]).unwrap_err(),
            CombineError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn blending_with_qdrift_guarantees_strong_connectivity() {
        // A disconnected deterministic matrix becomes strongly connected once
        // blended with any positive amount of the all-positive qDRIFT matrix.
        let disconnected = TransitionMatrix::new(vec![
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert!(!disconnected.is_strongly_connected());
        let p_qd = TransitionMatrix::from_stationary(&pi());
        let p = blend(&p_qd, &disconnected, 0.1).unwrap();
        assert!(p.is_strongly_connected());
    }
}
