//! The engine: workload execution over the pool + cache.
//!
//! The public job surface is the open [`Workload`] trait (see
//! [`crate::workload`]); this module owns the machinery underneath it — the
//! engine itself and the built-in compile/sweep job plumbing with its
//! deduplicated graph resolution and flattened point-task queue.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;

use marqsim_core::experiment::{
    compile_point, point_seed, ExperimentPoint, SweepConfig, SweepResult,
};
use marqsim_core::metrics::evaluate_fidelity;
use marqsim_core::{
    CompileError, CompileResult, Compiler, CompilerConfig, HttGraph, SolverKind, TransitionStrategy,
};
use marqsim_obs::{metrics, trace};
use marqsim_pauli::Hamiltonian;

use crate::cache::{hamiltonian_fingerprint, CacheConfig, CacheKey, StrategyKey, TransitionCache};
use crate::error::EngineError;
use crate::job::{CancelToken, JobControl, JobHandle, JobId, JobState};
use crate::pool::{Priority, ThreadPool};
use crate::workload::{
    CompileWorkload, ProgressCadence, ProgressSink, SubmitOptions, SweepWorkload, Workload,
    WorkloadCtx, WorkloadOutput,
};

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker-thread count; `0` means "auto" (all available cores).
    pub threads: usize,
    /// Cache configuration: sharding, the per-shard LRU cap, and the
    /// optional persistence directory.
    pub cache: CacheConfig,
    /// Whether transition matrices are cached and shared across jobs. With
    /// the cache disabled each job still builds its HTT graph exactly once,
    /// but nothing is reused between jobs and nothing touches the
    /// persistence directory.
    pub cache_enabled: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache: CacheConfig::default(),
            cache_enabled: true,
        }
    }
}

impl EngineConfig {
    /// Reads the configuration from the environment:
    ///
    /// * `MARQSIM_THREADS=N` — worker count (positive integer);
    /// * `MARQSIM_CACHE=on|off` (also `1/0`, `true/false`, `yes/no`) —
    ///   enable/disable the transition cache;
    /// * `MARQSIM_CACHE_CAP=N` — LRU entry cap per cache shard
    ///   (`0` = unbounded, default [`DEFAULT_CACHE_CAP`](crate::cache::DEFAULT_CACHE_CAP));
    /// * `MARQSIM_CACHE_DIR=PATH` — enable `P_gc` disk persistence;
    /// * `MARQSIM_FLOW_SOLVER=ssp|network_simplex` — default min-cost-flow
    ///   backend for every flow solve this engine performs.
    ///
    /// Unset or empty variables keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] naming the offending variable
    /// and value for anything unparsable — `MARQSIM_THREADS=0` or garbage
    /// never silently falls back to a default.
    pub fn from_env() -> Result<Self, EngineError> {
        fn var(name: &str) -> Option<String> {
            std::env::var(name)
                .ok()
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
        }
        EngineConfig::from_values(
            var("MARQSIM_THREADS").as_deref(),
            var("MARQSIM_CACHE").as_deref(),
            var("MARQSIM_CACHE_CAP").as_deref(),
            var("MARQSIM_CACHE_DIR").as_deref(),
            var("MARQSIM_FLOW_SOLVER").as_deref(),
        )
    }

    /// Builds a configuration from raw override strings — the pure core of
    /// [`from_env`](Self::from_env) (environment variables are process-global,
    /// so tests validate parsing through this entry point). `None` means
    /// "keep the default" for each setting.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for an unparsable value; see
    /// [`from_env`](Self::from_env).
    pub fn from_values(
        threads: Option<&str>,
        cache: Option<&str>,
        cache_cap: Option<&str>,
        cache_dir: Option<&str>,
        flow_solver: Option<&str>,
    ) -> Result<Self, EngineError> {
        let mut config = EngineConfig::default();
        if let Some(raw) = threads {
            config.threads = EngineConfig::parse_threads("MARQSIM_THREADS", raw)?;
        }
        if let Some(raw) = cache {
            config.cache_enabled = match raw.to_ascii_lowercase().as_str() {
                "1" | "on" | "true" | "yes" => true,
                "0" | "off" | "false" | "no" => false,
                _ => {
                    return Err(EngineError::invalid_config(format!(
                        "MARQSIM_CACHE={raw:?} is not a recognized switch (use on/off, 1/0, true/false, yes/no)"
                    )))
                }
            };
        }
        if let Some(raw) = cache_cap {
            config.cache.cap_per_shard = raw.parse::<usize>().map_err(|_| {
                EngineError::invalid_config(format!(
                    "MARQSIM_CACHE_CAP={raw:?} is not an entry count (use a non-negative integer; 0 = unbounded)"
                ))
            })?;
        }
        if let Some(raw) = cache_dir {
            config.cache.persist_dir = Some(raw.into());
        }
        if let Some(raw) = flow_solver {
            config.cache.flow_solver = SolverKind::parse(raw).ok_or_else(|| {
                EngineError::invalid_config(format!(
                    "MARQSIM_FLOW_SOLVER={raw:?} is not a registered backend (use {})",
                    SolverKind::SELECTABLE.map(SolverKind::as_str).join("/")
                ))
            })?;
        }
        Ok(config)
    }

    /// Strictly parses a worker-count override, naming `var` in the error
    /// so every thread-count variable (`MARQSIM_THREADS`, the serve
    /// daemon's `MARQSIM_SERVE_THREADS`) shares one parsing rule and one
    /// diagnostic shape.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for `0` or anything that is
    /// not a positive integer.
    pub fn parse_threads(var: &str, raw: &str) -> Result<usize, EngineError> {
        match raw.parse::<usize>() {
            Ok(0) => Err(EngineError::invalid_config(format!(
                "{var}=0 would run no workers; unset it to use all available cores"
            ))),
            Ok(n) => Ok(n),
            Err(_) => Err(EngineError::invalid_config(format!(
                "{var}={raw:?} is not a positive integer"
            ))),
        }
    }

    /// Sets the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the transition cache.
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Replaces the cache configuration (sharding, cap, persistence).
    pub fn with_cache_config(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One compile job: a Hamiltonian and a full compiler configuration.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Identifies the job in outcomes, errors, and progress reports.
    pub label: String,
    /// The Hamiltonian to compile.
    pub hamiltonian: Hamiltonian,
    /// Compiler parameters (strategy, time, ε, seed, synthesis flags).
    pub config: CompilerConfig,
    /// Whether to also evaluate the unitary fidelity of the sampled
    /// sequence (exponential in qubit count — keep to small systems).
    pub evaluate_fidelity: bool,
}

impl CompileRequest {
    /// A compile-only request.
    pub fn new(label: impl Into<String>, hamiltonian: Hamiltonian, config: CompilerConfig) -> Self {
        CompileRequest {
            label: label.into(),
            hamiltonian,
            config,
            evaluate_fidelity: false,
        }
    }

    /// Requests fidelity evaluation alongside the compile.
    pub fn with_fidelity(mut self) -> Self {
        self.evaluate_fidelity = true;
        self
    }
}

/// The output of one [`CompileRequest`].
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// Label of the request that produced this outcome.
    pub label: String,
    /// The compiler output.
    pub result: CompileResult,
    /// Unitary fidelity, when requested.
    pub fidelity: Option<f64>,
}

/// One full-sweep job: a (benchmark, strategy) pair swept over precisions
/// and repetitions, exactly like `marqsim_core::experiment::run_sweep`.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// Identifies the job in outcomes, errors, and progress reports.
    pub label: String,
    /// The Hamiltonian to sweep.
    pub hamiltonian: Hamiltonian,
    /// Transition strategy for every point of this sweep.
    pub strategy: TransitionStrategy,
    /// Precisions, repetitions, base seed, fidelity switch.
    pub config: SweepConfig,
}

impl SweepRequest {
    /// Creates a sweep request.
    pub fn new(
        label: impl Into<String>,
        hamiltonian: Hamiltonian,
        strategy: TransitionStrategy,
        config: SweepConfig,
    ) -> Self {
        SweepRequest {
            label: label.into(),
            hamiltonian,
            strategy,
            config,
        }
    }
}

/// A built-in (compile or sweep) job — the unit the batched machinery
/// schedules. Public API routes through the [`Workload`] trait; this enum
/// stays internal so new workload kinds never require engine surgery.
#[derive(Debug, Clone)]
pub(crate) enum BuiltinJob {
    Compile(CompileRequest),
    Sweep(SweepRequest),
}

impl BuiltinJob {
    fn label(&self) -> &str {
        match self {
            BuiltinJob::Compile(req) => &req.label,
            BuiltinJob::Sweep(req) => &req.label,
        }
    }

    fn hamiltonian(&self) -> &Hamiltonian {
        match self {
            BuiltinJob::Compile(req) => &req.hamiltonian,
            BuiltinJob::Sweep(req) => &req.hamiltonian,
        }
    }

    fn strategy(&self) -> &TransitionStrategy {
        match self {
            BuiltinJob::Compile(req) => &req.config.strategy,
            BuiltinJob::Sweep(req) => &req.strategy,
        }
    }
}

/// The result of one built-in job.
#[derive(Debug, Clone)]
pub(crate) enum BuiltinOutcome {
    /// Output of a compile job (boxed: a [`CompileResult`] is an order of
    /// magnitude larger than a sweep handle).
    Compiled(Box<CompileOutcome>),
    /// Output of a sweep job.
    Swept(SweepResult),
}

/// A progress snapshot, reported once per completed unit of work (subject
/// to the submission's [`ProgressCadence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Units finished so far.
    pub completed: usize,
    /// Total units of the running job.
    pub total: usize,
}

pub(crate) type ProgressFn = dyn Fn(Progress) + Send + Sync;

/// The parallel compilation engine.
///
/// Owns a [`ThreadPool`] and a [`TransitionCache`]; see the crate docs for
/// the job model and the determinism guarantee.
pub struct Engine {
    pool: ThreadPool,
    cache: Arc<TransitionCache>,
    progress: Option<Arc<ProgressFn>>,
    cache_enabled: bool,
    next_job_id: AtomicU64,
    active_jobs: AtomicUsize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.pool.threads())
            .field("cache_enabled", &self.cache_enabled)
            .field("cache", &self.cache.stats())
            .field("active_jobs", &self.active_jobs())
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            pool: ThreadPool::new(config.resolved_threads()),
            cache: Arc::new(TransitionCache::with_config(config.cache.clone())),
            progress: None,
            cache_enabled: config.cache_enabled,
            next_job_id: AtomicU64::new(1),
            active_jobs: AtomicUsize::new(0),
        }
    }

    /// Creates an engine configured from the environment
    /// (`MARQSIM_THREADS`, `MARQSIM_CACHE`, `MARQSIM_CACHE_CAP`,
    /// `MARQSIM_CACHE_DIR`). This is what every `marqsim-bench` binary
    /// uses.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for an unparsable override —
    /// see [`EngineConfig::from_env`].
    pub fn from_env() -> Result<Self, EngineError> {
        Ok(Engine::new(EngineConfig::from_env()?))
    }

    /// Installs a default progress callback for *synchronous* runs
    /// ([`run_workload`](Self::run_workload), [`compile_many`](Self::compile_many),
    /// [`run_sweeps`](Self::run_sweeps)), invoked on the calling thread once
    /// per completed unit. Asynchronous submissions attach their own
    /// callback via [`submit_with_progress`](Self::submit_with_progress).
    pub fn with_progress(mut self, callback: impl Fn(Progress) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(callback));
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The transition cache (for statistics and explicit clearing).
    pub fn cache(&self) -> &TransitionCache {
        &self.cache
    }

    /// Whether transition-matrix caching is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// The engine's default min-cost-flow backend (`MARQSIM_FLOW_SOLVER` /
    /// [`CacheConfig::flow_solver`]); a submission's
    /// [`SubmitOptions::flow_solver`] overrides it per job.
    pub fn flow_solver(&self) -> SolverKind {
        self.cache.flow_solver()
    }

    /// Number of asynchronously submitted jobs that have not yet produced
    /// an outcome.
    pub fn active_jobs(&self) -> usize {
        self.active_jobs.load(Ordering::Relaxed)
    }

    /// Number of point-level tasks waiting in the pool's injector — the
    /// queue-depth signal the serve layer reports in its `stats` verb.
    pub fn queue_depth(&self) -> usize {
        self.pool.queued()
    }

    pub(crate) fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    fn default_sink(&self) -> ProgressSink {
        ProgressSink::new(self.progress.clone(), None, ProgressCadence::default())
    }

    /// The shared plumbing of every *synchronous* built-in run
    /// ([`compile_many`](Self::compile_many), [`run_sweeps`](Self::run_sweeps)):
    /// fresh cancel token, engine-level progress sink, normal priority,
    /// engine-default flow solver.
    fn run_builtin_default(
        &self,
        jobs: Vec<BuiltinJob>,
    ) -> Vec<Result<BuiltinOutcome, EngineError>> {
        let sink = self.default_sink();
        self.run_builtin(
            jobs,
            &CancelToken::new(),
            &|completed, total| sink.emit(Progress { completed, total }),
            Priority::Normal,
            self.flow_solver(),
        )
    }

    /// Runs one workload synchronously on the calling thread (its pool
    /// fan-out still parallelizes) and returns its output. Progress goes to
    /// the engine-level [`with_progress`](Self::with_progress) callback.
    ///
    /// # Errors
    ///
    /// Returns the workload's [`EngineError`].
    pub fn run_workload(&self, workload: &dyn Workload) -> Result<WorkloadOutput, EngineError> {
        let ctx = WorkloadCtx::new(
            self,
            workload.label().to_string(),
            CancelToken::new(),
            self.default_sink(),
            Priority::Normal,
            self.flow_solver(),
            workload.total_units(),
        );
        workload.run(&ctx)
    }

    /// Submits one workload for asynchronous execution and returns
    /// immediately with a [`JobHandle`] carrying the job's engine-unique
    /// [`JobId`].
    ///
    /// The workload runs on a dedicated coordinator thread (its pool
    /// fan-out interleaves with every other job's on the shared work
    /// queue), so the caller never blocks. Collect the outcome with
    /// [`JobHandle::collect`] (blocking) or [`JobHandle::try_collect`]
    /// (non-blocking); request cooperative cancellation with
    /// [`JobHandle::cancel`] (observed by built-in workloads before graph
    /// resolution and before every point-level task, so a cancelled job
    /// resolves to [`EngineError::Cancelled`] after its in-flight units
    /// drain).
    pub fn submit<W: Workload + 'static>(self: &Arc<Self>, workload: W) -> JobHandle {
        self.submit_with_options(workload, SubmitOptions::default(), |_| {})
    }

    /// Like [`submit`](Self::submit), with a per-job progress callback
    /// invoked on the coordinator thread (subject to the default
    /// [`ProgressCadence`]: one event per completed unit). The handle's
    /// [`progress`](JobHandle::progress) snapshot is updated either way.
    pub fn submit_with_progress<W: Workload + 'static>(
        self: &Arc<Self>,
        workload: W,
        callback: impl Fn(Progress) + Send + Sync + 'static,
    ) -> JobHandle {
        self.submit_with_options(workload, SubmitOptions::default(), callback)
    }

    /// The full submission entry point: explicit [`SubmitOptions`]
    /// (priority, admission bound, progress cadence) plus a per-job
    /// progress callback.
    pub fn submit_with_options<W: Workload + 'static>(
        self: &Arc<Self>,
        workload: W,
        options: SubmitOptions,
        callback: impl Fn(Progress) + Send + Sync + 'static,
    ) -> JobHandle {
        let (tx, rx) = channel();
        let control = self.submit_with_hooks(
            workload,
            options,
            move |_, progress| callback(progress),
            move |_, outcome| {
                // The handle may have been dropped; the outcome is then
                // discarded, which is the fire-and-forget contract.
                let _ = tx.send(outcome);
            },
        );
        JobHandle::new(control, rx)
    }

    /// The hook-based submission entry point under
    /// [`submit_with_options`](Self::submit_with_options): instead of a
    /// [`JobHandle`] to block on, the caller passes a completion hook and
    /// gets the job's [`JobControl`] back immediately. Both hooks run on
    /// the job's coordinator thread and carry the engine-assigned
    /// [`JobId`], so a caller multiplexing many jobs into one queue (the
    /// serve event loop) needs neither a per-job waiter thread nor an id
    /// handshake with the progress stream.
    ///
    /// `on_complete` fires exactly once, after the job is marked finished
    /// ([`JobControl::is_finished`] already answers `true` inside the
    /// hook) and the engine's active-job gauge has been decremented.
    pub fn submit_with_hooks<W: Workload + 'static>(
        self: &Arc<Self>,
        workload: W,
        options: SubmitOptions,
        on_progress: impl Fn(JobId, Progress) + Send + Sync + 'static,
        on_complete: impl FnOnce(JobId, Result<WorkloadOutput, EngineError>) + Send + 'static,
    ) -> JobControl {
        let id = JobId(self.next_job_id.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(JobState::new(id, workload.label().to_string()));
        let control = JobControl::new(Arc::clone(&state));
        let flow_solver = options.flow_solver.unwrap_or_else(|| self.flow_solver());

        self.active_jobs.fetch_add(1, Ordering::Relaxed);
        let registry = metrics::global();
        registry.counter("marqsim_engine_jobs_total").inc();
        registry.gauge("marqsim_engine_active_jobs").add(1);
        let engine = Arc::clone(self);
        let coordinator_state = Arc::clone(&state);
        let job_id = id.0;
        std::thread::Builder::new()
            .name(format!("marqsim-job-{}", id.0))
            .spawn(move || {
                // The job span is opened on the coordinator thread, so
                // everything the workload does — graph resolution, pool
                // submissions (whose tasks re-parent here), persist I/O —
                // nests under it in the trace.
                let _job_span = trace::Span::enter("job")
                    // Named `job`, not `id`: the record already carries
                    // the span's own `id` key.
                    .field("job", job_id)
                    .field("label", coordinator_state.label.as_str())
                    .field("flow_solver", flow_solver.as_str());
                let sink = ProgressSink::new(
                    Some(Arc::new(move |progress| on_progress(id, progress))),
                    Some(Arc::clone(&coordinator_state)),
                    options.progress_every,
                );
                let cancel = coordinator_state.cancel.clone();
                // A job cancelled before it starts never touches the pool.
                let outcome = if cancel.is_cancelled() {
                    Err(EngineError::cancelled(&coordinator_state.label))
                } else {
                    let ctx = WorkloadCtx::new(
                        &engine,
                        coordinator_state.label.clone(),
                        cancel,
                        sink,
                        options.priority,
                        flow_solver,
                        workload.total_units(),
                    );
                    // A panic in a custom workload body costs that job, not
                    // the coordinator accounting (the handle still resolves,
                    // active_jobs still decrements).
                    catch_unwind(AssertUnwindSafe(|| workload.run(&ctx))).unwrap_or_else(
                        |payload| {
                            let message = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "workload panicked".to_string());
                            Err(EngineError::panic(&coordinator_state.label, message))
                        },
                    )
                };
                coordinator_state.mark_finished();
                engine.active_jobs.fetch_sub(1, Ordering::Relaxed);
                metrics::global().gauge("marqsim_engine_active_jobs").sub(1);
                on_complete(id, outcome);
            })
            .expect("spawn job coordinator");

        control
    }

    /// Compiles one request on the calling thread's batch machinery.
    ///
    /// # Errors
    ///
    /// Returns the job's [`EngineError`].
    pub fn compile(&self, request: CompileRequest) -> Result<CompileOutcome, EngineError> {
        self.run_workload(&CompileWorkload::new(request))
            .map(WorkloadOutput::into_compiled)
    }

    /// Compiles many requests concurrently; outcomes keep request order.
    pub fn compile_many(
        &self,
        requests: Vec<CompileRequest>,
    ) -> Vec<Result<CompileOutcome, EngineError>> {
        let jobs = requests.into_iter().map(BuiltinJob::Compile).collect();
        self.run_builtin_default(jobs)
            .into_iter()
            .map(|outcome| {
                outcome.map(|outcome| match outcome {
                    BuiltinOutcome::Compiled(compiled) => *compiled,
                    BuiltinOutcome::Swept(_) => {
                        unreachable!("compile jobs produce compile outcomes")
                    }
                })
            })
            .collect()
    }

    /// Runs one sweep across the pool. Byte-identical to
    /// `marqsim_core::experiment::run_sweep` with the same arguments.
    ///
    /// # Errors
    ///
    /// Returns the first failing point's [`EngineError`].
    pub fn run_sweep(
        &self,
        ham: &Hamiltonian,
        strategy: &TransitionStrategy,
        config: &SweepConfig,
    ) -> Result<SweepResult, EngineError> {
        self.run_workload(&SweepWorkload::new(SweepRequest::new(
            strategy.label(),
            ham.clone(),
            strategy.clone(),
            config.clone(),
        )))
        .map(WorkloadOutput::into_swept)
    }

    /// Runs many sweeps concurrently on one flattened work queue; outcomes
    /// keep request order.
    pub fn run_sweeps(&self, requests: Vec<SweepRequest>) -> Vec<Result<SweepResult, EngineError>> {
        let jobs = requests.into_iter().map(BuiltinJob::Sweep).collect();
        self.run_builtin_default(jobs)
            .into_iter()
            .map(|outcome| {
                outcome.map(|outcome| match outcome {
                    BuiltinOutcome::Swept(sweep) => sweep,
                    BuiltinOutcome::Compiled(_) => {
                        unreachable!("sweep jobs produce sweep outcomes")
                    }
                })
            })
            .collect()
    }

    /// Generic parallel map over the engine's pool: applies `f` to every
    /// item concurrently and returns outputs in input order. Worker panics
    /// become [`EngineError::WorkerPanic`] tagged with `label`, so workload
    /// errors carry the job label.
    pub fn map<I, O, F>(&self, label: &str, items: Vec<I>, f: F) -> Vec<Result<O, EngineError>>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        self.pool
            .map(items, Arc::new(f), |_| {})
            .into_iter()
            .map(|result| result.map_err(|message| EngineError::panic(label, message)))
            .collect()
    }

    /// Runs a list of built-in jobs: two-phase execution with deduplicated
    /// graph resolution and one flattened point-task queue.
    ///
    /// Execution has two phases. First every job's HTT graph is resolved
    /// (through the cache when enabled) with the graph builds themselves
    /// running on the pool — distinct Hamiltonians' min-cost-flow solves
    /// proceed concurrently. Then all jobs are expanded into point-level
    /// tasks (one per compile, one per sweep point) on a single work queue.
    ///
    /// Determinism: each task's output is a pure function of its request
    /// (sweep points use `experiment::point_seed`, the serial seed stream),
    /// so outcomes are bit-identical for any thread count or priority.
    pub(crate) fn run_builtin(
        &self,
        jobs: Vec<BuiltinJob>,
        cancel: &CancelToken,
        on_progress: &(dyn Fn(usize, usize) + Sync),
        priority: Priority,
        solver: SolverKind,
    ) -> Vec<Result<BuiltinOutcome, EngineError>> {
        // A job cancelled before graph resolution never touches the pool.
        if cancel.is_cancelled() {
            return jobs
                .iter()
                .map(|job| Err(EngineError::cancelled(job.label())))
                .collect();
        }
        // Phase 1: resolve one HTT graph per job, building on the pool.
        let graphs = {
            let _span = trace::Span::enter("resolve_graph")
                .field("jobs", jobs.len())
                .field("backend", solver.as_str());
            self.resolve_graphs(&jobs, priority, solver)
        };

        // Phase 2: expand into point-level tasks.
        let mut tasks: Vec<Task> = Vec::new();
        for (job_idx, (job, graph)) in jobs.iter().zip(&graphs).enumerate() {
            let graph = match graph {
                Ok(graph) => Arc::clone(graph),
                Err(_) => continue,
            };
            match job {
                BuiltinJob::Compile(req) => tasks.push(Task {
                    job: job_idx,
                    slot: 0,
                    kind: TaskKind::Compile {
                        request: req.clone(),
                        graph,
                    },
                }),
                BuiltinJob::Sweep(req) => {
                    for (eps_idx, &epsilon) in req.config.epsilons.iter().enumerate() {
                        for rep in 0..req.config.repeats {
                            tasks.push(Task {
                                job: job_idx,
                                slot: eps_idx * req.config.repeats + rep,
                                kind: TaskKind::SweepPoint {
                                    graph: Arc::clone(&graph),
                                    config: req.config.clone(),
                                    epsilon,
                                    seed: point_seed(&req.config, eps_idx, rep),
                                },
                            });
                        }
                    }
                }
            }
        }

        let total = tasks.len();
        let task_meta: Vec<(usize, usize)> = tasks.iter().map(|t| (t.job, t.slot)).collect();
        let task_cancel = cancel.clone();
        let outputs = self.pool.map_at(
            priority,
            tasks,
            Arc::new(move |_index: usize, task: Task| task.run(&task_cancel)),
            |done| on_progress(done, total),
        );

        // Phase 3: reassemble per job.
        self.assemble(jobs, graphs, task_meta, outputs)
    }

    /// Resolves each job's HTT graph through the cache, building each
    /// *distinct* key exactly once.
    ///
    /// Same-batch duplicates are deduplicated up front (not left to racing
    /// cache misses), and distinct keys that share a Hamiltonian fingerprint
    /// — e.g. the GC and GC-RP strategies of one benchmark — are built
    /// sequentially within one pool task so the second build sees the
    /// first's cached `P_gc` component. Unrelated Hamiltonians' builds
    /// still run concurrently across pool workers.
    ///
    /// With the cache disabled every job builds independently (no sharing),
    /// which is that mode's documented contract.
    fn resolve_graphs(
        &self,
        jobs: &[BuiltinJob],
        priority: Priority,
        solver: SolverKind,
    ) -> Vec<Result<Arc<HttGraph>, EngineError>> {
        if !self.cache_enabled {
            let inputs: Vec<(Hamiltonian, TransitionStrategy)> = jobs
                .iter()
                .map(|job| (job.hamiltonian().clone(), job.strategy().clone()))
                .collect();
            return self
                .pool
                .map_at(
                    priority,
                    inputs,
                    Arc::new(
                        move |_idx, (ham, strategy): (Hamiltonian, TransitionStrategy)| {
                            HttGraph::build_with_solver(&ham, &strategy, solver).map(Arc::new)
                        },
                    ),
                    |_| {},
                )
                .into_iter()
                .zip(jobs)
                .map(|(result, job)| match result {
                    Ok(built) => built.map_err(|e| EngineError::compile(job.label(), e)),
                    Err(message) => Err(EngineError::panic(job.label(), message)),
                })
                .collect();
        }

        // Deduplicate: one entry per distinct (Hamiltonian, strategy). The
        // cache key narrows candidates, but duplicates are confirmed by
        // full Hamiltonian equality, mirroring the cache's own
        // collision-proof lookup.
        let mut distinct: Vec<(Hamiltonian, TransitionStrategy, CacheKey)> = Vec::new();
        let mut job_to_distinct: Vec<usize> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let key = CacheKey {
                fingerprint: hamiltonian_fingerprint(job.hamiltonian()),
                strategy: StrategyKey::of(job.strategy()),
                solver,
            };
            let index = distinct
                .iter()
                .position(|(ham, _, k)| *k == key && ham == job.hamiltonian());
            job_to_distinct.push(index.unwrap_or_else(|| {
                distinct.push((job.hamiltonian().clone(), job.strategy().clone(), key));
                distinct.len() - 1
            }));
        }

        // Group distinct entries by fingerprint so same-Hamiltonian builds
        // run sequentially in one task (sharing the P_gc component solve).
        let mut groups_by_fp: HashMap<u64, Vec<usize>> = HashMap::new();
        for (index, (_, _, key)) in distinct.iter().enumerate() {
            groups_by_fp.entry(key.fingerprint).or_default().push(index);
        }
        let groups: Vec<Vec<usize>> = groups_by_fp.into_values().collect();
        let group_members = groups.clone();

        let cache = Arc::clone(&self.cache);
        let distinct_count = distinct.len();
        let shared_distinct = Arc::new(distinct);
        let group_results = self.pool.map_at(
            priority,
            groups,
            Arc::new(move |_idx, members: Vec<usize>| {
                members
                    .into_iter()
                    .map(|index| {
                        let (ham, strategy, _) = &shared_distinct[index];
                        (index, cache.get_or_build_with(ham, strategy, solver))
                    })
                    .collect::<Vec<_>>()
            }),
            |_| {},
        );

        enum Built {
            Graph(Arc<HttGraph>),
            Failed(CompileError),
            Panicked(String),
        }
        let mut built: Vec<Option<Built>> = (0..distinct_count).map(|_| None).collect();
        for (members, result) in group_members.iter().zip(group_results) {
            match result {
                Ok(entries) => {
                    for (index, outcome) in entries {
                        built[index] = Some(match outcome {
                            Ok(graph) => Built::Graph(graph),
                            Err(e) => Built::Failed(e),
                        });
                    }
                }
                // The panic message is attributed only to this group's
                // members — other groups keep their own outcomes.
                Err(message) => {
                    for &index in members {
                        built[index] = Some(Built::Panicked(message.clone()));
                    }
                }
            }
        }

        jobs.iter()
            .zip(&job_to_distinct)
            .map(|(job, &index)| {
                match built[index]
                    .as_ref()
                    .expect("every distinct entry was built or attributed")
                {
                    Built::Graph(graph) => Ok(Arc::clone(graph)),
                    Built::Failed(e) => Err(EngineError::compile(job.label(), e.clone())),
                    Built::Panicked(message) => {
                        Err(EngineError::panic(job.label(), message.clone()))
                    }
                }
            })
            .collect()
    }

    fn assemble(
        &self,
        jobs: Vec<BuiltinJob>,
        graphs: Vec<Result<Arc<HttGraph>, EngineError>>,
        task_meta: Vec<(usize, usize)>,
        outputs: Vec<Result<TaskOutput, String>>,
    ) -> Vec<Result<BuiltinOutcome, EngineError>> {
        // Group task outputs per job; `pool.map` keeps input order, so the
        // i-th output belongs to the i-th submitted task even when the task
        // panicked and its output carries no indices of its own.
        let mut per_job: Vec<Vec<(usize, Result<TaskOutput, String>)>> =
            jobs.iter().map(|_| Vec::new()).collect();
        for (&(job, slot), output) in task_meta.iter().zip(outputs) {
            per_job[job].push((slot, output));
        }

        jobs.into_iter()
            .zip(graphs)
            .zip(per_job)
            .map(|((job, graph), mut outputs)| {
                graph?;
                outputs.sort_by_key(|(slot, _)| *slot);
                match job {
                    BuiltinJob::Compile(req) => {
                        let (_, output) = outputs.pop().expect("one task per compile job");
                        match output {
                            Ok(TaskOutput::Compiled(outcome)) => outcome
                                .map(|outcome| BuiltinOutcome::Compiled(Box::new(outcome)))
                                .map_err(|e| EngineError::compile(&req.label, e)),
                            Ok(TaskOutput::Point(_)) => {
                                unreachable!("compile jobs produce compile outputs")
                            }
                            Ok(TaskOutput::Cancelled) => Err(EngineError::cancelled(&req.label)),
                            Err(message) => Err(EngineError::panic(&req.label, message)),
                        }
                    }
                    BuiltinJob::Sweep(req) => {
                        let mut points: Vec<ExperimentPoint> = Vec::with_capacity(outputs.len());
                        for (_, output) in outputs {
                            match output {
                                Ok(TaskOutput::Point(point)) => points
                                    .push(point.map_err(|e| EngineError::compile(&req.label, e))?),
                                Ok(TaskOutput::Compiled(_)) => {
                                    unreachable!("sweep jobs produce point outputs")
                                }
                                Ok(TaskOutput::Cancelled) => {
                                    return Err(EngineError::cancelled(&req.label))
                                }
                                Err(message) => {
                                    return Err(EngineError::panic(&req.label, message))
                                }
                            }
                        }
                        Ok(BuiltinOutcome::Swept(SweepResult {
                            label: req.strategy.label(),
                            points,
                        }))
                    }
                }
            })
            .collect()
    }
}

/// One point-level unit of work.
struct Task {
    job: usize,
    slot: usize,
    kind: TaskKind,
}

enum TaskKind {
    Compile {
        request: CompileRequest,
        graph: Arc<HttGraph>,
    },
    SweepPoint {
        graph: Arc<HttGraph>,
        config: SweepConfig,
        epsilon: f64,
        seed: u64,
    },
}

enum TaskOutput {
    Compiled(Result<CompileOutcome, marqsim_core::CompileError>),
    Point(Result<ExperimentPoint, marqsim_core::CompileError>),
    /// The job was cancelled before this task started.
    Cancelled,
}

impl Task {
    fn run(self, cancel: &CancelToken) -> TaskOutput {
        if cancel.is_cancelled() {
            return TaskOutput::Cancelled;
        }
        match self.kind {
            TaskKind::Compile { request, graph } => {
                let outcome = Compiler::new(request.config.clone())
                    .compile_with_htt(&graph)
                    .map(|result| {
                        let fidelity = request.evaluate_fidelity.then(|| {
                            evaluate_fidelity(
                                &result.hamiltonian,
                                request.config.time,
                                &result.sequence,
                            )
                        });
                        CompileOutcome {
                            label: request.label,
                            result,
                            fidelity,
                        }
                    });
                TaskOutput::Compiled(outcome)
            }
            TaskKind::SweepPoint {
                graph,
                config,
                epsilon,
                seed,
            } => TaskOutput::Point(compile_point(&graph, &config, epsilon, seed)),
        }
    }
}
