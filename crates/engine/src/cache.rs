//! Transition-matrix caching.
//!
//! Building a transition matrix for the `GateCancellation*` strategies means
//! solving a min-cost-flow problem over all term pairs — the dominant cost
//! of a MarQSim compile (§6.6, Table 2). The evaluation loop re-solves that
//! identical problem for every `(ε, seed)` sweep point. [`TransitionCache`]
//! keys validated [`HttGraph`]s by a structural Hamiltonian fingerprint plus
//! a strategy key, so each `(Hamiltonian, strategy)` pair is solved once per
//! cache (each engine owns one); the `P_gc` component is additionally cached per Hamiltonian
//! alone, because it is independent of the combination weights and is shared
//! by the MarQSim-GC and MarQSim-GC-RP strategies.
//!
//! Cached values are immutable and shared via [`Arc`], so a cache hit costs
//! one map lookup, a Hamiltonian equality check, and a reference-count
//! bump. Keys are structural (FNV-1a over term coefficients and Pauli
//! operators, exact `f64` bit patterns for weights) with no float
//! tolerance, and every entry stores the Hamiltonian it was built from and
//! is matched by full equality — a 64-bit fingerprint collision therefore
//! costs one extra bucket entry, never a wrong graph.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use marqsim_core::gate_cancel::gate_cancellation_matrix;
use marqsim_core::transition::{
    build_transition_matrix_with_components, strategy_uses_gate_cancellation,
};
use marqsim_core::{CompileError, HttGraph, TransitionStrategy};
use marqsim_markov::TransitionMatrix;
use marqsim_pauli::Hamiltonian;

/// A structural 64-bit FNV-1a fingerprint of a Hamiltonian: qubit count,
/// term count, and every term's coefficient bits and Pauli operators, in
/// order. Stable across processes and platforms.
pub fn hamiltonian_fingerprint(ham: &Hamiltonian) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(ham.num_qubits() as u64);
    h.write_u64(ham.num_terms() as u64);
    for term in ham.terms() {
        h.write_u64(term.coefficient.to_bits());
        for op in term.string.ops() {
            h.write_u8(*op as u8);
        }
    }
    h.finish()
}

/// A hashable, strategy-identifying key: the variant plus exact bit patterns
/// of every weight and perturbation parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategyKey {
    variant: u8,
    qdrift_weight: u64,
    gc_weight: u64,
    rp_weight: u64,
    perturb_samples: u64,
    perturb_magnitude: u64,
    perturb_probability: u64,
    perturb_seed: u64,
}

impl StrategyKey {
    /// Builds the key for a strategy.
    pub fn of(strategy: &TransitionStrategy) -> Self {
        let zero = 0.0f64.to_bits();
        match *strategy {
            TransitionStrategy::QDrift => StrategyKey {
                variant: 0,
                qdrift_weight: 1.0f64.to_bits(),
                gc_weight: zero,
                rp_weight: zero,
                perturb_samples: 0,
                perturb_magnitude: zero,
                perturb_probability: zero,
                perturb_seed: 0,
            },
            TransitionStrategy::GateCancellation { qdrift_weight } => StrategyKey {
                variant: 1,
                qdrift_weight: qdrift_weight.to_bits(),
                gc_weight: (1.0 - qdrift_weight).to_bits(),
                rp_weight: zero,
                perturb_samples: 0,
                perturb_magnitude: zero,
                perturb_probability: zero,
                perturb_seed: 0,
            },
            TransitionStrategy::GateCancellationRandomPerturbation {
                qdrift_weight,
                gc_weight,
                ref perturbation,
            } => StrategyKey {
                variant: 2,
                qdrift_weight: qdrift_weight.to_bits(),
                gc_weight: gc_weight.to_bits(),
                rp_weight: (1.0 - qdrift_weight - gc_weight).to_bits(),
                perturb_samples: perturbation.samples as u64,
                perturb_magnitude: perturbation.magnitude.to_bits(),
                perturb_probability: perturbation.probability.to_bits(),
                perturb_seed: perturbation.seed,
            },
            TransitionStrategy::Combined {
                qdrift_weight,
                gc_weight,
                rp_weight,
                ref perturbation,
            } => StrategyKey {
                variant: 3,
                qdrift_weight: qdrift_weight.to_bits(),
                gc_weight: gc_weight.to_bits(),
                rp_weight: rp_weight.to_bits(),
                perturb_samples: perturbation.samples as u64,
                perturb_magnitude: perturbation.magnitude.to_bits(),
                perturb_probability: perturbation.probability.to_bits(),
                perturb_seed: perturbation.seed,
            },
        }
    }
}

/// Cache key: which Hamiltonian, compiled how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`hamiltonian_fingerprint`] of the (unsplit) input Hamiltonian.
    pub fingerprint: u64,
    /// [`StrategyKey`] of the transition strategy.
    pub strategy: StrategyKey,
}

/// Hit/miss counters of a [`TransitionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Graph lookups answered from the cache.
    pub hits: u64,
    /// Graph lookups that had to build the transition matrix.
    pub misses: u64,
    /// `P_gc` component solves avoided by the per-Hamiltonian component
    /// cache (on graph misses whose strategy needs `P_gc`).
    pub component_hits: u64,
    /// Number of cached graphs.
    pub graphs: usize,
    /// Number of cached `P_gc` components.
    pub components: usize,
}

/// A cache of validated HTT graphs and `P_gc` components.
///
/// Thread-safe; each [`Engine`](crate::Engine) owns one behind an [`Arc`]
/// shared by its workers (engines do not share caches — `table2` exploits
/// this to time cold and warm compiles side by side). Concurrent misses on the same key may both build the value (the
/// second insert wins), which is harmless because construction is
/// deterministic: both threads build identical graphs.
#[derive(Debug, Default)]
pub struct TransitionCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    // Buckets: entries store the requested (unsplit) Hamiltonian and are
    // matched by full equality, so a fingerprint collision degrades to an
    // extra comparison instead of silently returning the wrong graph.
    graphs: HashMap<CacheKey, Vec<(Hamiltonian, Arc<HttGraph>)>>,
    gc_components: HashMap<u64, Vec<(Hamiltonian, Arc<TransitionMatrix>)>>,
    hits: u64,
    misses: u64,
    component_hits: u64,
}

impl TransitionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TransitionCache::default()
    }

    /// Returns the cached HTT graph for `(ham, strategy)`, building and
    /// inserting it on a miss.
    ///
    /// The lock is *not* held while solving: concurrent misses trade a
    /// duplicated (deterministic, identical) solve for never blocking other
    /// strategies' lookups behind a multi-second min-cost-flow run.
    ///
    /// # Errors
    ///
    /// Propagates transition-matrix construction failures; nothing is
    /// cached for a failed build.
    pub fn get_or_build(
        &self,
        ham: &Hamiltonian,
        strategy: &TransitionStrategy,
    ) -> Result<Arc<HttGraph>, CompileError> {
        let key = CacheKey {
            fingerprint: hamiltonian_fingerprint(ham),
            strategy: StrategyKey::of(strategy),
        };
        {
            let mut inner = self.inner.lock().expect("cache lock");
            if let Some(bucket) = inner.graphs.get(&key) {
                if let Some((_, graph)) = bucket.iter().find(|(stored, _)| stored == ham) {
                    let graph = Arc::clone(graph);
                    inner.hits += 1;
                    return Ok(graph);
                }
            }
            inner.misses += 1;
        }

        // Dominant-term splitting happens before fingerprinting the working
        // Hamiltonian for the component cache: P_gc is a function of the
        // split form.
        let working = ham.split_if_dominant();
        let cached_gc = if strategy_uses_gate_cancellation(strategy) {
            Some(self.gc_component(&working)?)
        } else {
            None
        };
        let matrix =
            build_transition_matrix_with_components(&working, strategy, cached_gc.as_deref())?;
        let graph = Arc::new(HttGraph::from_matrix(&working, matrix)?);

        let mut inner = self.inner.lock().expect("cache lock");
        inner
            .graphs
            .entry(key)
            .or_default()
            .push((ham.clone(), Arc::clone(&graph)));
        Ok(graph)
    }

    /// Returns the cached `P_gc` for the (already split) Hamiltonian,
    /// solving the min-cost-flow model on a miss.
    fn gc_component(&self, working: &Hamiltonian) -> Result<Arc<TransitionMatrix>, CompileError> {
        let fp = hamiltonian_fingerprint(working);
        {
            let mut inner = self.inner.lock().expect("cache lock");
            if let Some(bucket) = inner.gc_components.get(&fp) {
                if let Some((_, gc)) = bucket.iter().find(|(stored, _)| stored == working) {
                    let gc = Arc::clone(gc);
                    inner.component_hits += 1;
                    return Ok(gc);
                }
            }
        }
        let gc = Arc::new(gate_cancellation_matrix(working)?);
        let mut inner = self.inner.lock().expect("cache lock");
        inner
            .gc_components
            .entry(fp)
            .or_default()
            .push((working.clone(), Arc::clone(&gc)));
        Ok(gc)
    }

    /// Current hit/miss counters and entry counts.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            component_hits: inner.component_hits,
            graphs: inner.graphs.values().map(Vec::len).sum(),
            components: inner.gc_components.values().map(Vec::len).sum(),
        }
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        *inner = CacheInner::default();
    }
}

/// 64-bit FNV-1a.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    #[test]
    fn fingerprint_is_structural() {
        let a = ham();
        let b = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap();
        assert_eq!(hamiltonian_fingerprint(&a), hamiltonian_fingerprint(&b));
        let c = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.2 ZXZY").unwrap();
        assert_ne!(hamiltonian_fingerprint(&a), hamiltonian_fingerprint(&c));
        let reordered = Hamiltonian::parse("0.5 IIZZ + 1.0 IIIZ + 0.4 XXYY + 0.1 ZXZY").unwrap();
        assert_ne!(
            hamiltonian_fingerprint(&a),
            hamiltonian_fingerprint(&reordered),
            "term order is part of the structure (it defines state indices)"
        );
    }

    #[test]
    fn strategy_keys_distinguish_variants_and_weights() {
        let gc = StrategyKey::of(&TransitionStrategy::marqsim_gc());
        let gc2 = StrategyKey::of(&TransitionStrategy::GateCancellation { qdrift_weight: 0.3 });
        let qd = StrategyKey::of(&TransitionStrategy::QDrift);
        let gcrp = StrategyKey::of(&TransitionStrategy::marqsim_gc_rp());
        assert_ne!(gc, gc2);
        assert_ne!(gc, qd);
        assert_ne!(gc, gcrp);
        assert_eq!(gc, StrategyKey::of(&TransitionStrategy::marqsim_gc()));
    }

    #[test]
    fn repeated_lookups_hit_and_return_the_identical_graph() {
        let cache = TransitionCache::new();
        let strategy = TransitionStrategy::marqsim_gc();
        let first = cache.get_or_build(&ham(), &strategy).unwrap();
        let second = cache.get_or_build(&ham(), &strategy).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "a cache hit must return the same allocation"
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.graphs, 1);
    }

    #[test]
    fn gc_component_is_shared_between_gc_and_gc_rp() {
        let cache = TransitionCache::new();
        cache
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc())
            .unwrap();
        cache
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc_rp())
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "two distinct strategies");
        assert_eq!(stats.components, 1, "one shared P_gc");
        assert_eq!(stats.component_hits, 1, "second strategy reused it");
    }

    #[test]
    fn cached_graph_matches_a_fresh_build() {
        let cache = TransitionCache::new();
        let strategy = TransitionStrategy::marqsim_gc_rp();
        let cached = cache.get_or_build(&ham(), &strategy).unwrap();
        let fresh = HttGraph::build(&ham(), &strategy).unwrap();
        assert_eq!(
            cached.transition_matrix().rows(),
            fresh.transition_matrix().rows()
        );
        assert_eq!(
            cached.stationary_distribution(),
            fresh.stationary_distribution()
        );
    }

    #[test]
    fn qdrift_does_not_touch_the_component_cache() {
        let cache = TransitionCache::new();
        cache
            .get_or_build(&ham(), &TransitionStrategy::QDrift)
            .unwrap();
        assert_eq!(cache.stats().components, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = TransitionCache::new();
        cache
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc())
            .unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
    }

    #[test]
    fn dominant_term_hamiltonians_are_split_before_caching() {
        let cache = TransitionCache::new();
        let dominant = Hamiltonian::parse("3.0 XXII + 0.5 ZZII + 0.5 XYZI").unwrap();
        let graph = cache
            .get_or_build(&dominant, &TransitionStrategy::marqsim_gc())
            .unwrap();
        assert_eq!(graph.num_states(), 4);
        assert!((graph.hamiltonian().lambda() - dominant.lambda()).abs() < 1e-12);
    }
}
