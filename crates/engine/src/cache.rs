//! Transition-matrix caching: sharded, LRU-bounded, optionally persistent.
//!
//! Building a transition matrix for the `GateCancellation*` strategies means
//! solving a min-cost-flow problem over all term pairs — the dominant cost
//! of a MarQSim compile (§6.6, Table 2). The evaluation loop re-solves that
//! identical problem for every `(ε, seed)` sweep point. [`TransitionCache`]
//! keys validated [`HttGraph`]s by a structural Hamiltonian fingerprint plus
//! a strategy key, so each `(Hamiltonian, strategy)` pair is solved once per
//! cache (each engine owns one); the `P_gc` component is additionally cached
//! per Hamiltonian alone, because it is independent of the combination
//! weights and is shared by the MarQSim-GC and MarQSim-GC-RP strategies.
//!
//! # Architecture
//!
//! The storage layer is a [`ShardedLru`](crate::shard::ShardedLru): entries
//! are spread over per-mutex shards selected by the fingerprint (distinct
//! Hamiltonians never contend on one lock) and each shard is bounded by an
//! LRU entry cap, so a long-lived service cannot leak memory through the
//! cache. An opt-in persistence layer spills solved `P_gc` matrices to a
//! directory in a versioned binary format (see [`crate::persist`]) and
//! loads them back in later processes, which makes repeated benchmark and
//! CI runs nearly free. Configure all three axes with [`CacheConfig`]; the
//! engine wires them to `MARQSIM_CACHE_CAP` and `MARQSIM_CACHE_DIR`.
//!
//! Cached values are immutable and shared via [`Arc`], so a cache hit costs
//! one shard-map lookup, a Hamiltonian equality check, and a reference-count
//! bump. Keys are structural (FNV-1a over term coefficients and Pauli
//! operators, exact `f64` bit patterns for weights) with no float
//! tolerance, and every entry stores the Hamiltonian it was built from and
//! is matched by full equality — a 64-bit fingerprint collision therefore
//! costs one extra bucket entry, never a wrong graph. The same full-equality
//! re-verification guards every disk load, so a stale or colliding cache
//! file degrades to a re-solve, never a wrong matrix.
//!
//! [`CacheStats`] snapshots the hit/miss/eviction and flow-solve/disk
//! counters; the evaluation binaries print it so "how much work did the
//! cache save" is always visible.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use marqsim_core::gate_cancel::gate_cancellation_matrix_with_basis;
use marqsim_core::transition::{
    build_transition_matrix_solved_by_warm, strategy_uses_gate_cancellation,
};
use marqsim_core::{CompileError, HttGraph, SolverKind, SpanningBasis, TransitionStrategy};
use marqsim_markov::TransitionMatrix;
use marqsim_obs::{metrics, trace};
use marqsim_pauli::Hamiltonian;

use crate::persist;
use crate::shard::ShardedLru;

/// Default LRU entry cap per shard — generous (a full evaluation run touches
/// a few dozen distinct keys) while still bounding a long-lived service.
pub const DEFAULT_CACHE_CAP: usize = 256;

/// A structural 64-bit FNV-1a fingerprint of a Hamiltonian: qubit count,
/// term count, and every term's coefficient bits and Pauli operators, in
/// order. Stable across processes and platforms.
pub fn hamiltonian_fingerprint(ham: &Hamiltonian) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(ham.num_qubits() as u64);
    h.write_u64(ham.num_terms() as u64);
    for term in ham.terms() {
        h.write_u64(term.coefficient.to_bits());
        for op in term.string.ops() {
            h.write_u8(*op as u8);
        }
    }
    h.finish()
}

/// A hashable, strategy-identifying key: the variant plus exact bit patterns
/// of every weight and perturbation parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategyKey {
    variant: u8,
    qdrift_weight: u64,
    gc_weight: u64,
    rp_weight: u64,
    perturb_samples: u64,
    perturb_magnitude: u64,
    perturb_probability: u64,
    perturb_seed: u64,
}

impl StrategyKey {
    /// Builds the key for a strategy.
    pub fn of(strategy: &TransitionStrategy) -> Self {
        let zero = 0.0f64.to_bits();
        match *strategy {
            TransitionStrategy::QDrift => StrategyKey {
                variant: 0,
                qdrift_weight: 1.0f64.to_bits(),
                gc_weight: zero,
                rp_weight: zero,
                perturb_samples: 0,
                perturb_magnitude: zero,
                perturb_probability: zero,
                perturb_seed: 0,
            },
            TransitionStrategy::GateCancellation { qdrift_weight } => StrategyKey {
                variant: 1,
                qdrift_weight: qdrift_weight.to_bits(),
                gc_weight: (1.0 - qdrift_weight).to_bits(),
                rp_weight: zero,
                perturb_samples: 0,
                perturb_magnitude: zero,
                perturb_probability: zero,
                perturb_seed: 0,
            },
            TransitionStrategy::GateCancellationRandomPerturbation {
                qdrift_weight,
                gc_weight,
                ref perturbation,
            } => StrategyKey {
                variant: 2,
                qdrift_weight: qdrift_weight.to_bits(),
                gc_weight: gc_weight.to_bits(),
                rp_weight: (1.0 - qdrift_weight - gc_weight).to_bits(),
                perturb_samples: perturbation.samples as u64,
                perturb_magnitude: perturbation.magnitude.to_bits(),
                perturb_probability: perturbation.probability.to_bits(),
                perturb_seed: perturbation.seed,
            },
            TransitionStrategy::Combined {
                qdrift_weight,
                gc_weight,
                rp_weight,
                ref perturbation,
            } => StrategyKey {
                variant: 3,
                qdrift_weight: qdrift_weight.to_bits(),
                gc_weight: gc_weight.to_bits(),
                rp_weight: rp_weight.to_bits(),
                perturb_samples: perturbation.samples as u64,
                perturb_magnitude: perturbation.magnitude.to_bits(),
                perturb_probability: perturbation.probability.to_bits(),
                perturb_seed: perturbation.seed,
            },
        }
    }
}

/// Cache key: which Hamiltonian, compiled how, solved by which backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`hamiltonian_fingerprint`] of the (unsplit) input Hamiltonian.
    pub fingerprint: u64,
    /// [`StrategyKey`] of the transition strategy.
    pub strategy: StrategyKey,
    /// The min-cost-flow backend the graph was solved with. Backends
    /// guarantee equal optimal cost but may pick different optimal flows on
    /// degenerate instances, so entries are never shared across backends.
    pub solver: SolverKind,
}

/// Construction parameters of a [`TransitionCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Shard count; `0` means "auto" (available parallelism, rounded up to a
    /// power of two, capped at 64).
    pub shards: usize,
    /// LRU entry cap per shard; `0` means unbounded (the legacy behaviour).
    pub cap_per_shard: usize,
    /// Directory for persisted `P_gc` components; `None` disables
    /// persistence.
    pub persist_dir: Option<PathBuf>,
    /// Default min-cost-flow backend for this cache's solves (a per-job
    /// [`SubmitOptions::flow_solver`](crate::SubmitOptions) override selects
    /// another backend per lookup). The engine wires this to
    /// `MARQSIM_FLOW_SOLVER`; the engine-level default is
    /// [`SolverKind::Auto`], which picks per instance by size
    /// (`MARQSIM_FLOW_SOLVER=ssp` pins the legacy backend).
    pub flow_solver: SolverKind,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 0,
            cap_per_shard: DEFAULT_CACHE_CAP,
            persist_dir: None,
            flow_solver: SolverKind::Auto,
        }
    }
}

impl CacheConfig {
    /// Sets the shard count (`0` = auto).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard entry cap (`0` = unbounded).
    pub fn with_cap(mut self, cap_per_shard: usize) -> Self {
        self.cap_per_shard = cap_per_shard;
        self
    }

    /// Enables disk persistence of `P_gc` components under `dir`.
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Sets the default min-cost-flow backend.
    pub fn with_flow_solver(mut self, solver: SolverKind) -> Self {
        self.flow_solver = solver;
        self
    }
}

/// Counter snapshot of a [`TransitionCache`] (see [`TransitionCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Graph lookups answered from the in-memory cache.
    pub hits: u64,
    /// Graph lookups that had to build the transition matrix.
    pub misses: u64,
    /// `P_gc` component solves avoided by the in-memory per-Hamiltonian
    /// component cache (on graph misses whose strategy needs `P_gc`).
    pub component_hits: u64,
    /// Min-cost-flow solves actually performed (component-cache and disk
    /// misses). The savings headline: every avoided solve is a `P_gc`
    /// served from memory or disk instead.
    pub flow_solves: u64,
    /// Flow solves performed by the successive-shortest-path backend.
    pub flow_solves_ssp: u64,
    /// Flow solves performed by the network-simplex backend.
    pub flow_solves_simplex: u64,
    /// Flow solves answered by **warm-starting** a saved spanning basis
    /// (re-price + re-pivot) instead of a cold solve — `P_rp` perturbation
    /// samples reusing the `P_gc` basis. Warm starts are *not* counted in
    /// [`flow_solves`](Self::flow_solves): that field keeps meaning "cold
    /// solves of the full model", so `flow_solves=1 warm_starts=N−1` reads
    /// as one real solve amortized over N sample re-pivots.
    pub warm_starts: u64,
    /// `P_gc` components loaded from the persistence directory.
    pub disk_hits: u64,
    /// `P_gc` components written to the persistence directory.
    pub disk_writes: u64,
    /// Failed persistence writes (treated as "persistence unavailable",
    /// never as a compile failure).
    pub disk_errors: u64,
    /// Entries dropped by the per-shard LRU bound (graphs + components).
    pub evictions: u64,
    /// Number of cached graphs.
    pub graphs: usize,
    /// Number of cached `P_gc` components.
    pub components: usize,
}

impl CacheStats {
    /// Counter-wise difference `self − earlier` (saturating), attributing
    /// cache activity to the window between two snapshots — e.g. "how many
    /// min-cost-flow solves did *this job* trigger". The `graphs` /
    /// `components` fields are gauges, not counters, so the later snapshot's
    /// values are kept as-is. The exhaustive destructuring makes adding a
    /// `CacheStats` field without deciding its delta semantics a compile
    /// error.
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        let CacheStats {
            hits,
            misses,
            component_hits,
            flow_solves,
            flow_solves_ssp,
            flow_solves_simplex,
            warm_starts,
            disk_hits,
            disk_writes,
            disk_errors,
            evictions,
            graphs,
            components,
        } = *self;
        CacheStats {
            hits: hits.saturating_sub(earlier.hits),
            misses: misses.saturating_sub(earlier.misses),
            component_hits: component_hits.saturating_sub(earlier.component_hits),
            flow_solves: flow_solves.saturating_sub(earlier.flow_solves),
            flow_solves_ssp: flow_solves_ssp.saturating_sub(earlier.flow_solves_ssp),
            flow_solves_simplex: flow_solves_simplex.saturating_sub(earlier.flow_solves_simplex),
            warm_starts: warm_starts.saturating_sub(earlier.warm_starts),
            disk_hits: disk_hits.saturating_sub(earlier.disk_hits),
            disk_writes: disk_writes.saturating_sub(earlier.disk_writes),
            disk_errors: disk_errors.saturating_sub(earlier.disk_errors),
            evictions: evictions.saturating_sub(earlier.evictions),
            graphs,
            components,
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    /// Field-wise accumulation, for aggregating counters across several
    /// caches (e.g. `table2`'s cold + warm + component caches). The
    /// exhaustive destructuring makes adding a `CacheStats` field without
    /// updating the aggregation a compile error.
    fn add_assign(&mut self, rhs: CacheStats) {
        let CacheStats {
            hits,
            misses,
            component_hits,
            flow_solves,
            flow_solves_ssp,
            flow_solves_simplex,
            warm_starts,
            disk_hits,
            disk_writes,
            disk_errors,
            evictions,
            graphs,
            components,
        } = rhs;
        self.hits += hits;
        self.misses += misses;
        self.component_hits += component_hits;
        self.flow_solves += flow_solves;
        self.flow_solves_ssp += flow_solves_ssp;
        self.flow_solves_simplex += flow_solves_simplex;
        self.warm_starts += warm_starts;
        self.disk_hits += disk_hits;
        self.disk_writes += disk_writes;
        self.disk_errors += disk_errors;
        self.evictions += evictions;
        self.graphs += graphs;
        self.components += components;
    }
}

/// Registry handles mirroring the cache's own atomic counters into the
/// process-wide metrics registry (`marqsim_cache_*_total`). The atomics
/// stay authoritative for [`CacheStats`] — per-cache, resettable by
/// [`TransitionCache::clear`] — while the registry view is cumulative
/// across every cache in the process (registry counters are monotonic by
/// contract, so `clear` never rolls them back).
#[derive(Debug)]
struct CacheInstruments {
    hits: Arc<metrics::Counter>,
    misses: Arc<metrics::Counter>,
    component_hits: Arc<metrics::Counter>,
    flow_solves: Arc<metrics::Counter>,
    warm_starts: Arc<metrics::Counter>,
    disk_hits: Arc<metrics::Counter>,
    disk_writes: Arc<metrics::Counter>,
    disk_errors: Arc<metrics::Counter>,
}

impl CacheInstruments {
    fn from_global_registry() -> Self {
        let registry = metrics::global();
        CacheInstruments {
            hits: registry.counter("marqsim_cache_hits_total"),
            misses: registry.counter("marqsim_cache_misses_total"),
            component_hits: registry.counter("marqsim_cache_component_hits_total"),
            flow_solves: registry.counter("marqsim_cache_flow_solves_total"),
            warm_starts: registry.counter("marqsim_cache_warm_starts_total"),
            disk_hits: registry.counter("marqsim_cache_disk_hits_total"),
            disk_writes: registry.counter("marqsim_cache_disk_writes_total"),
            disk_errors: registry.counter("marqsim_cache_disk_errors_total"),
        }
    }
}

/// A cached `P_gc` component: the solved matrix plus the spanning basis
/// its min-cost-flow solve exported (`None` under backends without warm
/// support). The basis rides along so `P_rp` perturbation samples — same
/// network topology, perturbed costs — can be solved as warm re-pivots.
#[derive(Debug, Clone)]
pub struct GcComponent {
    /// The solved `P_gc` transition matrix.
    pub matrix: Arc<TransitionMatrix>,
    /// The optimal spanning basis of the solve, when the backend exports
    /// one.
    pub basis: Option<Arc<SpanningBasis>>,
}

/// A cache of validated HTT graphs and `P_gc` components.
///
/// Thread-safe; each [`Engine`](crate::Engine) owns one behind an [`Arc`]
/// shared by its workers (engines do not share in-memory caches — `table2`
/// exploits this to time cold and warm compiles side by side — but engines
/// pointed at the same [`CacheConfig::persist_dir`] do share the disk
/// layer). Concurrent misses on the same key may both build the value (the
/// second insert wins, replacing the first in place), which is harmless
/// because construction is deterministic: both threads build identical
/// graphs.
#[derive(Debug)]
pub struct TransitionCache {
    graphs: ShardedLru<CacheKey, Hamiltonian, Arc<HttGraph>>,
    components: ShardedLru<(u64, SolverKind), Hamiltonian, GcComponent>,
    persist_dir: Option<PathBuf>,
    flow_solver: SolverKind,
    hits: AtomicU64,
    misses: AtomicU64,
    component_hits: AtomicU64,
    flow_solves: AtomicU64,
    flow_solves_ssp: AtomicU64,
    flow_solves_simplex: AtomicU64,
    warm_starts: AtomicU64,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
    disk_errors: AtomicU64,
    instruments: CacheInstruments,
}

impl Default for TransitionCache {
    fn default() -> Self {
        TransitionCache::with_config(CacheConfig::default())
    }
}

impl TransitionCache {
    /// Creates an empty cache with the default configuration (auto shard
    /// count, [`DEFAULT_CACHE_CAP`] entries per shard, no persistence).
    pub fn new() -> Self {
        TransitionCache::default()
    }

    /// Creates an empty cache with an explicit configuration.
    pub fn with_config(config: CacheConfig) -> Self {
        TransitionCache {
            graphs: ShardedLru::new(config.shards, config.cap_per_shard),
            components: ShardedLru::new(config.shards, config.cap_per_shard),
            persist_dir: config.persist_dir,
            flow_solver: config.flow_solver,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            component_hits: AtomicU64::new(0),
            flow_solves: AtomicU64::new(0),
            flow_solves_ssp: AtomicU64::new(0),
            flow_solves_simplex: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            disk_errors: AtomicU64::new(0),
            instruments: CacheInstruments::from_global_registry(),
        }
    }

    /// The cache's default min-cost-flow backend.
    pub fn flow_solver(&self) -> SolverKind {
        self.flow_solver
    }

    /// Number of shards (same for the graph and component layers).
    pub fn shard_count(&self) -> usize {
        self.graphs.shard_count()
    }

    /// LRU entry cap per shard (`0` = unbounded).
    pub fn cap_per_shard(&self) -> usize {
        self.graphs.cap_per_shard()
    }

    /// The persistence directory, when enabled.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist_dir.as_deref()
    }

    /// Per-shard graph entry counts (diagnostics / cap assertions).
    pub fn graph_shard_lens(&self) -> Vec<usize> {
        self.graphs.shard_lens()
    }

    /// Per-shard `P_gc` component entry counts.
    pub fn component_shard_lens(&self) -> Vec<usize> {
        self.components.shard_lens()
    }

    /// Returns the cached HTT graph for `(ham, strategy)`, building and
    /// inserting it on a miss.
    ///
    /// No shard lock is held while solving: concurrent misses trade a
    /// duplicated (deterministic, identical) solve for never blocking other
    /// strategies' lookups behind a multi-second min-cost-flow run.
    ///
    /// # Errors
    ///
    /// Propagates transition-matrix construction failures; nothing is
    /// cached for a failed build.
    pub fn get_or_build(
        &self,
        ham: &Hamiltonian,
        strategy: &TransitionStrategy,
    ) -> Result<Arc<HttGraph>, CompileError> {
        self.get_or_build_with(ham, strategy, self.flow_solver)
    }

    /// Like [`get_or_build`](Self::get_or_build) with an explicit
    /// min-cost-flow backend — the per-job selection path
    /// ([`SubmitOptions::flow_solver`](crate::SubmitOptions)). Entries are
    /// keyed by backend, so a simplex-solved graph is never served to a
    /// successive-shortest-path request (backends agree on optimal cost,
    /// not necessarily on the optimal flow).
    ///
    /// # Errors
    ///
    /// Propagates transition-matrix construction failures; nothing is
    /// cached for a failed build.
    pub fn get_or_build_with(
        &self,
        ham: &Hamiltonian,
        strategy: &TransitionStrategy,
        solver: SolverKind,
    ) -> Result<Arc<HttGraph>, CompileError> {
        // The `auto` policy resolves here, on the as-submitted term count,
        // so cache keys only ever name concrete backends — an auto request
        // and an explicit request for the backend it resolves to share one
        // entry.
        let solver = solver.resolve_for_strings(ham.num_terms());
        let key = CacheKey {
            fingerprint: hamiltonian_fingerprint(ham),
            strategy: StrategyKey::of(strategy),
            solver,
        };
        if let Some(graph) = self.graphs.get(key.fingerprint, &key, ham) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.instruments.hits.inc();
            return Ok(graph);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.instruments.misses.inc();

        // Dominant-term splitting happens before fingerprinting the working
        // Hamiltonian for the component cache: P_gc is a function of the
        // split form.
        let working = ham.split_if_dominant();
        let cached_gc = if strategy_uses_gate_cancellation(strategy) {
            Some(self.gc_component(&working, solver)?)
        } else {
            None
        };
        let (matrix, warm_starts) = build_transition_matrix_solved_by_warm(
            &working,
            strategy,
            cached_gc
                .as_ref()
                .map(|component| (&*component.matrix, component.basis.as_deref())),
            solver,
        )?;
        self.record_warm_starts(warm_starts);
        let graph = Arc::new(HttGraph::from_matrix(&working, matrix)?);

        self.graphs
            .insert(key.fingerprint, key, ham.clone(), Arc::clone(&graph));
        Ok(graph)
    }

    /// Returns the `P_gc` component for `ham`, splitting dominant terms
    /// first (the same normalization [`get_or_build`](Self::get_or_build)
    /// applies) and serving the result from memory, then disk, then a fresh
    /// min-cost-flow solve.
    ///
    /// This is the public entry point for callers that want the flow solve
    /// itself cached/persisted without building a full graph — `table2`
    /// times exactly this call for its `P_gc` column.
    ///
    /// # Errors
    ///
    /// Propagates min-cost-flow solver failures.
    pub fn get_or_solve_gc(
        &self,
        ham: &Hamiltonian,
    ) -> Result<Arc<TransitionMatrix>, CompileError> {
        self.get_or_solve_gc_with(ham, self.flow_solver)
    }

    /// Like [`get_or_solve_gc`](Self::get_or_solve_gc) with an explicit
    /// min-cost-flow backend.
    ///
    /// # Errors
    ///
    /// Propagates min-cost-flow solver failures.
    pub fn get_or_solve_gc_with(
        &self,
        ham: &Hamiltonian,
        solver: SolverKind,
    ) -> Result<Arc<TransitionMatrix>, CompileError> {
        self.gc_component(&ham.split_if_dominant(), solver)
            .map(|component| component.matrix)
    }

    /// Like [`get_or_solve_gc_with`](Self::get_or_solve_gc_with), returning
    /// the full [`GcComponent`] — matrix plus the solve's spanning basis —
    /// for callers that warm-start their own follow-up solves (the
    /// perturbation-average workload).
    ///
    /// # Errors
    ///
    /// Propagates min-cost-flow solver failures.
    pub fn get_or_solve_gc_component_with(
        &self,
        ham: &Hamiltonian,
        solver: SolverKind,
    ) -> Result<GcComponent, CompileError> {
        self.gc_component(&ham.split_if_dominant(), solver)
    }

    /// Records `count` warm-started flow re-pivots into the cache's stats
    /// and the process-wide registry. Warm starts performed inside
    /// [`get_or_build`](Self::get_or_build) are recorded automatically;
    /// workloads that warm-start their own solves (the perturbation
    /// average) report through here so the job's `[cache]` delta shows
    /// them.
    pub fn record_warm_starts(&self, count: u64) {
        if count > 0 {
            self.warm_starts.fetch_add(count, Ordering::Relaxed);
            self.instruments.warm_starts.add(count);
        }
    }

    /// Records one cold min-cost-flow solve performed *outside* the cache
    /// (a workload solving its own model) so job-level `[cache]` deltas
    /// account for every solve, attributed to `solver`'s per-backend
    /// counter.
    pub fn record_flow_solve(&self, solver: SolverKind) {
        self.flow_solves.fetch_add(1, Ordering::Relaxed);
        self.instruments.flow_solves.inc();
        match solver {
            // `Auto` resolves before any solve path records; a stray
            // unresolved record is attributed to the default backend.
            SolverKind::SuccessiveShortestPath | SolverKind::Auto => &self.flow_solves_ssp,
            SolverKind::NetworkSimplex => &self.flow_solves_simplex,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the cached `P_gc` for the (already split) Hamiltonian:
    /// memory, then the persistence directory, then a min-cost-flow solve
    /// (spilled back to disk when persistence is on). Memory and disk
    /// entries are namespaced per backend. The component carries the
    /// solve's spanning basis, which persists and reloads with the matrix.
    fn gc_component(
        &self,
        working: &Hamiltonian,
        solver: SolverKind,
    ) -> Result<GcComponent, CompileError> {
        // Direct component callers may hand us `auto`; resolve on the
        // working (split) term count so memory keys, disk file names, and
        // per-backend solve attribution all see a concrete backend.
        let solver = solver.resolve_for_strings(working.num_terms());
        let fp = hamiltonian_fingerprint(working);
        let key = (fp, solver);
        if let Some(gc) = self.components.get(fp, &key, working) {
            self.component_hits.fetch_add(1, Ordering::Relaxed);
            self.instruments.component_hits.inc();
            return Ok(gc);
        }
        if let Some(dir) = &self.persist_dir {
            let loaded = {
                let _span = trace::Span::enter("persist_load")
                    .field("fingerprint", fp)
                    .field("backend", solver.as_str());
                persist::load_component(dir, fp, solver, working)
            };
            if let Some((matrix, basis)) = loaded {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.instruments.disk_hits.inc();
                let gc = GcComponent {
                    matrix: Arc::new(matrix),
                    basis: basis.map(Arc::new),
                };
                self.components.insert(fp, key, working.clone(), gc.clone());
                return Ok(gc);
            }
        }
        self.record_flow_solve(solver);
        let (matrix, basis) = gate_cancellation_matrix_with_basis(working, solver)?;
        let gc = GcComponent {
            matrix: Arc::new(matrix),
            basis: basis.map(Arc::new),
        };
        if let Some(dir) = &self.persist_dir {
            let _span = trace::Span::enter("persist_store")
                .field("fingerprint", fp)
                .field("backend", solver.as_str());
            match persist::save_component(dir, fp, solver, working, &gc.matrix, gc.basis.as_deref())
            {
                Ok(()) => {
                    self.disk_writes.fetch_add(1, Ordering::Relaxed);
                    self.instruments.disk_writes.inc();
                }
                Err(_) => {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                    self.instruments.disk_errors.inc();
                }
            };
        }
        self.components.insert(fp, key, working.clone(), gc.clone());
        Ok(gc)
    }

    /// Current counters and entry counts (a racy-but-consistent-enough
    /// snapshot; each field is individually exact).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            component_hits: self.component_hits.load(Ordering::Relaxed),
            flow_solves: self.flow_solves.load(Ordering::Relaxed),
            flow_solves_ssp: self.flow_solves_ssp.load(Ordering::Relaxed),
            flow_solves_simplex: self.flow_solves_simplex.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
            evictions: self.graphs.evictions() + self.components.evictions(),
            graphs: self.graphs.len(),
            components: self.components.len(),
        }
    }

    /// Drops every in-memory entry and resets the counters. Files in the
    /// persistence directory are left untouched (they are the point of
    /// persistence); delete the directory to cold-start.
    pub fn clear(&self) {
        self.graphs.clear();
        self.components.clear();
        for counter in [
            &self.hits,
            &self.misses,
            &self.component_hits,
            &self.flow_solves,
            &self.flow_solves_ssp,
            &self.flow_solves_simplex,
            &self.warm_starts,
            &self.disk_hits,
            &self.disk_writes,
            &self.disk_errors,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

/// 64-bit FNV-1a.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("marqsim-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_structural() {
        let a = ham();
        let b = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap();
        assert_eq!(hamiltonian_fingerprint(&a), hamiltonian_fingerprint(&b));
        let c = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.2 ZXZY").unwrap();
        assert_ne!(hamiltonian_fingerprint(&a), hamiltonian_fingerprint(&c));
        let reordered = Hamiltonian::parse("0.5 IIZZ + 1.0 IIIZ + 0.4 XXYY + 0.1 ZXZY").unwrap();
        assert_ne!(
            hamiltonian_fingerprint(&a),
            hamiltonian_fingerprint(&reordered),
            "term order is part of the structure (it defines state indices)"
        );
    }

    #[test]
    fn strategy_keys_distinguish_variants_and_weights() {
        let gc = StrategyKey::of(&TransitionStrategy::marqsim_gc());
        let gc2 = StrategyKey::of(&TransitionStrategy::GateCancellation { qdrift_weight: 0.3 });
        let qd = StrategyKey::of(&TransitionStrategy::QDrift);
        let gcrp = StrategyKey::of(&TransitionStrategy::marqsim_gc_rp());
        assert_ne!(gc, gc2);
        assert_ne!(gc, qd);
        assert_ne!(gc, gcrp);
        assert_eq!(gc, StrategyKey::of(&TransitionStrategy::marqsim_gc()));
    }

    #[test]
    fn repeated_lookups_hit_and_return_the_identical_graph() {
        let cache = TransitionCache::new();
        let strategy = TransitionStrategy::marqsim_gc();
        let first = cache.get_or_build(&ham(), &strategy).unwrap();
        let second = cache.get_or_build(&ham(), &strategy).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "a cache hit must return the same allocation"
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.graphs, 1);
        assert_eq!(stats.flow_solves, 1, "one min-cost-flow solve");
    }

    #[test]
    fn gc_component_is_shared_between_gc_and_gc_rp() {
        let cache = TransitionCache::new();
        cache
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc())
            .unwrap();
        cache
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc_rp())
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "two distinct strategies");
        assert_eq!(stats.components, 1, "one shared P_gc");
        assert_eq!(stats.component_hits, 1, "second strategy reused it");
        assert_eq!(stats.flow_solves, 1, "the flow model was solved once");
    }

    #[test]
    fn cached_graph_matches_a_fresh_build() {
        let cache = TransitionCache::new();
        let strategy = TransitionStrategy::marqsim_gc_rp();
        let cached = cache.get_or_build(&ham(), &strategy).unwrap();
        let fresh = HttGraph::build(&ham(), &strategy).unwrap();
        assert_eq!(
            cached.transition_matrix().rows(),
            fresh.transition_matrix().rows()
        );
        assert_eq!(
            cached.stationary_distribution(),
            fresh.stationary_distribution()
        );
    }

    #[test]
    fn qdrift_does_not_touch_the_component_cache() {
        let cache = TransitionCache::new();
        cache
            .get_or_build(&ham(), &TransitionStrategy::QDrift)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.components, 0);
        assert_eq!(stats.flow_solves, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = TransitionCache::new();
        cache
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc())
            .unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
    }

    #[test]
    fn dominant_term_hamiltonians_are_split_before_caching() {
        let cache = TransitionCache::new();
        let dominant = Hamiltonian::parse("3.0 XXII + 0.5 ZZII + 0.5 XYZI").unwrap();
        let graph = cache
            .get_or_build(&dominant, &TransitionStrategy::marqsim_gc())
            .unwrap();
        assert_eq!(graph.num_states(), 4);
        assert!((graph.hamiltonian().lambda() - dominant.lambda()).abs() < 1e-12);
    }

    #[test]
    fn per_shard_cap_is_enforced_with_correct_rebuilds() {
        // One shard, one entry: every new key evicts the previous one, and
        // a re-request of an evicted key simply rebuilds the identical
        // graph.
        let cache = TransitionCache::with_config(CacheConfig::default().with_shards(1).with_cap(1));
        assert_eq!(cache.shard_count(), 1);
        assert_eq!(cache.cap_per_shard(), 1);
        let strategies = [
            TransitionStrategy::QDrift,
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
        ];
        for strategy in &strategies {
            cache.get_or_build(&ham(), strategy).unwrap();
            assert!(cache.graph_shard_lens().iter().all(|&len| len <= 1));
        }
        let stats = cache.stats();
        assert_eq!(stats.graphs, 1, "cap keeps one graph");
        assert_eq!(stats.evictions, 2, "two graphs were evicted");

        // The evicted GC graph rebuilds to the exact same matrix.
        let rebuilt = cache
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc())
            .unwrap();
        let fresh = HttGraph::build(&ham(), &TransitionStrategy::marqsim_gc()).unwrap();
        assert_eq!(
            rebuilt.transition_matrix().rows(),
            fresh.transition_matrix().rows()
        );
    }

    #[test]
    fn zero_cap_restores_the_unbounded_legacy_behaviour() {
        let cache = TransitionCache::with_config(CacheConfig::default().with_shards(1).with_cap(0));
        for strategy in [
            TransitionStrategy::QDrift,
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
        ] {
            cache.get_or_build(&ham(), &strategy).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.graphs, 3);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn persistence_round_trip_skips_the_flow_solve() {
        let dir = temp_dir("roundtrip");
        let config = CacheConfig::default().with_persist_dir(&dir);

        let first = TransitionCache::with_config(config.clone());
        let graph_a = first
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc())
            .unwrap();
        let stats = first.stats();
        assert_eq!(stats.flow_solves, 1);
        assert_eq!(stats.disk_writes, 1);
        assert_eq!(stats.disk_hits, 0);

        // A second cache — a simulated new process — loads P_gc from disk:
        // zero min-cost-flow solves, identical graph.
        let second = TransitionCache::with_config(config);
        let graph_b = second
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc())
            .unwrap();
        let stats = second.stats();
        assert_eq!(stats.flow_solves, 0, "P_gc came from disk");
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.misses, 1, "the graph itself was still a miss");
        assert_eq!(
            graph_a.transition_matrix().rows(),
            graph_b.transition_matrix().rows(),
            "disk-loaded component yields a bit-identical graph"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_persisted_component_falls_back_to_solving() {
        let dir = temp_dir("corrupt-fallback");
        let config = CacheConfig::default().with_persist_dir(&dir);
        let first = TransitionCache::with_config(config.clone());
        first.get_or_solve_gc(&ham()).unwrap();
        let fp = hamiltonian_fingerprint(&ham().split_if_dominant());
        std::fs::write(persist::component_path(&dir, fp), b"not a cache file").unwrap();

        let second = TransitionCache::with_config(config);
        let gc = second.get_or_solve_gc(&ham()).unwrap();
        let stats = second.stats();
        assert_eq!(stats.disk_hits, 0, "corrupt file must not load");
        assert_eq!(stats.flow_solves, 1, "fell back to solving");
        assert_eq!(stats.disk_writes, 1, "and re-spilled the good matrix");
        assert_eq!(
            *gc,
            marqsim_core::gate_cancel::gate_cancellation_matrix(&ham()).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_counters_mirror_into_the_global_registry() {
        let registry = metrics::global();
        let hits = registry.counter("marqsim_cache_hits_total");
        let misses = registry.counter("marqsim_cache_misses_total");
        let solves = registry.counter("marqsim_cache_flow_solves_total");
        let (hits_before, misses_before, solves_before) = (hits.get(), misses.get(), solves.get());

        let cache = TransitionCache::new();
        let strategy = TransitionStrategy::marqsim_gc();
        cache.get_or_build(&ham(), &strategy).unwrap();
        cache.get_or_build(&ham(), &strategy).unwrap();
        assert!(misses.get() > misses_before, "miss mirrored");
        assert!(hits.get() > hits_before, "hit mirrored");
        assert!(solves.get() > solves_before, "flow solve mirrored");

        // `clear` resets the per-cache snapshot but the registry counters
        // are process-cumulative and must stay monotonic.
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(hits.get() > hits_before);
    }

    #[test]
    fn get_or_solve_gc_counts_hits_like_the_graph_path() {
        let cache = TransitionCache::new();
        let a = cache.get_or_solve_gc(&ham()).unwrap();
        let b = cache.get_or_solve_gc(&ham()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.flow_solves, 1);
        assert_eq!(stats.component_hits, 1);
        // The graph cache then reuses the very same component.
        cache
            .get_or_build(&ham(), &TransitionStrategy::marqsim_gc())
            .unwrap();
        assert_eq!(cache.stats().flow_solves, 1);
        assert_eq!(cache.stats().component_hits, 2);
    }

    /// A snapshot with every field set to a distinct value, so a delta or
    /// aggregation that swapped, dropped, or doubled a field cannot cancel
    /// out. `scale` shifts the whole set while keeping fields distinct.
    fn distinct_stats(scale: u64) -> CacheStats {
        CacheStats {
            hits: scale + 1,
            misses: scale + 2,
            component_hits: scale + 3,
            flow_solves: scale + 4,
            flow_solves_ssp: scale + 5,
            flow_solves_simplex: scale + 6,
            warm_starts: scale + 7,
            disk_hits: scale + 8,
            disk_writes: scale + 9,
            disk_errors: scale + 10,
            evictions: scale + 11,
            graphs: scale as usize + 12,
            components: scale as usize + 13,
        }
    }

    #[test]
    fn delta_since_subtracts_every_counter_and_keeps_the_gauges() {
        let earlier = distinct_stats(0);
        let later = distinct_stats(100);
        let delta = later.delta_since(&earlier);
        // Every counter field is later − earlier — each pair differs by
        // exactly 100, so a swapped subtraction would surface as ≠ 100.
        assert_eq!(delta.hits, 100);
        assert_eq!(delta.misses, 100);
        assert_eq!(delta.component_hits, 100);
        assert_eq!(delta.flow_solves, 100);
        assert_eq!(delta.flow_solves_ssp, 100);
        assert_eq!(delta.flow_solves_simplex, 100);
        assert_eq!(delta.warm_starts, 100);
        assert_eq!(delta.disk_hits, 100);
        assert_eq!(delta.disk_writes, 100);
        assert_eq!(delta.disk_errors, 100);
        assert_eq!(delta.evictions, 100);
        // The size fields are gauges: the later snapshot's values survive
        // untouched rather than being differenced.
        assert_eq!(delta.graphs, later.graphs);
        assert_eq!(delta.components, later.components);
    }

    #[test]
    fn delta_since_saturates_instead_of_wrapping() {
        // A cleared cache can legitimately produce a "later" snapshot with
        // smaller counters; the delta must clamp to zero, never wrap.
        let earlier = distinct_stats(100);
        let later = distinct_stats(0);
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.hits, 0);
        assert_eq!(delta.misses, 0);
        assert_eq!(delta.component_hits, 0);
        assert_eq!(delta.flow_solves, 0);
        assert_eq!(delta.flow_solves_ssp, 0);
        assert_eq!(delta.flow_solves_simplex, 0);
        assert_eq!(delta.warm_starts, 0);
        assert_eq!(delta.disk_hits, 0);
        assert_eq!(delta.disk_writes, 0);
        assert_eq!(delta.disk_errors, 0);
        assert_eq!(delta.evictions, 0);
        assert_eq!(delta.graphs, later.graphs);
        assert_eq!(delta.components, later.components);
    }

    #[test]
    fn add_assign_accumulates_every_field() {
        let mut total = distinct_stats(0);
        total += distinct_stats(1000);
        // Each field is the sum of its two distinct inputs: offset i plus
        // offset 1000 + i, i.e. 1000 + 2i — unique per field, so a swap or
        // a double-count cannot produce the expected value elsewhere.
        assert_eq!(total.hits, 1002);
        assert_eq!(total.misses, 1004);
        assert_eq!(total.component_hits, 1006);
        assert_eq!(total.flow_solves, 1008);
        assert_eq!(total.flow_solves_ssp, 1010);
        assert_eq!(total.flow_solves_simplex, 1012);
        assert_eq!(total.warm_starts, 1014);
        assert_eq!(total.disk_hits, 1016);
        assert_eq!(total.disk_writes, 1018);
        assert_eq!(total.disk_errors, 1020);
        assert_eq!(total.evictions, 1022);
        // Sizes accumulate too (table2 sums the counters of several
        // caches, each contributing its own entry counts).
        assert_eq!(total.graphs, 1024);
        assert_eq!(total.components, 1026);
    }
}
