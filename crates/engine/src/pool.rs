//! A priority-aware thread-pool executor over `std::thread`.
//!
//! Workers are spawned once per [`ThreadPool`] and block on a shared
//! injector — a mutex-protected set of per-priority queues plus a condvar —
//! so every submitted task is a boxed closure and the pool is agnostic to
//! job types. [`ThreadPool::map`] builds the deterministic parallel-map
//! primitive the engine is based on: each item's output depends only on
//! `(index, item)`, results are reassembled by index, and worker panics are
//! caught per task — so the output of a map is bit-identical for any thread
//! count, including 1.
//!
//! Priorities affect *scheduling order only*: a [`Priority::High`] task is
//! popped before queued normal tasks, which is how an urgent
//! [`SubmitOptions`](crate::SubmitOptions) job overtakes a backlog of bulk
//! sweeps. Because map outputs are reassembled by index, priority can never
//! change a result — only its latency.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use marqsim_obs::{lockcheck, metrics, trace};

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A task plus the telemetry captured at submission time: its lane, its
/// enqueue instant (queue-wait is timed from here to dequeue), and the
/// submitter's innermost open span so the worker-side `pool_task` span and
/// the `queue_wait` interval stay attached to the submitting job's trace
/// even though they fire on another thread.
struct QueuedTask {
    run: Task,
    lane: Priority,
    enqueued: Instant,
    parent: Option<trace::SpanId>,
}

/// Registry handles of the pool's instruments, resolved once per process:
/// every [`ThreadPool`] feeds the same process-wide counters (the registry
/// is global; per-pool breakdowns were not worth a label axis).
struct PoolMetrics {
    /// `marqsim_pool_tasks_total{lane}` — submissions per priority lane.
    tasks: [Arc<metrics::Counter>; 3],
    /// `marqsim_pool_queue_depth` — tasks waiting in injectors right now.
    queue_depth: Arc<metrics::Gauge>,
    /// `marqsim_pool_queue_wait_seconds` — enqueue-to-dequeue latency.
    queue_wait: Arc<metrics::Histogram>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = metrics::global();
        let lane_counter = |lane: Priority| {
            registry.counter_with("marqsim_pool_tasks_total", &[("lane", lane.as_str())])
        };
        PoolMetrics {
            tasks: [
                lane_counter(Priority::High),
                lane_counter(Priority::Normal),
                lane_counter(Priority::Low),
            ],
            queue_depth: registry.gauge("marqsim_pool_queue_depth"),
            queue_wait: registry.histogram("marqsim_pool_queue_wait_seconds"),
        }
    })
}

/// Scheduling priority of a submitted task or job. Priorities reorder the
/// shared work queue; they never affect results (outputs are reassembled by
/// index, not completion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Scheduled only when no normal- or high-priority work is queued.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Popped before any queued normal- or low-priority task.
    High,
}

impl Priority {
    /// Queue index: high first.
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The wire/env spelling (`"low"`, `"normal"`, `"high"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses the wire/env spelling.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

/// The shared injector: three FIFO lanes (one per priority) behind one
/// mutex, with a condvar to park idle workers.
struct Injector {
    state: Mutex<InjectorState>,
    available: Condvar,
}

struct InjectorState {
    lanes: [std::collections::VecDeque<QueuedTask>; 3],
    queued: usize,
    shutdown: bool,
}

impl Injector {
    fn new() -> Self {
        Injector {
            state: Mutex::new(InjectorState {
                lanes: Default::default(),
                queued: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
        }
    }

    fn push(&self, priority: Priority, task: Task) {
        let instruments = pool_metrics();
        instruments.tasks[priority.lane()].inc();
        let queued = QueuedTask {
            run: task,
            lane: priority,
            enqueued: Instant::now(),
            // Captured on the submitting thread: the worker that runs this
            // task parents its span here, not in its own (empty) span stack.
            parent: trace::current_span(),
        };
        let witness = lockcheck::acquire("engine.pool.injector");
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.lanes[priority.lane()].push_back(queued);
        state.queued += 1;
        drop(state);
        drop(witness);
        instruments.queue_depth.add(1);
        self.available.notify_one();
    }

    /// Blocks until a task is available (highest-priority lane first) or the
    /// pool shuts down. Dequeue is where queue-wait is observed: the
    /// enqueue-to-dequeue latency goes to the wait histogram and, when
    /// tracing is on, to a `queue_wait` interval attached to the
    /// submitter's span.
    fn pop(&self) -> Option<QueuedTask> {
        // The witness outlives the `Condvar::wait` guard cycling: the thread
        // is parked (acquiring nothing) whenever the mutex is actually
        // released, so the over-held token cannot learn a false edge. It is
        // dropped with the guard before the metric/trace calls below so no
        // injector → registry/sink edge is recorded.
        let witness = lockcheck::acquire("engine.pool.injector");
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(task) = state.lanes.iter_mut().find_map(|lane| lane.pop_front()) {
                state.queued -= 1;
                drop(state);
                drop(witness);
                let instruments = pool_metrics();
                instruments.queue_depth.sub(1);
                let waited = task.enqueued.elapsed();
                instruments.queue_wait.record(waited.as_secs_f64());
                if trace::enabled() {
                    trace::emit_interval(
                        "queue_wait",
                        task.parent,
                        task.enqueued,
                        waited.as_micros() as u64,
                        &[("lane", task.lane.as_str().to_string())],
                    );
                }
                return Some(task);
            }
            if state.shutdown {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn queued(&self) -> usize {
        let _witness = lockcheck::acquire("engine.pool.injector");
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queued
    }

    fn shutdown(&self) {
        let witness = lockcheck::acquire("engine.pool.injector");
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutdown = true;
        drop(witness);
        self.available.notify_all();
    }
}

/// A fixed-size pool of worker threads fed from one shared injector.
///
/// The shared injector gives dynamic load balancing for free: an idle worker
/// steals the next task regardless of which worker ran the previous one, so
/// heavy tasks (small-ε sweep points have many more samples than large-ε
/// ones) do not serialize behind a static partition.
pub struct ThreadPool {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .field("queued", &self.queued())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (at least one). If the OS
    /// refuses some worker threads the pool degrades to however many did
    /// spawn; it panics only when not even one worker could start, since a
    /// workerless pool would deadlock every `map`.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let injector = Arc::new(Injector::new());
        let workers: Vec<JoinHandle<()>> = (0..threads)
            .filter_map(|i| {
                let injector = Arc::clone(&injector);
                let spawned = std::thread::Builder::new()
                    .name(format!("marqsim-engine-{i}"))
                    .spawn(move || {
                        // Catch panics from raw `execute` tasks here so a
                        // panicking job costs one task, not one worker
                        // (`map` additionally catches per item to report
                        // the panic message to the caller).
                        while let Some(task) = injector.pop() {
                            let _span = trace::Span::child_of("pool_task", task.parent)
                                .field("lane", task.lane.as_str());
                            let _ = catch_unwind(AssertUnwindSafe(task.run));
                        }
                    });
                match spawned {
                    Ok(handle) => Some(handle),
                    Err(err) => {
                        marqsim_obs::warn!("pool", "event=spawn_failed worker={i} err=\"{err}\"");
                        None
                    }
                }
            })
            .collect();
        assert!(
            !workers.is_empty(),
            "thread pool could not spawn any worker thread"
        );
        ThreadPool { injector, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Number of tasks waiting in the injector (not yet picked up by a
    /// worker) — the queue-depth signal the serve layer reports in `stats`.
    pub fn queued(&self) -> usize {
        self.injector.queued()
    }

    /// Submits one fire-and-forget task at [`Priority::Normal`]. A panicking
    /// task is caught inside the worker: it neither kills the worker thread
    /// nor poisons the shared injector, so subsequent jobs run normally.
    pub fn execute(&self, task: Task) {
        self.execute_at(Priority::Normal, task);
    }

    /// Submits one fire-and-forget task at an explicit priority.
    pub fn execute_at(&self, priority: Priority, task: Task) {
        self.injector.push(priority, task);
    }

    /// Applies `f` to every item concurrently (at [`Priority::Normal`]) and
    /// returns the outputs in input order. Each output is
    /// `Err(panic message)` if that item's closure panicked; other items are
    /// unaffected.
    ///
    /// `on_done` is invoked once per completed item (in completion order, on
    /// the calling thread) with the number of items finished so far — the
    /// hook behind the engine's progress reporting.
    pub fn map<I, O, F>(
        &self,
        items: Vec<I>,
        f: Arc<F>,
        on_done: impl FnMut(usize),
    ) -> Vec<Result<O, String>>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        self.map_at(Priority::Normal, items, f, on_done)
    }

    /// [`map`](Self::map) at an explicit scheduling priority.
    pub fn map_at<I, O, F>(
        &self,
        priority: Priority,
        items: Vec<I>,
        f: Arc<F>,
        mut on_done: impl FnMut(usize),
    ) -> Vec<Result<O, String>>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        let total = items.len();
        let (results_tx, results_rx) = channel::<(usize, Result<O, String>)>();
        for (index, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let results_tx = results_tx.clone();
            self.execute_at(
                priority,
                Box::new(move || {
                    let output = catch_unwind(AssertUnwindSafe(|| f(index, item)))
                        .map_err(|payload| panic_message(payload.as_ref()));
                    // The receiver outlives all tasks of this call, but a later
                    // panic in the caller could drop it first; a send failure
                    // then only means nobody is listening anymore.
                    let _ = results_tx.send((index, output));
                }),
            );
        }
        drop(results_tx);
        let mut slots: Vec<Option<Result<O, String>>> = (0..total).map(|_| None).collect();
        for done in 1..=total {
            let (index, output) = results_rx.recv().expect("all map tasks report");
            slots[index] = Some(output);
            on_done(done);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index reported"))
            .collect()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker task panicked".to_string()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.injector.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn map_preserves_input_order_for_any_thread_count() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.map(
                (0..100u64).collect(),
                Arc::new(|i: usize, x: u64| x * x + i as u64),
                |_| {},
            );
            let expected: Vec<u64> = (0..100).map(|x| x * x + x).collect();
            let got: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn a_panicking_task_does_not_poison_the_batch() {
        let pool = ThreadPool::new(4);
        let out = pool.map(
            vec![1u32, 2, 3, 4],
            Arc::new(|_, x: u32| {
                if x == 3 {
                    panic!("boom on {x}");
                }
                x * 10
            }),
            |_| {},
        );
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Ok(20));
        assert!(out[2].as_ref().unwrap_err().contains("boom"));
        assert_eq!(out[3], Ok(40));
        // The pool keeps working after a panic.
        let again = pool.map(vec![5u32], Arc::new(|_, x: u32| x + 1), |_| {});
        assert_eq!(again[0], Ok(6));
    }

    #[test]
    fn progress_hook_sees_every_completion() {
        let pool = ThreadPool::new(3);
        let seen = AtomicUsize::new(0);
        pool.map((0..25u8).collect(), Arc::new(|_, _x: u8| ()), |done| {
            seen.fetch_add(1, Ordering::Relaxed);
            assert!((1..=25).contains(&done));
        });
        assert_eq!(seen.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn panicking_execute_tasks_do_not_wedge_the_pool() {
        // Regression test: raw `execute` tasks used to unwind the worker
        // thread (and could poison shared locks), so enough panics left the
        // pool with no live workers and every later submission wedged. Panic
        // more times than there are workers, then require a normal batch to
        // complete on the same pool.
        let pool = ThreadPool::new(2);
        let (done_tx, done_rx) = channel::<()>();
        for _ in 0..4 {
            let done_tx = done_tx.clone();
            pool.execute(Box::new(move || {
                let _guard = done_tx;
                panic!("raw task boom");
            }));
        }
        drop(done_tx);
        // Blocks until every panicking task has run and unwound (each drops
        // its sender clone during the unwind; recv errors once all are gone).
        assert!(done_rx.recv().is_err());

        let out = pool.map(vec![1u32, 2, 3], Arc::new(|_, x: u32| x + 1), |_| {});
        let got: Vec<u32> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![2, 3, 4], "pool survives panicking jobs");
    }

    #[test]
    fn high_priority_tasks_overtake_a_queued_backlog() {
        // One worker, blocked by a gate task; queue a normal backlog, then a
        // high-priority task. When the gate opens, the high-priority task
        // must run before every queued normal task.
        let pool = ThreadPool::new(1);
        let (gate_tx, gate_rx) = channel::<()>();
        pool.execute(Box::new(move || {
            let _ = gate_rx.recv();
        }));
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        for _ in 0..4 {
            let order = Arc::clone(&order);
            pool.execute_at(
                Priority::Normal,
                Box::new(move || order.lock().unwrap().push("normal")),
            );
        }
        let (done_tx, done_rx) = channel::<()>();
        {
            let order = Arc::clone(&order);
            pool.execute_at(
                Priority::High,
                Box::new(move || {
                    order.lock().unwrap().push("high");
                    let _ = done_tx.send(());
                }),
            );
        }
        // Everything above is queued behind the gate on the single worker
        // (the gate task itself may or may not have been dequeued yet).
        let queued = pool.queued();
        assert!((5..=6).contains(&queued), "queued = {queued}");
        gate_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        assert_eq!(order.lock().unwrap().first(), Some(&"high"));
    }

    #[test]
    fn queued_drains_to_zero() {
        let pool = ThreadPool::new(2);
        pool.map((0..64u32).collect(), Arc::new(|_, x: u32| x), |_| {});
        assert_eq!(pool.queued(), 0, "map drains the injector");
    }

    #[test]
    fn pool_publishes_queue_instruments() {
        let registry = metrics::global();
        let normal = registry.counter_with("marqsim_pool_tasks_total", &[("lane", "normal")]);
        let high = registry.counter_with("marqsim_pool_tasks_total", &[("lane", "high")]);
        let wait = registry.histogram("marqsim_pool_queue_wait_seconds");
        let (tasks_before, high_before, wait_before) = (normal.get(), high.get(), wait.count());

        let pool = ThreadPool::new(2);
        pool.map((0..16u32).collect(), Arc::new(|_, x: u32| x), |_| {});
        pool.map_at(
            Priority::High,
            vec![1u32, 2],
            Arc::new(|_, x: u32| x),
            |_| {},
        );
        drop(pool);

        assert!(normal.get() >= tasks_before + 16, "normal lane counted");
        assert!(high.get() >= high_before + 2, "high lane counted");
        assert!(
            wait.count() >= wait_before + 18,
            "every dequeue records a queue wait"
        );
        assert!(
            metrics::global().gauge("marqsim_pool_queue_depth").get() >= 0,
            "drained pools never leave the depth gauge negative"
        );
    }

    #[test]
    fn priority_spellings_round_trip() {
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::parse(p.as_str()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
