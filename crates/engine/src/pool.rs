//! A channel-based thread-pool executor over `std::thread`.
//!
//! Workers are spawned once per [`ThreadPool`] and block on a shared
//! injector channel; every submitted task is a boxed closure, so the pool is
//! agnostic to job types. [`ThreadPool::map`] builds the deterministic
//! parallel-map primitive the engine is based on: each item's output depends
//! only on `(index, item)`, results are reassembled by index, and worker
//! panics are caught per task — so the output of a map is bit-identical for
//! any thread count, including 1.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

enum Message {
    Run(Task),
    Shutdown,
}

/// A fixed-size pool of worker threads fed from one shared channel.
///
/// The shared injector gives dynamic load balancing for free: an idle worker
/// steals the next task regardless of which worker ran the previous one, so
/// heavy tasks (small-ε sweep points have many more samples than large-ε
/// ones) do not serialize behind a static partition.
pub struct ThreadPool {
    sender: Sender<Message>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Message>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Message>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("marqsim-engine-{i}"))
                    .spawn(move || loop {
                        let message = {
                            // Recover a poisoned injector lock instead of
                            // propagating: the receiver has no state a
                            // panicking holder could have left half-updated,
                            // and one panic must not wedge every later job.
                            let guard = receiver.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.recv()
                        };
                        match message {
                            // Catch panics from raw `execute` tasks here so a
                            // panicking job costs one task, not one worker
                            // (`map` additionally catches per item to report
                            // the panic message to the caller).
                            Ok(Message::Run(task)) => {
                                let _ = catch_unwind(AssertUnwindSafe(task));
                            }
                            Ok(Message::Shutdown) | Err(_) => break,
                        }
                    })
                    .expect("spawn engine worker")
            })
            .collect();
        ThreadPool { sender, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one fire-and-forget task. A panicking task is caught inside
    /// the worker: it neither kills the worker thread nor poisons the shared
    /// injector, so subsequent jobs run normally.
    pub fn execute(&self, task: Task) {
        self.sender
            .send(Message::Run(task))
            .expect("engine workers alive");
    }

    /// Applies `f` to every item concurrently and returns the outputs in
    /// input order. Each output is `Err(panic message)` if that item's
    /// closure panicked; other items are unaffected.
    ///
    /// `on_done` is invoked once per completed item (in completion order, on
    /// the calling thread) with the number of items finished so far — the
    /// hook behind the engine's progress reporting.
    pub fn map<I, O, F>(
        &self,
        items: Vec<I>,
        f: Arc<F>,
        mut on_done: impl FnMut(usize),
    ) -> Vec<Result<O, String>>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        let total = items.len();
        let (results_tx, results_rx) = channel::<(usize, Result<O, String>)>();
        for (index, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let results_tx = results_tx.clone();
            self.execute(Box::new(move || {
                let output = catch_unwind(AssertUnwindSafe(|| f(index, item)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                // The receiver outlives all tasks of this call, but a later
                // panic in the caller could drop it first; a send failure
                // then only means nobody is listening anymore.
                let _ = results_tx.send((index, output));
            }));
        }
        drop(results_tx);
        let mut slots: Vec<Option<Result<O, String>>> = (0..total).map(|_| None).collect();
        for done in 1..=total {
            let (index, output) = results_rx.recv().expect("all map tasks report");
            slots[index] = Some(output);
            on_done(done);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index reported"))
            .collect()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker task panicked".to_string()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.sender.send(Message::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order_for_any_thread_count() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.map(
                (0..100u64).collect(),
                Arc::new(|i: usize, x: u64| x * x + i as u64),
                |_| {},
            );
            let expected: Vec<u64> = (0..100).map(|x| x * x + x).collect();
            let got: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn a_panicking_task_does_not_poison_the_batch() {
        let pool = ThreadPool::new(4);
        let out = pool.map(
            vec![1u32, 2, 3, 4],
            Arc::new(|_, x: u32| {
                if x == 3 {
                    panic!("boom on {x}");
                }
                x * 10
            }),
            |_| {},
        );
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Ok(20));
        assert!(out[2].as_ref().unwrap_err().contains("boom"));
        assert_eq!(out[3], Ok(40));
        // The pool keeps working after a panic.
        let again = pool.map(vec![5u32], Arc::new(|_, x: u32| x + 1), |_| {});
        assert_eq!(again[0], Ok(6));
    }

    #[test]
    fn progress_hook_sees_every_completion() {
        let pool = ThreadPool::new(3);
        let seen = AtomicUsize::new(0);
        pool.map((0..25u8).collect(), Arc::new(|_, _x: u8| ()), |done| {
            seen.fetch_add(1, Ordering::Relaxed);
            assert!((1..=25).contains(&done));
        });
        assert_eq!(seen.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn panicking_execute_tasks_do_not_wedge_the_pool() {
        // Regression test: raw `execute` tasks used to unwind the worker
        // thread (and could poison shared locks), so enough panics left the
        // pool with no live workers and every later submission wedged. Panic
        // more times than there are workers, then require a normal batch to
        // complete on the same pool.
        let pool = ThreadPool::new(2);
        let (done_tx, done_rx) = channel::<()>();
        for _ in 0..4 {
            let done_tx = done_tx.clone();
            pool.execute(Box::new(move || {
                let _guard = done_tx;
                panic!("raw task boom");
            }));
        }
        drop(done_tx);
        // Blocks until every panicking task has run and unwound (each drops
        // its sender clone during the unwind; recv errors once all are gone).
        assert!(done_rx.recv().is_err());

        let out = pool.map(vec![1u32, 2, 3], Arc::new(|_, x: u32| x + 1), |_| {});
        let got: Vec<u32> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![2, 3, 4], "pool survives panicking jobs");
    }
}
