//! The open job API: the [`Workload`] trait and its execution context.
//!
//! Earlier revisions of the engine exposed a *closed* job enum
//! (`EngineJob::{Compile, Sweep}`): every new kind of work meant enum
//! surgery in the engine, the serve protocol, and every binary that
//! submitted jobs. This module inverts that relationship — in the spirit of
//! typed message-passing protocols, where the protocol rather than the
//! implementation defines what can flow between concurrent parties — by
//! making the *job surface* a trait:
//!
//! * [`Workload`] — anything with a label, a unit count, and a `run` body.
//!   Implementations live anywhere (other crates, test files, downstream
//!   services); the engine schedules them without knowing their shape.
//! * [`WorkloadCtx`] — what a running workload is handed: the shared
//!   [`TransitionCache`], the pool's [`map`](WorkloadCtx::map)-style
//!   fan-out, a cooperative [`CancelToken`], and a throttled progress sink.
//! * [`WorkloadOutput`] — a type-erased result. In-process callers
//!   [`downcast`](WorkloadOutput::downcast) it back; the serve layer
//!   encodes it through its workload registry.
//! * [`SubmitOptions`] — typed submission parameters: scheduling
//!   [`Priority`], the per-connection `max_in_flight` admission bound the
//!   serve layer enforces, and the [`ProgressCadence`] that coalesces
//!   progress events.
//!
//! Four workloads ship built in: [`CompileWorkload`] and [`SweepWorkload`]
//! (the old enum variants), [`PerturbAverageWorkload`] (the `P_rp`
//! perturbation average with its sample solves fanned out over the pool),
//! and [`BenchmarkSuiteWorkload`] (a multi-Hamiltonian × multi-strategy
//! sweep grid — the shape every `fig*`/`table*` binary used to hand-roll).
//!
//! # Cancellation contract
//!
//! Cancellation is cooperative: call
//! [`ensure_active`](WorkloadCtx::ensure_active) between units of work (or
//! use [`map`](WorkloadCtx::map), which checks before every item). A
//! cancelled workload should return [`EngineError::Cancelled`] — which is
//! exactly what `ensure_active` hands back.
//!
//! # Progress contract
//!
//! Report monotonically non-decreasing completed-unit counts that never
//! exceed [`total_units`](Workload::total_units). The sink enforces
//! monotonicity (a stale lower count is dropped, never re-emitted) and
//! applies the submission's [`ProgressCadence`]; the final
//! `completed == total` report is always delivered.

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use marqsim_core::experiment::{SweepConfig, SweepResult};
use marqsim_core::perturb::{
    perturbed_matrix_sample_warm_with, perturbed_matrix_sample_with,
    perturbed_matrix_sample_with_basis, PerturbationConfig,
};
use marqsim_core::{HttGraph, SolverKind, TransitionStrategy};
use marqsim_markov::combine::combine;
use marqsim_markov::TransitionMatrix;
use marqsim_obs::{lockcheck, trace};
use marqsim_pauli::Hamiltonian;

use crate::cache::TransitionCache;
use crate::engine::{
    BuiltinJob, BuiltinOutcome, CompileOutcome, CompileRequest, Engine, Progress, ProgressFn,
    SweepRequest,
};
use crate::error::EngineError;
use crate::job::{CancelToken, JobState};
use crate::pool::Priority;

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// A unit of submittable work. See the [module docs](self) for the
/// cancellation and progress contracts.
pub trait Workload: Send + Sync {
    /// Identifies the job in outcomes, errors, and progress reports.
    fn label(&self) -> &str;

    /// How many units of work this workload will report progress over.
    /// Progress counts passed to [`WorkloadCtx::report`] must stay within
    /// `0..=total_units()`.
    fn total_units(&self) -> usize;

    /// Executes the workload. Runs on the job's coordinator thread (for
    /// [`Engine::submit`]) or the calling thread (for
    /// [`Engine::run_workload`]); fan work out over the pool with
    /// [`WorkloadCtx::map`].
    ///
    /// # Errors
    ///
    /// Returns the workload's [`EngineError`] — [`EngineError::Cancelled`]
    /// when cancellation was observed, [`EngineError::workload`] for
    /// domain-specific failures.
    fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError>;
}

impl Workload for Box<dyn Workload> {
    fn label(&self) -> &str {
        (**self).label()
    }

    fn total_units(&self) -> usize {
        (**self).total_units()
    }

    fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
        (**self).run(ctx)
    }
}

/// The type-erased output of a [`Workload`].
///
/// In-process callers get their concrete type back with
/// [`downcast`](Self::downcast) / [`downcast_ref`](Self::downcast_ref); the
/// serve layer encodes outputs through its per-kind registry. The
/// [`into_swept`](Self::into_swept) / [`into_compiled`](Self::into_compiled)
/// helpers unwrap the built-in workloads' outputs.
pub struct WorkloadOutput {
    value: Box<dyn Any + Send>,
}

impl std::fmt::Debug for WorkloadOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadOutput").finish_non_exhaustive()
    }
}

impl WorkloadOutput {
    /// Wraps any sendable value.
    pub fn new<T: Any + Send>(value: T) -> Self {
        WorkloadOutput {
            value: Box::new(value),
        }
    }

    /// Recovers the concrete output, or returns `self` unchanged if the
    /// type does not match.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` on a type mismatch so the caller can try
    /// another type.
    pub fn downcast<T: Any>(self) -> Result<T, WorkloadOutput> {
        match self.value.downcast::<T>() {
            Ok(value) => Ok(*value),
            Err(value) => Err(WorkloadOutput { value }),
        }
    }

    /// Borrows the concrete output, if the type matches.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.value.downcast_ref::<T>()
    }

    /// Unwraps a [`SweepWorkload`] output; panics on any other type.
    pub fn into_swept(self) -> SweepResult {
        self.downcast::<SweepResult>()
            .expect("expected a sweep outcome")
    }

    /// Unwraps a [`CompileWorkload`] output; panics on any other type.
    pub fn into_compiled(self) -> CompileOutcome {
        self.downcast::<CompileOutcome>()
            .expect("expected a compile outcome")
    }
}

// ---------------------------------------------------------------------------
// Submission options
// ---------------------------------------------------------------------------

/// How often progress reports become progress *events* (engine callbacks,
/// serve `progress` lines). The default — every unit, no time floor —
/// preserves the historical one-event-per-point behavior at evaluation
/// scale; thousand-point sweeps coalesce with
/// [`ProgressCadence::every`] / [`with_interval`](Self::with_interval).
///
/// An event is emitted when **either** threshold is reached: `units` more
/// units completed since the last event, or `interval` elapsed since the
/// last event. The final `completed == total` event is always emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressCadence {
    /// Emit after this many additional completed units (minimum 1).
    pub units: usize,
    /// Also emit once this much time has passed since the last event,
    /// regardless of the unit delta. `None` disables the time axis.
    pub interval: Option<Duration>,
}

impl Default for ProgressCadence {
    fn default() -> Self {
        ProgressCadence {
            units: 1,
            interval: None,
        }
    }
}

impl ProgressCadence {
    /// At most one event per `units` completed units.
    pub fn every(units: usize) -> Self {
        ProgressCadence {
            units: units.max(1),
            interval: None,
        }
    }

    /// Adds a time floor: an event is also emitted once `interval` has
    /// elapsed since the previous one.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = Some(interval);
        self
    }

    /// Interval-only coalescing: events come from the time axis alone
    /// (the unit threshold is effectively disabled); the final
    /// `completed == total` event is still always emitted.
    pub fn every_interval(interval: Duration) -> Self {
        ProgressCadence {
            units: usize::MAX,
            interval: Some(interval),
        }
    }
}

/// Typed submission parameters for [`Engine::submit_with_options`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Scheduling priority of the job's pool tasks (latency only — results
    /// are reassembled by index and cannot change).
    pub priority: Priority,
    /// Admission bound the serve layer enforces per connection: a submit
    /// arriving while this many of the connection's jobs are still in
    /// flight is rejected with a structured `busy` event instead of being
    /// queued. `None` falls back to the server's default; a set value can
    /// only *tighten* that default, never raise it. The engine itself
    /// stores but does not enforce this (in-process callers own their
    /// submission loop).
    pub max_in_flight: Option<usize>,
    /// Progress-event coalescing.
    pub progress_every: ProgressCadence,
    /// Min-cost-flow backend for this job's flow solves; `None` uses the
    /// engine default ([`Engine::flow_solver`]).
    pub flow_solver: Option<SolverKind>,
}

impl SubmitOptions {
    /// Default options (normal priority, server-default admission, one
    /// progress event per unit).
    pub fn new() -> Self {
        SubmitOptions::default()
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-connection in-flight admission bound.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = Some(max_in_flight);
        self
    }

    /// Sets the progress cadence.
    pub fn with_progress_every(mut self, cadence: ProgressCadence) -> Self {
        self.progress_every = cadence;
        self
    }

    /// Selects the min-cost-flow backend for this job.
    pub fn with_flow_solver(mut self, solver: SolverKind) -> Self {
        self.flow_solver = Some(solver);
        self
    }
}

// ---------------------------------------------------------------------------
// Progress sink
// ---------------------------------------------------------------------------

/// The engine side of the progress contract: records every report into the
/// job's live snapshot, enforces monotonicity, and throttles the callback
/// to the submission's [`ProgressCadence`].
pub(crate) struct ProgressSink {
    callback: Option<Arc<ProgressFn>>,
    state: Option<Arc<JobState>>,
    cadence: ProgressCadence,
    throttle: Mutex<ThrottleState>,
}

#[derive(Default)]
struct ThrottleState {
    /// Highest completed count seen so far (monotonicity floor).
    max_seen: usize,
    /// Completed count and instant of the last *emitted* event.
    last_emitted: Option<(usize, Instant)>,
}

impl ProgressSink {
    pub(crate) fn new(
        callback: Option<Arc<ProgressFn>>,
        state: Option<Arc<JobState>>,
        cadence: ProgressCadence,
    ) -> Self {
        ProgressSink {
            callback,
            state,
            cadence,
            throttle: Mutex::new(ThrottleState::default()),
        }
    }

    pub(crate) fn emit(&self, progress: Progress) {
        let (advanced, emit) = {
            let _witness = lockcheck::acquire("engine.workload.throttle");
            let mut throttle = self.throttle.lock().unwrap_or_else(PoisonError::into_inner);
            // Monotonicity: a report that does not advance the completed
            // count is dropped (stale counts from overlapping phases must
            // never run progress backwards on the wire).
            if progress.completed < throttle.max_seen
                || (progress.completed == throttle.max_seen
                    && matches!(throttle.last_emitted, Some((last, _)) if last == progress.completed))
            {
                (false, false)
            } else {
                throttle.max_seen = progress.completed;
                let is_final = progress.total > 0 && progress.completed == progress.total;
                let due = match throttle.last_emitted {
                    None => true,
                    Some((last_units, last_instant)) => {
                        progress.completed >= last_units.saturating_add(self.cadence.units.max(1))
                            || self
                                .cadence
                                .interval
                                .is_some_and(|interval| last_instant.elapsed() >= interval)
                    }
                };
                let emit = is_final || due;
                if emit {
                    throttle.last_emitted = Some((progress.completed, Instant::now()));
                }
                (true, emit)
            }
        };
        // The live snapshot follows every *advancing* report, throttled or
        // not — a stale lower count must not run the snapshot backwards
        // either.
        if advanced {
            if let Some(state) = &self.state {
                state.record_progress(progress);
            }
        }
        if emit {
            if let Some(callback) = &self.callback {
                callback(progress);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The execution context
// ---------------------------------------------------------------------------

/// What a running [`Workload`] is handed: the engine's shared cache, the
/// pool's fan-out, the job's cancellation token, and the throttled progress
/// sink.
///
/// Progress from [`map`](Self::map) (and the built-ins' batch machinery)
/// is **cumulative across phases**: the context tracks how many units
/// earlier `map` calls completed and offsets later calls by it, reporting
/// against the workload's [`total_units`](Workload::total_units) — so a
/// workload that maps twice still emits one monotone stream ending at
/// `completed == total`. (If phases turn out larger than `total_units`
/// promised, the reported total grows to match rather than overshooting.)
pub struct WorkloadCtx<'a> {
    engine: &'a Engine,
    label: String,
    cancel: CancelToken,
    sink: ProgressSink,
    priority: Priority,
    /// The min-cost-flow backend of this job (submission override or the
    /// engine default).
    flow_solver: SolverKind,
    /// The workload's own unit count, the denominator of cumulative
    /// progress.
    total_units: usize,
    /// Units completed by earlier `map` / `run_builtin` phases.
    units_done: AtomicUsize,
    /// The innermost span open when this context was created — the job
    /// span for submitted jobs (see [`WorkloadCtx::job_span`]).
    job_span: Option<trace::SpanId>,
}

impl<'a> WorkloadCtx<'a> {
    pub(crate) fn new(
        engine: &'a Engine,
        label: String,
        cancel: CancelToken,
        sink: ProgressSink,
        priority: Priority,
        flow_solver: SolverKind,
        total_units: usize,
    ) -> Self {
        WorkloadCtx {
            engine,
            label,
            cancel,
            sink,
            priority,
            flow_solver,
            total_units,
            units_done: AtomicUsize::new(0),
            job_span: trace::current_span(),
        }
    }

    /// The job's trace span, when tracing is enabled — the parent to hand
    /// to [`trace::Span::child_of`] or [`trace::emit_interval`] from helper
    /// threads a workload spawns itself (the pool's own tasks re-parent
    /// automatically). `None` when tracing is off or the context was built
    /// outside any span.
    pub fn job_span(&self) -> Option<trace::SpanId> {
        self.job_span
    }

    /// The running job's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The engine's shared transition cache. Note
    /// [`cache_enabled`](Self::cache_enabled): with caching off, built-in
    /// workloads bypass this entirely, and custom workloads should too.
    pub fn cache(&self) -> &TransitionCache {
        self.engine.cache()
    }

    /// Whether transition-matrix caching is enabled on this engine.
    pub fn cache_enabled(&self) -> bool {
        self.engine.cache_enabled()
    }

    /// Worker-thread count of the engine's pool.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// The scheduling priority this job was submitted at.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The min-cost-flow backend this job's flow solves use
    /// ([`SubmitOptions::flow_solver`] override, or the engine default).
    pub fn flow_solver(&self) -> SolverKind {
        self.flow_solver
    }

    /// A clone of the job's cancellation token (for handing to helper
    /// threads a workload spawns itself).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Checkpoint: returns [`EngineError::Cancelled`] (carrying the job
    /// label) once cancellation has been requested. Call between units of
    /// work.
    ///
    /// # Errors
    ///
    /// Exactly the cancellation error the workload should propagate.
    pub fn ensure_active(&self) -> Result<(), EngineError> {
        if self.cancel.is_cancelled() {
            Err(EngineError::cancelled(&self.label))
        } else {
            Ok(())
        }
    }

    /// Reports `completed` of `total` units done — **cumulative** counts
    /// over the whole workload, not per phase. Subject to the submission's
    /// [`ProgressCadence`]; the job's live snapshot
    /// ([`JobControl::progress`](crate::JobControl::progress)) follows
    /// every advancing call regardless. Also advances the context's
    /// cumulative counter, so manual reports and later
    /// [`map`](Self::map) phases compose.
    pub fn report(&self, completed: usize, total: usize) {
        self.units_done.fetch_max(completed, Ordering::Relaxed);
        self.sink.emit(Progress { completed, total });
    }

    /// Parallel fan-out over the engine's pool: applies `f` to every item
    /// concurrently at the job's priority and returns outputs in input
    /// order. Cancellation is checked before each item (skipped items
    /// yield [`EngineError::Cancelled`]), worker panics become
    /// [`EngineError::WorkerPanic`] tagged with the job label, and each
    /// completed item advances the workload's cumulative progress (one
    /// item = one unit, offset by earlier phases, reported against
    /// [`total_units`](Workload::total_units)).
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<Result<O, EngineError>>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> Result<O, EngineError> + Send + Sync + 'static,
    {
        let base = self.units_done.load(Ordering::Relaxed);
        let total = self.total_units.max(base + items.len());
        let items_len = items.len();
        let cancel = self.cancel.clone();
        let task = Arc::new(move |index: usize, item: I| {
            if cancel.is_cancelled() {
                None
            } else {
                Some(f(index, item))
            }
        });
        let outputs = self
            .engine
            .pool()
            .map_at(self.priority, items, task, |done| {
                self.sink.emit(Progress {
                    completed: base + done,
                    total,
                })
            })
            .into_iter()
            .map(|result| match result {
                Ok(Some(output)) => output,
                Ok(None) => Err(EngineError::cancelled(&self.label)),
                Err(message) => Err(EngineError::panic(&self.label, message)),
            })
            .collect();
        self.units_done
            .fetch_max(base + items_len, Ordering::Relaxed);
        outputs
    }

    /// Resolves the HTT graph for `(ham, strategy)` — through the shared
    /// cache when caching is enabled, with a direct build otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the build failure, attributed to the job label.
    pub fn resolve_graph(
        &self,
        ham: &Hamiltonian,
        strategy: &TransitionStrategy,
    ) -> Result<Arc<HttGraph>, EngineError> {
        let _span = trace::Span::enter("resolve_graph")
            .field("label", self.label.as_str())
            .field("backend", self.flow_solver.as_str());
        let built = if self.cache_enabled() {
            self.cache()
                .get_or_build_with(ham, strategy, self.flow_solver)
        } else {
            HttGraph::build_with_solver(ham, strategy, self.flow_solver).map(Arc::new)
        };
        built.map_err(|e| EngineError::compile(&self.label, e))
    }

    /// Runs a list of built-in jobs through the engine's batched machinery
    /// (deduplicated graph resolution, one flattened point-task queue) with
    /// this context's cancellation, cumulative progress, and priority.
    pub(crate) fn run_builtin(
        &self,
        jobs: Vec<BuiltinJob>,
    ) -> Vec<Result<BuiltinOutcome, EngineError>> {
        let planned: usize = jobs
            .iter()
            .map(|job| match job {
                BuiltinJob::Compile(_) => 1,
                BuiltinJob::Sweep(req) => req.config.epsilons.len() * req.config.repeats,
            })
            .sum();
        let base = self.units_done.load(Ordering::Relaxed);
        let total = self.total_units.max(base + planned);
        let outcomes = self.engine.run_builtin(
            jobs,
            &self.cancel,
            &|done, _tasks| {
                self.sink.emit(Progress {
                    completed: base + done,
                    total,
                })
            },
            self.priority,
            self.flow_solver,
        );
        self.units_done.fetch_max(base + planned, Ordering::Relaxed);
        outcomes
    }
}

// ---------------------------------------------------------------------------
// Built-in workloads
// ---------------------------------------------------------------------------

/// One compilation (optionally with fidelity evaluation) as a [`Workload`].
/// Output: [`CompileOutcome`].
#[derive(Debug, Clone)]
pub struct CompileWorkload {
    /// The wrapped request.
    pub request: CompileRequest,
}

impl CompileWorkload {
    /// Wraps a compile request.
    pub fn new(request: CompileRequest) -> Self {
        CompileWorkload { request }
    }
}

impl Workload for CompileWorkload {
    fn label(&self) -> &str {
        &self.request.label
    }

    fn total_units(&self) -> usize {
        1
    }

    fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
        ctx.run_builtin(vec![BuiltinJob::Compile(self.request.clone())])
            .pop()
            .expect("one outcome per job")
            .map(|outcome| match outcome {
                BuiltinOutcome::Compiled(compiled) => WorkloadOutput::new(*compiled),
                BuiltinOutcome::Swept(_) => unreachable!("compile jobs produce compile outcomes"),
            })
    }
}

/// One full `(ε, repetition)` sweep as a [`Workload`]. Output:
/// [`SweepResult`], bit-identical to the serial
/// `marqsim_core::experiment::run_sweep`.
#[derive(Debug, Clone)]
pub struct SweepWorkload {
    /// The wrapped request.
    pub request: SweepRequest,
}

impl SweepWorkload {
    /// Wraps a sweep request.
    pub fn new(request: SweepRequest) -> Self {
        SweepWorkload { request }
    }
}

impl Workload for SweepWorkload {
    fn label(&self) -> &str {
        &self.request.label
    }

    fn total_units(&self) -> usize {
        self.request.config.epsilons.len() * self.request.config.repeats
    }

    fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
        ctx.run_builtin(vec![BuiltinJob::Sweep(self.request.clone())])
            .pop()
            .expect("one outcome per job")
            .map(|outcome| match outcome {
                BuiltinOutcome::Swept(sweep) => WorkloadOutput::new(sweep),
                BuiltinOutcome::Compiled(_) => unreachable!("sweep jobs produce sweep outcomes"),
            })
    }
}

/// The parallel `P_rp` construction: `samples` independently perturbed
/// min-cost-flow solves fanned out over the pool, averaged into one
/// transition matrix. Output: [`PerturbAverageResult`].
///
/// Each sample is seeded independently
/// ([`perturbation_sample_seed`](marqsim_core::perturb::perturbation_sample_seed)),
/// so the result is deterministic for any thread count — but it is *not*
/// the same matrix as the serial
/// [`random_perturbation_matrix`](marqsim_core::perturb::random_perturbation_matrix),
/// which threads one RNG through all samples. The compiler's GC-RP
/// strategy keeps the serial construction (warm-started from the `P_gc`
/// basis where the backend supports it); this workload is the parallel
/// path for standalone `P_rp` analysis.
///
/// Under a basis-exporting backend the workload solves sample `0` cold,
/// exports its spanning basis, and warm-starts samples `1..` from it in
/// parallel — the perturbation only changes costs, never the topology, so
/// one basis serves every sample. On a cache-enabled engine the solves
/// are attributed to the cache stats as `flow_solves` (cold) and
/// `warm_starts` (re-pivots): an `N`-sample job under the simplex backend
/// reports `flow_solves = 1, warm_starts = N - 1`.
#[derive(Debug, Clone)]
pub struct PerturbAverageWorkload {
    label: String,
    hamiltonian: Hamiltonian,
    config: PerturbationConfig,
}

impl PerturbAverageWorkload {
    /// A perturbation-average job over `ham`.
    pub fn new(
        label: impl Into<String>,
        hamiltonian: Hamiltonian,
        config: PerturbationConfig,
    ) -> Self {
        PerturbAverageWorkload {
            label: label.into(),
            hamiltonian,
            config,
        }
    }
}

/// Output of a [`PerturbAverageWorkload`].
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbAverageResult {
    /// Label of the job that produced this result.
    pub label: String,
    /// Number of perturbed solves averaged.
    pub samples: usize,
    /// The averaged transition matrix `P_rp`.
    pub matrix: TransitionMatrix,
}

impl Workload for PerturbAverageWorkload {
    fn label(&self) -> &str {
        &self.label
    }

    fn total_units(&self) -> usize {
        self.config.samples
    }

    fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
        if self.config.samples == 0 {
            return Err(EngineError::workload(
                &self.label,
                "perturbation averaging needs at least one sample",
            ));
        }
        ctx.ensure_active()?;
        let ham = Arc::new(self.hamiltonian.clone());
        let config = self.config;
        let label = self.label.clone();
        // Resolve the `auto` policy on this workload's instance size up
        // front: the warm-start basis, the per-sample solves, and the
        // per-backend solve attribution below must all name one concrete
        // backend.
        let solver = ctx
            .flow_solver()
            .resolve_for_strings(self.hamiltonian.num_terms());
        // Sample 0 solves cold and exports its basis; the remaining samples
        // warm-start from it in parallel. The basis is a pure function of
        // (ham, config, solver), so the averaged matrix stays deterministic
        // for every thread count; backends without warm support export no
        // basis and each sample solves cold exactly as before.
        let (first, basis) =
            perturbed_matrix_sample_with_basis(&self.hamiltonian, &config, 0, solver)
                .map_err(|e| EngineError::compile(&self.label, e))?;
        ctx.report(1, self.config.samples);
        let basis = basis.map(Arc::new);
        let shared_basis = basis.clone();
        let rest = ctx
            .map((1..self.config.samples).collect(), move |_idx, sample| {
                match shared_basis.as_deref() {
                    Some(basis) => {
                        perturbed_matrix_sample_warm_with(&ham, &config, sample, solver, basis)
                    }
                    None => perturbed_matrix_sample_with(&ham, &config, sample, solver)
                        .map(|matrix| (matrix, false)),
                }
                .map_err(|e| EngineError::compile(&label, e))
            })
            .into_iter()
            .collect::<Result<Vec<(TransitionMatrix, bool)>, EngineError>>()?;
        if ctx.cache_enabled() {
            let warm_starts = rest.iter().filter(|(_, warm)| *warm).count() as u64;
            let cold_solves = 1 + rest.len() - warm_starts as usize;
            for _ in 0..cold_solves {
                ctx.cache().record_flow_solve(solver);
            }
            ctx.cache().record_warm_starts(warm_starts);
        }
        let matrices: Vec<TransitionMatrix> = std::iter::once(first)
            .chain(rest.into_iter().map(|(matrix, _)| matrix))
            .collect();
        let weights = vec![1.0 / matrices.len() as f64; matrices.len()];
        let matrix = combine(&matrices, &weights).map_err(|e| {
            EngineError::compile(&self.label, marqsim_core::CompileError::Combine(e))
        })?;
        Ok(WorkloadOutput::new(PerturbAverageResult {
            label: self.label.clone(),
            samples: self.config.samples,
            matrix,
        }))
    }
}

/// One case of a [`BenchmarkSuiteWorkload`]: a named benchmark swept under
/// one strategy with one sweep configuration.
#[derive(Debug, Clone)]
pub struct SuiteCase {
    /// Benchmark name (grouping key in the result).
    pub benchmark: String,
    /// The Hamiltonian to sweep.
    pub hamiltonian: Hamiltonian,
    /// The strategy for every point of this case.
    pub strategy: TransitionStrategy,
    /// Precisions, repetitions, base seed, fidelity switch.
    pub config: SweepConfig,
}

/// A multi-Hamiltonian × multi-strategy sweep grid — the shape every
/// `fig*`/`table*` evaluation binary used to hand-roll. All cases run as
/// one batch: graph resolution is deduplicated across cases (the GC and
/// GC-RP strategies of one benchmark share a single `P_gc` min-cost-flow
/// solve), and every case's point tasks interleave on one work queue, so a
/// grid of many small sweeps load-balances exactly like one big sweep.
/// Output: [`BenchmarkSuiteResult`], cases in submission order.
#[derive(Debug, Clone)]
pub struct BenchmarkSuiteWorkload {
    label: String,
    cases: Vec<SuiteCase>,
}

impl BenchmarkSuiteWorkload {
    /// An empty suite.
    pub fn new(label: impl Into<String>) -> Self {
        BenchmarkSuiteWorkload {
            label: label.into(),
            cases: Vec::new(),
        }
    }

    /// Adds one case.
    pub fn case(
        mut self,
        benchmark: impl Into<String>,
        hamiltonian: Hamiltonian,
        strategy: TransitionStrategy,
        config: SweepConfig,
    ) -> Self {
        self.cases.push(SuiteCase {
            benchmark: benchmark.into(),
            hamiltonian,
            strategy,
            config,
        });
        self
    }

    /// Adds the full `benchmarks × strategies` grid under one configuration
    /// per benchmark (`config(benchmark)` is evaluated once per benchmark).
    pub fn grid(
        mut self,
        benchmarks: impl IntoIterator<Item = (String, Hamiltonian)>,
        strategies: &[TransitionStrategy],
        mut config: impl FnMut(&str) -> SweepConfig,
    ) -> Self {
        for (name, ham) in benchmarks {
            let case_config = config(&name);
            for strategy in strategies {
                self = self.case(
                    name.clone(),
                    ham.clone(),
                    strategy.clone(),
                    case_config.clone(),
                );
            }
        }
        self
    }

    /// The configured cases, in submission order.
    pub fn cases(&self) -> &[SuiteCase] {
        &self.cases
    }

    /// Number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the suite has no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }
}

/// One finished case of a [`BenchmarkSuiteWorkload`].
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteCaseResult {
    /// Benchmark name of the case.
    pub benchmark: String,
    /// Strategy label of the case.
    pub strategy: String,
    /// The sweep data.
    pub sweep: SweepResult,
}

/// Output of a [`BenchmarkSuiteWorkload`]: one entry per case, in
/// submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSuiteResult {
    /// Finished cases.
    pub cases: Vec<SuiteCaseResult>,
}

impl BenchmarkSuiteResult {
    /// The sweep of a `(benchmark, strategy label)` pair, if present.
    pub fn sweep(&self, benchmark: &str, strategy: &str) -> Option<&SweepResult> {
        self.cases
            .iter()
            .find(|c| c.benchmark == benchmark && c.strategy == strategy)
            .map(|c| &c.sweep)
    }

    /// The sweeps in submission order.
    pub fn sweeps(&self) -> impl Iterator<Item = &SweepResult> {
        self.cases.iter().map(|c| &c.sweep)
    }
}

impl Workload for BenchmarkSuiteWorkload {
    fn label(&self) -> &str {
        &self.label
    }

    fn total_units(&self) -> usize {
        self.cases
            .iter()
            .map(|c| c.config.epsilons.len() * c.config.repeats)
            .sum()
    }

    fn run(&self, ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
        let jobs = self
            .cases
            .iter()
            .map(|case| {
                BuiltinJob::Sweep(SweepRequest::new(
                    format!(
                        "{}/{}/{}",
                        self.label,
                        case.benchmark,
                        case.strategy.label()
                    ),
                    case.hamiltonian.clone(),
                    case.strategy.clone(),
                    case.config.clone(),
                ))
            })
            .collect();
        let outcomes = ctx.run_builtin(jobs);
        let mut cases = Vec::with_capacity(self.cases.len());
        for (case, outcome) in self.cases.iter().zip(outcomes) {
            match outcome? {
                BuiltinOutcome::Swept(sweep) => cases.push(SuiteCaseResult {
                    benchmark: case.benchmark.clone(),
                    strategy: case.strategy.label(),
                    sweep,
                }),
                BuiltinOutcome::Compiled(_) => {
                    unreachable!("suite cases are sweeps")
                }
            }
        }
        Ok(WorkloadOutput::new(BenchmarkSuiteResult { cases }))
    }
}
