//! Engine error type.

use std::fmt;

use marqsim_core::CompileError;

/// Errors produced by the compilation engine.
///
/// Every variant carries the label of the job that failed, so a batch
/// submitter can tell which of its requests went wrong without positional
/// bookkeeping.
#[derive(Debug)]
pub enum EngineError {
    /// A job's compilation failed.
    Compile {
        /// Label of the failed job.
        label: String,
        /// The underlying compiler error.
        source: CompileError,
    },
    /// A worker thread panicked while running a job.
    WorkerPanic {
        /// Label of the failed job.
        label: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The engine configuration is invalid — e.g. `MARQSIM_THREADS=0`, a
    /// non-numeric `MARQSIM_CACHE_CAP`, or an unrecognized `MARQSIM_CACHE`
    /// value. Raised before any job runs, so no job label applies.
    InvalidConfig {
        /// Human-readable description naming the offending setting and
        /// value.
        reason: String,
    },
    /// The job was cancelled through its
    /// [`JobHandle`](crate::job::JobHandle) before it finished. Cancellation
    /// is cooperative: point-level tasks that were already running complete,
    /// but their outputs are discarded.
    Cancelled {
        /// Label of the cancelled job.
        label: String,
    },
    /// A [`Workload`](crate::Workload) implementation reported a
    /// domain-specific failure. This is the open-ended variant custom
    /// workloads (defined outside this crate) use, so their errors carry
    /// the job label exactly like the built-in ones.
    Workload {
        /// Label of the failed job.
        label: String,
        /// The workload's description of what went wrong.
        message: String,
    },
}

impl EngineError {
    /// A compilation failure attributed to the job `label`.
    pub fn compile(label: &str, source: CompileError) -> Self {
        EngineError::Compile {
            label: label.to_string(),
            source,
        }
    }

    pub(crate) fn panic(label: &str, message: String) -> Self {
        EngineError::WorkerPanic {
            label: label.to_string(),
            message,
        }
    }

    pub(crate) fn invalid_config(reason: impl Into<String>) -> Self {
        EngineError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// A cancellation outcome for the job `label`. Public because custom
    /// [`Workload`](crate::Workload)s that observe
    /// [`CancelToken`](crate::CancelToken) directly (instead of going
    /// through [`WorkloadCtx::ensure_active`](crate::WorkloadCtx::ensure_active))
    /// report cancellation with it.
    pub fn cancelled(label: &str) -> Self {
        EngineError::Cancelled {
            label: label.to_string(),
        }
    }

    /// A domain-specific workload failure attributed to the job `label`.
    pub fn workload(label: &str, message: impl Into<String>) -> Self {
        EngineError::Workload {
            label: label.to_string(),
            message: message.into(),
        }
    }

    /// The label of the job this error belongs to (`"engine-config"` for
    /// configuration errors, which precede any job).
    pub fn label(&self) -> &str {
        match self {
            EngineError::Compile { label, .. }
            | EngineError::WorkerPanic { label, .. }
            | EngineError::Workload { label, .. }
            | EngineError::Cancelled { label } => label,
            EngineError::InvalidConfig { .. } => "engine-config",
        }
    }

    /// Whether this error is a cancellation (useful for front-ends that
    /// report cancellation as a distinct, non-failure terminal state).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, EngineError::Cancelled { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile { label, source } => {
                write!(f, "job '{label}' failed to compile: {source}")
            }
            EngineError::WorkerPanic { label, message } => {
                write!(f, "worker panicked in job '{label}': {message}")
            }
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid engine configuration: {reason}")
            }
            EngineError::Cancelled { label } => {
                write!(f, "job '{label}' was cancelled")
            }
            EngineError::Workload { label, message } => {
                write!(f, "workload '{label}' failed: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Compile { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_the_job_label() {
        let e = EngineError::compile(
            "fig13/Na+/gc",
            CompileError::InvalidConfig {
                reason: "bad epsilon".into(),
            },
        );
        let shown = e.to_string();
        assert!(shown.contains("fig13/Na+/gc"));
        assert!(shown.contains("bad epsilon"));
        assert_eq!(e.label(), "fig13/Na+/gc");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn invalid_config_errors_name_the_offending_setting() {
        let e = EngineError::invalid_config("MARQSIM_THREADS=\"zero\" is not a positive integer");
        assert_eq!(e.label(), "engine-config");
        assert!(e.to_string().contains("invalid engine configuration"));
        assert!(e.to_string().contains("MARQSIM_THREADS"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn workload_errors_carry_label_and_message() {
        let e = EngineError::workload("fib/7", "negative input");
        assert_eq!(e.label(), "fib/7");
        assert!(e.to_string().contains("fib/7"));
        assert!(e.to_string().contains("negative input"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn panic_errors_carry_label_and_message() {
        let e = EngineError::panic("jobs/crash", "boom".to_string());
        assert_eq!(e.label(), "jobs/crash");
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
