//! A sharded, LRU-bounded concurrent map.
//!
//! [`ShardedLru`] is the storage layer of the
//! [`TransitionCache`](crate::TransitionCache): entries are spread over
//! `N` independently locked shards (selected by a caller-supplied 64-bit
//! hash, in practice the Hamiltonian fingerprint), so lookups for distinct
//! Hamiltonians never contend on one mutex. Each shard is bounded by an
//! optional entry cap with least-recently-used eviction, which turns the
//! unbounded "cache forever" behaviour of the original single-mutex cache
//! into a memory ceiling suitable for long-lived services.
//!
//! The map distinguishes a *bucket key* `B` (hashable, e.g. the 64-bit
//! fingerprint plus strategy key) from a *full key* `K` (equality-comparable,
//! e.g. the whole Hamiltonian). Entries sharing a bucket key — fingerprint
//! collisions — live side by side in one bucket and are told apart by full
//! `K` equality, so a collision degrades to an extra comparison, never a
//! wrong value. Eviction removes individual *entries* (the globally
//! least-recently-used one in the shard), not whole buckets, so the
//! surviving members of a collision bucket stay cached.
//!
//! Poisoned shard locks are recovered with
//! [`PoisonError::into_inner`]: values are immutable once inserted (the
//! cache stores `Arc`s) and every mutation below is a sequence of
//! already-valid states, so a panicking thread cannot leave a shard
//! half-updated in a way that matters.
//!
//! **Lock order.** All shard acquisition funnels through
//! [`ShardedLru::lock_shard`] (one shard) or
//! [`ShardedLru::lock_all_ascending`] (every shard, by ascending index —
//! the workspace convention for multi-shard operations, documented in
//! `docs/analysis.md`). Both register with the debug-build lock witness
//! (`marqsim_obs::lockcheck`), which panics on a descending same-family
//! acquisition, so any future code path that grabs two shards out of
//! order fails loudly under the stress tests instead of deadlocking in
//! production.

use std::collections::HashMap;
use std::hash::Hash;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, PoisonError};

use marqsim_obs::lockcheck;

/// Upper bound on the automatically selected shard count.
const MAX_AUTO_SHARDS: usize = 64;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    last_used: u64,
}

#[derive(Debug)]
struct Shard<B, K, V> {
    buckets: HashMap<B, Vec<Entry<K, V>>>,
    /// Total entries across all buckets of this shard.
    len: usize,
    /// Monotonic recency clock; bumped on every get/insert.
    tick: u64,
    evictions: u64,
}

impl<B, K, V> Default for Shard<B, K, V> {
    fn default() -> Self {
        Shard {
            buckets: HashMap::new(),
            len: 0,
            tick: 0,
            evictions: 0,
        }
    }
}

/// A concurrent map sharded by a caller-supplied hash, with an optional
/// per-shard LRU entry cap. See the module docs for the design.
#[derive(Debug)]
pub struct ShardedLru<B, K, V> {
    shards: Box<[Mutex<Shard<B, K, V>>]>,
    cap_per_shard: usize,
}

/// Rounds a requested shard count to the actual one: at least 1, at most
/// [`MAX_AUTO_SHARDS`], always a power of two (so shard selection is a mask).
/// `0` means "auto": the machine's available parallelism.
pub fn resolve_shard_count(requested: usize) -> usize {
    let base = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    base.clamp(1, MAX_AUTO_SHARDS).next_power_of_two()
}

impl<B, K, V> ShardedLru<B, K, V>
where
    B: Eq + Hash + Clone,
    K: PartialEq,
    V: Clone,
{
    /// Creates a map with `shards` shards (`0` = auto, see
    /// [`resolve_shard_count`]) and `cap_per_shard` entries per shard
    /// (`0` = unbounded).
    pub fn new(shards: usize, cap_per_shard: usize) -> Self {
        let count = resolve_shard_count(shards);
        ShardedLru {
            shards: (0..count).map(|_| Mutex::default()).collect(),
            cap_per_shard,
        }
    }

    fn shard(&self, hash: u64) -> ShardGuard<'_, B, K, V> {
        let index = (hash as usize) & (self.shards.len() - 1);
        self.lock_shard(index)
    }

    /// Locks the shard at `index` (all single-shard paths funnel here, so
    /// the lock witness sees every acquisition).
    fn lock_shard(&self, index: usize) -> ShardGuard<'_, B, K, V> {
        let witness = lockcheck::acquire_indexed("engine.cache.shard", index);
        let guard = self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        ShardGuard {
            guard,
            _witness: witness,
        }
    }

    /// Locks **every** shard in ascending index order and returns the
    /// guards (index order preserved). This is the only sanctioned way to
    /// hold more than one shard at a time: ascending acquisition cannot
    /// deadlock against another ascending acquirer, and the witness
    /// panics in debug builds if any path ever descends. Holding all
    /// shards gives multi-shard read-outs a consistent snapshot.
    fn lock_all_ascending(&self) -> Vec<ShardGuard<'_, B, K, V>> {
        (0..self.shards.len())
            .map(|index| self.lock_shard(index))
            .collect()
    }

    /// Looks up the entry with full key `key` in bucket `bucket`, bumping
    /// its recency. `hash` selects the shard and must be stable per bucket.
    pub fn get(&self, hash: u64, bucket: &B, key: &K) -> Option<V> {
        let mut shard = self.shard(hash);
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard
            .buckets
            .get_mut(bucket)?
            .iter_mut()
            .find(|entry| entry.key == *key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// Inserts (or refreshes) an entry, evicting least-recently-used entries
    /// from the shard while it exceeds the cap. An existing entry with an
    /// equal full key has its value replaced in place (racing builders
    /// produce identical values, so "second insert wins" is harmless).
    pub fn insert(&self, hash: u64, bucket: B, key: K, value: V) {
        let mut guard = self.shard(hash);
        let shard = &mut *guard;
        shard.tick += 1;
        let tick = shard.tick;
        let entries = shard.buckets.entry(bucket).or_default();
        if let Some(entry) = entries.iter_mut().find(|entry| entry.key == key) {
            entry.value = value;
            entry.last_used = tick;
            return;
        }
        entries.push(Entry {
            key,
            value,
            last_used: tick,
        });
        shard.len += 1;
        if self.cap_per_shard > 0 {
            while shard.len > self.cap_per_shard {
                evict_lru(shard);
            }
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entry cap per shard (`0` = unbounded).
    pub fn cap_per_shard(&self) -> usize {
        self.cap_per_shard
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shard_lens().iter().sum()
    }

    /// Returns `true` if no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry count of each shard, in shard order. Holds all shards
    /// (ascending) so the counts are a consistent snapshot — a concurrent
    /// insert cannot be double-counted or missed while the vector is
    /// assembled.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.lock_all_ascending()
            .iter()
            .map(|shard| shard.len)
            .collect()
    }

    /// Total LRU evictions across all shards since creation (or the last
    /// [`clear`](Self::clear)); a consistent all-shards snapshot like
    /// [`shard_lens`](Self::shard_lens).
    pub fn evictions(&self) -> u64 {
        self.lock_all_ascending()
            .iter()
            .map(|shard| shard.evictions)
            .sum()
    }

    /// Drops every entry and resets the eviction counters. Holding all
    /// shards makes the clear atomic: no reader can observe some shards
    /// cleared and others not.
    pub fn clear(&self) {
        for shard in self.lock_all_ascending().iter_mut() {
            **shard = Shard::default();
        }
    }
}

/// A locked shard: the mutex guard plus its lock-witness token, released
/// together. Dereferences to the shard.
struct ShardGuard<'a, B, K, V> {
    guard: MutexGuard<'a, Shard<B, K, V>>,
    _witness: lockcheck::Held,
}

impl<B, K, V> Deref for ShardGuard<'_, B, K, V> {
    type Target = Shard<B, K, V>;

    fn deref(&self) -> &Shard<B, K, V> {
        &self.guard
    }
}

impl<B, K, V> DerefMut for ShardGuard<'_, B, K, V> {
    fn deref_mut(&mut self) -> &mut Shard<B, K, V> {
        &mut self.guard
    }
}

/// Removes the least-recently-used entry of the shard. Scans every entry:
/// O(entries), which is fine because eviction only runs past the cap and
/// caps are small compared to lookup traffic.
fn evict_lru<B, K, V>(shard: &mut Shard<B, K, V>)
where
    B: Eq + Hash + Clone,
{
    let mut victim: Option<(B, usize, u64)> = None;
    for (bucket, entries) in &shard.buckets {
        for (index, entry) in entries.iter().enumerate() {
            if victim
                .as_ref()
                .is_none_or(|&(_, _, last_used)| entry.last_used < last_used)
            {
                victim = Some((bucket.clone(), index, entry.last_used));
            }
        }
    }
    let Some((bucket, index, _)) = victim else {
        return;
    };
    let entries = shard
        .buckets
        .get_mut(&bucket)
        .expect("victim bucket exists");
    entries.swap_remove(index);
    if entries.is_empty() {
        shard.buckets.remove(&bucket);
    }
    shard.len -= 1;
    shard.evictions += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shard, so the cap is exercised deterministically.
    fn single_shard(cap: usize) -> ShardedLru<u64, String, u64> {
        ShardedLru::new(1, cap)
    }

    #[test]
    fn shard_count_resolution() {
        assert_eq!(resolve_shard_count(1), 1);
        assert_eq!(resolve_shard_count(3), 4);
        assert_eq!(resolve_shard_count(64), 64);
        assert_eq!(resolve_shard_count(1000), 64, "capped");
        let auto = resolve_shard_count(0);
        assert!(auto.is_power_of_two() && (1..=64).contains(&auto));
    }

    #[test]
    fn get_returns_inserted_values_and_misses_cleanly() {
        let map = single_shard(0);
        map.insert(7, 7, "a".into(), 1);
        assert_eq!(map.get(7, &7, &"a".into()), Some(1));
        assert_eq!(map.get(7, &7, &"b".into()), None, "same bucket, other key");
        assert_eq!(map.get(9, &9, &"a".into()), None, "other bucket");
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn reinsert_replaces_in_place_without_growing() {
        let map = single_shard(0);
        map.insert(1, 1, "k".into(), 10);
        map.insert(1, 1, "k".into(), 20);
        assert_eq!(map.len(), 1, "no duplicate entries");
        assert_eq!(map.get(1, &1, &"k".into()), Some(20));
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let map = single_shard(2);
        map.insert(1, 1, "old".into(), 1);
        map.insert(2, 2, "young".into(), 2);
        // Touch "old" so "young" becomes the LRU entry.
        assert_eq!(map.get(1, &1, &"old".into()), Some(1));
        map.insert(3, 3, "new".into(), 3);
        assert_eq!(map.len(), 2);
        assert_eq!(map.evictions(), 1);
        assert_eq!(map.get(2, &2, &"young".into()), None, "LRU entry evicted");
        assert_eq!(map.get(1, &1, &"old".into()), Some(1));
        assert_eq!(map.get(3, &3, &"new".into()), Some(3));
    }

    #[test]
    fn collision_bucket_survives_eviction_of_one_member() {
        // Two entries share bucket key 42 (a fingerprint collision); a third
        // entry overflows the cap. Only the least-recently-used collision
        // member goes — the other survives inside the same bucket.
        let map = single_shard(2);
        map.insert(42, 42, "first".into(), 1);
        map.insert(42, 42, "second".into(), 2);
        map.insert(9, 9, "other".into(), 3);
        assert_eq!(map.len(), 2);
        assert_eq!(map.evictions(), 1);
        assert_eq!(map.get(42, &42, &"first".into()), None, "LRU member gone");
        assert_eq!(
            map.get(42, &42, &"second".into()),
            Some(2),
            "collision sibling survives its bucket-mate's eviction"
        );
        assert_eq!(map.get(9, &9, &"other".into()), Some(3));
    }

    #[test]
    fn shards_never_exceed_the_cap() {
        let map: ShardedLru<u64, u64, u64> = ShardedLru::new(4, 3);
        for i in 0..200u64 {
            map.insert(i, i, i, i);
            assert!(
                map.shard_lens().iter().all(|&len| len <= 3),
                "cap violated after insert {i}"
            );
        }
        assert_eq!(map.evictions(), 200 - map.len() as u64);
    }

    #[test]
    fn unbounded_multithread_hammer_loses_no_entries() {
        let map: ShardedLru<u64, u64, u64> = ShardedLru::new(8, 0);
        let threads = 8u64;
        let per_thread = 250u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = t * per_thread + i;
                        map.insert(key, key, key, key * 2);
                        // Interleave reads of this thread's own keys.
                        assert_eq!(map.get(key, &key, &key), Some(key * 2));
                    }
                });
            }
        });
        assert_eq!(map.len() as u64, threads * per_thread, "no lost entries");
        for key in 0..threads * per_thread {
            assert_eq!(map.get(key, &key, &key), Some(key * 2), "key {key}");
        }
        assert_eq!(map.evictions(), 0);
    }

    #[test]
    fn bounded_multithread_hammer_keeps_the_invariant() {
        let cap = 5usize;
        let map: ShardedLru<u64, u64, u64> = ShardedLru::new(4, cap);
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..300u64 {
                        let key = t * 1000 + i;
                        map.insert(key, key, key, key);
                    }
                });
            }
        });
        assert!(map.shard_lens().iter().all(|&len| len <= cap));
        assert!(map.evictions() > 0);
    }

    #[test]
    fn clear_empties_every_shard_and_resets_counters() {
        let map = single_shard(1);
        map.insert(1, 1, "a".into(), 1);
        map.insert(2, 2, "b".into(), 2);
        assert_eq!(map.evictions(), 1);
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.evictions(), 0);
        assert_eq!(map.get(2, &2, &"b".into()), None);
    }
}
