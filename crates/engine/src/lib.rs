//! # marqsim-engine — the parallel compilation engine
//!
//! MarQSim's evaluation loop recompiles the same Hamiltonian dozens of
//! times — once per `(strategy, ε, seed)` point — and every compile with a
//! gate-cancellation strategy re-solves the same min-cost-flow problem from
//! scratch. This crate turns that loop into a subsystem:
//!
//! * **[`ThreadPool`]** (`pool`) — a priority-aware thread-pool executor
//!   over `std::thread` with a shared injector queue (dynamic load
//!   balancing), three scheduling lanes ([`Priority`]), and per-task panic
//!   isolation.
//! * **[`TransitionCache`]** (`cache`) — validated HTT graphs keyed by a
//!   structural Hamiltonian fingerprint plus a strategy key, so the
//!   MCFP-derived `P_gc` — the dominant compile cost — is solved once and
//!   shared across all shots and sweep points of a benchmark (and, at the
//!   component level, across the GC and GC-RP strategies). The cache is
//!   sharded by fingerprint over per-mutex shards (`shard`), bounded by a
//!   per-shard LRU entry cap, and can persist solved `P_gc` matrices to
//!   disk in a versioned binary format with full-Hamiltonian
//!   re-verification on load. [`CacheStats`] exposes
//!   hit/miss/eviction/flow-solve/disk counters.
//! * **The open job API** (`workload`) — the [`Workload`] trait: anything
//!   with a label, a unit count, and a `run` body is submittable. A running
//!   workload is handed a [`WorkloadCtx`] (shared cache, pool fan-out,
//!   cancellation token, throttled progress sink); submission is
//!   parameterized by a typed [`SubmitOptions`] builder (priority,
//!   admission bound, progress cadence). Built-ins: [`CompileWorkload`],
//!   [`SweepWorkload`], [`PerturbAverageWorkload`] (parallel `P_rp`
//!   averaging), and [`BenchmarkSuiteWorkload`] (multi-Hamiltonian ×
//!   multi-strategy sweep grids).
//! * **Asynchronous submission** (`job`) — [`Engine::submit`] returns a
//!   [`JobHandle`] carrying an engine-unique [`JobId`], cooperative
//!   cancellation ([`CancelToken`]), a live progress snapshot, and blocking
//!   ([`JobHandle::collect`]) or non-blocking ([`JobHandle::try_collect`])
//!   outcome collection. This is the layer the `marqsim-serve` TCP
//!   front-end multiplexes client connections onto.
//!
//! The closed `EngineJob` / `CompileBatch` enum API that predated the
//! `Workload` trait was deprecated for one release and has been removed;
//! `docs/engine.md` in the repository root keeps the migration guide.
//!
//! # Job model
//!
//! Built-in compile/sweep workloads run on a two-phase batch machine: the
//! engine first resolves one HTT graph per job (through the cache, builds
//! running concurrently on the pool), then expands every job into
//! *point-level tasks* — one task per compile request, one per
//! `(ε, repetition)` sweep point — on a single work queue. Tasks from
//! different jobs interleave, so many small sweeps load-balance exactly as
//! well as one large one. Custom workloads get the same pool through
//! [`WorkloadCtx::map`].
//!
//! # Determinism
//!
//! Parallel execution is bit-identical to serial execution. Two mechanisms
//! guarantee this:
//!
//! 1. **Deterministic per-job seed streams.** A task's RNG seed comes from
//!    its position in the request (`experiment::point_seed` — the same
//!    formula the serial driver uses), never from scheduling order.
//! 2. **Pure tasks, indexed reassembly.** Each task's output is a pure
//!    function of its request, and outputs are reassembled by index, not by
//!    completion order.
//!
//! Consequently `Engine::run_sweep` with any thread count (including via
//! the `MARQSIM_THREADS` override) returns byte-identical `SweepResult`
//! data to `marqsim_core::experiment::run_sweep`, and neither caching nor
//! scheduling priority can change results — only latency.
//!
//! # Environment
//!
//! [`Engine::from_env`] reads five variables; unset or empty means "use
//! the default", and any unparsable value is a hard
//! [`EngineError::InvalidConfig`] naming the offending setting — never a
//! silent fallback.
//!
//! * `MARQSIM_THREADS=N` — worker count (positive integer); unset means
//!   all available cores.
//! * `MARQSIM_CACHE=on|off` (also `1/0`, `true/false`, `yes/no`) —
//!   enable/disable transition-matrix caching.
//! * `MARQSIM_CACHE_CAP=N` — LRU entry cap per cache shard
//!   (`0` = unbounded; default [`cache::DEFAULT_CACHE_CAP`]).
//! * `MARQSIM_CACHE_DIR=PATH` — persist solved `P_gc` matrices under
//!   `PATH` and reload them in later processes.
//! * `MARQSIM_FLOW_SOLVER=ssp|network_simplex` — default min-cost-flow
//!   backend ([`SolverKind`]); per-job override via
//!   [`SubmitOptions::with_flow_solver`].
//!
//! # Example
//!
//! ```
//! use marqsim_engine::{Engine, EngineConfig, SweepRequest, SweepWorkload};
//! use marqsim_core::experiment::{run_sweep, SweepConfig};
//! use marqsim_core::TransitionStrategy;
//! use marqsim_pauli::Hamiltonian;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ham = Hamiltonian::parse("0.9 ZZZZ + 0.7 XXII + 0.5 IYYI + 0.3 IIZZ")?;
//! let config = SweepConfig::quick(0.5);
//! let strategy = TransitionStrategy::marqsim_gc();
//!
//! let engine = Engine::new(EngineConfig::default().with_threads(4));
//! let workload = SweepWorkload::new(SweepRequest::new(
//!     "example",
//!     ham.clone(),
//!     strategy.clone(),
//!     config.clone(),
//! ));
//! let parallel = engine.run_workload(&workload)?.into_swept();
//! let serial = run_sweep(&ham, &strategy, &config)?;
//! for (p, s) in parallel.points.iter().zip(&serial.points) {
//!     assert_eq!(p.seed, s.seed);
//!     assert_eq!(p.stats, s.stats);
//! }
//! # Ok(())
//! # }
//! ```

mod engine;
mod error;
mod persist;

pub mod cache;
pub mod job;
pub mod pool;
pub mod shard;
pub mod workload;

pub use cache::{
    hamiltonian_fingerprint, CacheConfig, CacheKey, CacheStats, StrategyKey, TransitionCache,
};
pub use engine::{CompileOutcome, CompileRequest, Engine, EngineConfig, Progress, SweepRequest};
pub use error::EngineError;
pub use job::{CancelToken, JobControl, JobHandle, JobId};
/// Re-export of the min-cost-flow backend selector, so engine/serve callers
/// pick a backend without a direct `marqsim-flow` dependency.
pub use marqsim_core::SolverKind;
pub use pool::{Priority, ThreadPool};
pub use shard::ShardedLru;
pub use workload::{
    BenchmarkSuiteResult, BenchmarkSuiteWorkload, CompileWorkload, PerturbAverageResult,
    PerturbAverageWorkload, ProgressCadence, SubmitOptions, SuiteCase, SuiteCaseResult,
    SweepWorkload, Workload, WorkloadCtx, WorkloadOutput,
};

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_core::experiment::{run_sweep, SweepConfig};
    use marqsim_core::perturb::{perturbed_matrix_sample, PerturbationConfig};
    use marqsim_core::{CompilerConfig, TransitionStrategy};
    use marqsim_markov::combine::combine;
    use marqsim_pauli::Hamiltonian;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    fn ham() -> Hamiltonian {
        Hamiltonian::parse(
            "0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY + 0.3 IZIZ + 0.2 YYII",
        )
        .unwrap()
    }

    fn sweep_workload(
        label: &str,
        strategy: TransitionStrategy,
        config: SweepConfig,
    ) -> SweepWorkload {
        SweepWorkload::new(SweepRequest::new(label, ham(), strategy, config))
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let config = SweepConfig {
            time: 0.5,
            epsilons: vec![0.1, 0.05],
            repeats: 4,
            base_seed: 9,
            evaluate_fidelity: false,
        };
        for strategy in [
            TransitionStrategy::QDrift,
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
        ] {
            let serial = run_sweep(&ham(), &strategy, &config).unwrap();
            for threads in [1, 4] {
                let engine = Engine::new(EngineConfig::default().with_threads(threads));
                let parallel = engine.run_sweep(&ham(), &strategy, &config).unwrap();
                assert_eq!(parallel.label, serial.label);
                assert_eq!(parallel.points.len(), serial.points.len());
                for (p, s) in parallel.points.iter().zip(&serial.points) {
                    assert_eq!(p.seed, s.seed, "{strategy:?} @ {threads} threads");
                    assert_eq!(p.epsilon.to_bits(), s.epsilon.to_bits());
                    assert_eq!(p.num_samples, s.num_samples);
                    assert_eq!(p.stats, s.stats);
                    assert_eq!(
                        p.fidelity.map(f64::to_bits),
                        s.fidelity.map(f64::to_bits),
                        "fidelity must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_points_hit_the_transition_cache() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let config = SweepConfig::quick(0.5);
        let strategy = TransitionStrategy::marqsim_gc();
        engine.run_sweep(&ham(), &strategy, &config).unwrap();
        let first = engine.cache().stats();
        assert_eq!(first.misses, 1, "one graph build for the whole sweep");

        // A second identical sweep is answered entirely from the cache and
        // returns the identical transition matrix.
        let graph_a = engine.cache().get_or_build(&ham(), &strategy).unwrap();
        engine.run_sweep(&ham(), &strategy, &config).unwrap();
        let graph_b = engine.cache().get_or_build(&ham(), &strategy).unwrap();
        assert!(Arc::ptr_eq(&graph_a, &graph_b));
        let second = engine.cache().stats();
        assert_eq!(second.misses, 1, "no further builds");
        assert!(second.hits >= 3);
    }

    #[test]
    fn benchmark_suite_workload_matches_run_sweeps_and_shares_pgc() {
        let sweep_config = SweepConfig {
            time: 0.5,
            epsilons: vec![0.1],
            repeats: 2,
            base_seed: 4,
            evaluate_fidelity: false,
        };
        let strategies = [
            TransitionStrategy::QDrift,
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
        ];
        let reference = Engine::new(EngineConfig::default().with_threads(3));
        let expected = reference.run_sweeps(
            strategies
                .iter()
                .map(|s| SweepRequest::new(s.label(), ham(), s.clone(), sweep_config.clone()))
                .collect(),
        );

        let engine = Engine::new(EngineConfig::default().with_threads(3));
        let suite = BenchmarkSuiteWorkload::new("suite").grid(
            vec![("bench".to_string(), ham())],
            &strategies,
            |_| sweep_config.clone(),
        );
        assert_eq!(suite.len(), 3);
        assert_eq!(suite.total_units(), 3 * 2);
        let result: BenchmarkSuiteResult = engine
            .run_workload(&suite)
            .unwrap()
            .downcast()
            .expect("suite output");
        assert_eq!(result.cases.len(), 3);
        for (case, expected) in result.cases.iter().zip(&expected) {
            let expected = expected.as_ref().unwrap();
            assert_eq!(case.benchmark, "bench");
            assert_eq!(case.sweep.label, expected.label);
            for (a, b) in case.sweep.points.iter().zip(&expected.points) {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.stats, b.stats);
            }
        }
        assert!(result.sweep("bench", "Baseline").is_some());
        assert!(result.sweep("bench", "nope").is_none());

        // The GC and GC-RP cases shared one P_gc component, exactly like
        // the old closed-enum batch did.
        assert_eq!(engine.cache().stats().component_hits, 1);
    }

    #[test]
    fn duplicate_jobs_in_one_batch_build_exactly_once() {
        // Same (Hamiltonian, strategy) four times plus GC-RP once: dedup
        // happens before dispatch, so the counts are exact on any machine —
        // no racing same-key misses (and GC-RP reuses GC's P_gc because
        // same-fingerprint keys build sequentially in one pool task).
        let engine = Engine::new(EngineConfig::default().with_threads(4));
        let config = SweepConfig {
            time: 0.5,
            epsilons: vec![0.1],
            repeats: 1,
            base_seed: 2,
            evaluate_fidelity: false,
        };
        let mut requests: Vec<SweepRequest> = (0..4)
            .map(|i| {
                SweepRequest::new(
                    format!("dup/{i}"),
                    ham(),
                    TransitionStrategy::marqsim_gc(),
                    config.clone(),
                )
            })
            .collect();
        requests.push(SweepRequest::new(
            "dup/gc-rp",
            ham(),
            TransitionStrategy::marqsim_gc_rp(),
            config,
        ));
        let outcomes = engine.run_sweeps(requests);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        let stats = engine.cache().stats();
        assert_eq!(stats.misses, 2, "one build per distinct key");
        assert_eq!(stats.graphs, 2);
        assert_eq!(stats.components, 1);
        assert_eq!(stats.component_hits, 1, "GC-RP reused GC's P_gc");
    }

    #[test]
    fn progress_reports_reach_the_total() {
        let completions = Arc::new(AtomicUsize::new(0));
        let last_total = Arc::new(AtomicUsize::new(0));
        let (c, t) = (Arc::clone(&completions), Arc::clone(&last_total));
        let engine = Engine::new(EngineConfig::default().with_threads(2)).with_progress(
            move |progress: Progress| {
                c.fetch_add(1, Ordering::Relaxed);
                t.store(progress.total, Ordering::Relaxed);
                assert!(progress.completed <= progress.total);
            },
        );
        let config = SweepConfig {
            time: 0.5,
            epsilons: vec![0.1, 0.05],
            repeats: 3,
            base_seed: 1,
            evaluate_fidelity: false,
        };
        engine
            .run_sweep(&ham(), &TransitionStrategy::QDrift, &config)
            .unwrap();
        assert_eq!(completions.load(Ordering::Relaxed), 6);
        assert_eq!(last_total.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn compile_errors_carry_the_job_label() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let outcomes = engine.compile_many(vec![
            CompileRequest::new(
                "jobs/good",
                ham(),
                CompilerConfig::new(0.5, 0.1).with_seed(1),
            ),
            CompileRequest::new(
                "jobs/bad-epsilon",
                ham(),
                CompilerConfig::new(0.5, -1.0).with_seed(1),
            ),
        ]);
        assert!(outcomes[0].is_ok());
        let err = outcomes[1].as_ref().unwrap_err();
        assert_eq!(err.label(), "jobs/bad-epsilon");
        assert!(err.to_string().contains("precision"));
    }

    #[test]
    fn cache_disabled_engine_still_produces_identical_sweeps() {
        let config = SweepConfig::quick(0.5);
        let strategy = TransitionStrategy::marqsim_gc();
        let serial = run_sweep(&ham(), &strategy, &config).unwrap();
        let engine = Engine::new(EngineConfig::default().with_threads(4).with_cache(false));
        assert!(!engine.cache_enabled());
        let parallel = engine.run_sweep(&ham(), &strategy, &config).unwrap();
        for (p, s) in parallel.points.iter().zip(&serial.points) {
            assert_eq!(p.stats, s.stats);
        }
        assert_eq!(engine.cache().stats().misses, 0, "cache bypassed");
    }

    #[test]
    fn engine_map_runs_arbitrary_work() {
        let engine = Engine::new(EngineConfig::default().with_threads(3));
        let squares = engine.map("squares", (0..20u64).collect(), |_, x| x * x);
        for (i, result) in squares.iter().enumerate() {
            assert_eq!(*result.as_ref().unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn engine_map_panics_carry_the_label() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let out = engine.map("labelled", vec![1u32, 2, 3], |_, x| {
            if x == 2 {
                panic!("boom {x}");
            }
            x
        });
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.label(), "labelled");
        assert!(matches!(err, EngineError::WorkerPanic { .. }));
        assert!(err.to_string().contains("boom 2"));
    }

    #[test]
    fn env_config_parses_thread_override() {
        // Not a full env-var round trip (the suite runs multi-threaded and
        // env vars are process-global); parsing goes through
        // `EngineConfig::from_values`, the pure core of `from_env`.
        let config = EngineConfig::default();
        assert_eq!(config.threads, 0, "0 means auto");
        assert!(config.cache_enabled);
        assert_eq!(config.with_threads(3).threads, 3);

        let parsed = EngineConfig::from_values(Some("6"), None, None, None, None).unwrap();
        assert_eq!(parsed.threads, 6);
        assert!(parsed.cache_enabled);
    }

    #[test]
    fn invalid_thread_overrides_are_hard_errors() {
        // MARQSIM_THREADS=0 and garbage used to silently fall back to
        // "auto"; both must now produce a clear InvalidConfig.
        for bad in ["0", "garbage", "-2", "1.5"] {
            let err = EngineConfig::from_values(Some(bad), None, None, None, None).unwrap_err();
            assert!(
                matches!(err, EngineError::InvalidConfig { .. }),
                "MARQSIM_THREADS={bad}"
            );
            assert!(err.to_string().contains("MARQSIM_THREADS"), "{err}");
        }
    }

    #[test]
    fn invalid_cache_switches_and_caps_are_hard_errors() {
        let err = EngineConfig::from_values(None, Some("maybe"), None, None, None).unwrap_err();
        assert!(err.to_string().contains("MARQSIM_CACHE"));
        let err = EngineConfig::from_values(None, None, Some("lots"), None, None).unwrap_err();
        assert!(err.to_string().contains("MARQSIM_CACHE_CAP"));

        // Every documented spelling of the switch parses.
        for (value, enabled) in [
            ("1", true),
            ("on", true),
            ("TRUE", true),
            ("yes", true),
            ("0", false),
            ("Off", false),
            ("false", false),
            ("no", false),
        ] {
            let config = EngineConfig::from_values(None, Some(value), None, None, None).unwrap();
            assert_eq!(config.cache_enabled, enabled, "MARQSIM_CACHE={value}");
        }
    }

    #[test]
    fn cache_cap_and_dir_reach_the_cache_config() {
        let config =
            EngineConfig::from_values(None, None, Some("17"), Some("/tmp/marqsim-cc"), None)
                .unwrap();
        assert_eq!(config.cache.cap_per_shard, 17);
        assert_eq!(
            config.cache.persist_dir.as_deref(),
            Some(std::path::Path::new("/tmp/marqsim-cc"))
        );
        let engine = Engine::new(config.with_threads(1));
        assert_eq!(engine.cache().cap_per_shard(), 17);
        assert!(engine.cache().persist_dir().is_some());
    }

    #[test]
    fn bounded_cache_sweeps_stay_bit_identical_to_serial() {
        // A one-entry-per-shard cache evicts constantly across the three
        // strategies; results must still match the uncached serial driver
        // bit for bit, and the cap must hold throughout.
        let config = SweepConfig {
            time: 0.5,
            epsilons: vec![0.1, 0.05],
            repeats: 3,
            base_seed: 11,
            evaluate_fidelity: false,
        };
        let cache_config = CacheConfig::default().with_shards(1).with_cap(1);
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(4)
                .with_cache_config(cache_config),
        );
        for strategy in [
            TransitionStrategy::QDrift,
            TransitionStrategy::marqsim_gc(),
            TransitionStrategy::marqsim_gc_rp(),
        ] {
            let serial = run_sweep(&ham(), &strategy, &config).unwrap();
            let bounded = engine.run_sweep(&ham(), &strategy, &config).unwrap();
            for (p, s) in bounded.points.iter().zip(&serial.points) {
                assert_eq!(p.seed, s.seed, "{strategy:?}");
                assert_eq!(p.stats, s.stats, "{strategy:?}");
            }
            assert!(
                engine
                    .cache()
                    .graph_shard_lens()
                    .iter()
                    .all(|&len| len <= 1),
                "cap exceeded"
            );
        }
        assert!(engine.cache().stats().evictions >= 2);
    }

    #[test]
    fn submitted_jobs_carry_unique_ids_and_match_synchronous_results() {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
        let config = SweepConfig::quick(0.5);
        let strategy = TransitionStrategy::marqsim_gc();
        let serial = run_sweep(&ham(), &strategy, &config).unwrap();

        let handles: Vec<_> = (0..3)
            .map(|i| {
                engine.submit(sweep_workload(
                    &format!("async/{i}"),
                    strategy.clone(),
                    config.clone(),
                ))
            })
            .collect();
        let mut ids: Vec<u64> = handles.iter().map(|h| h.id().0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3, "ids are unique");
        assert_eq!(ids, vec![1, 2, 3], "ids increase in submission order");

        for handle in handles {
            assert_eq!(handle.label().len(), "async/0".len());
            let swept = handle.collect().unwrap().into_swept();
            for (p, s) in swept.points.iter().zip(&serial.points) {
                assert_eq!(p.seed, s.seed);
                assert_eq!(p.stats, s.stats);
            }
        }
        assert_eq!(engine.active_jobs(), 0, "all coordinators retired");
    }

    #[test]
    fn try_collect_is_none_while_running_and_some_exactly_once() {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
        let mut handle = engine.submit(sweep_workload(
            "async/poll",
            TransitionStrategy::QDrift,
            SweepConfig::quick(0.5),
        ));
        // Poll until the outcome arrives; every pre-completion poll is None.
        let outcome = loop {
            match handle.try_collect() {
                Some(outcome) => break outcome,
                None => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        };
        assert_eq!(outcome.unwrap().into_swept().points.len(), 6);
        assert!(
            handle.try_collect().is_none(),
            "the outcome is delivered exactly once"
        );
        assert!(handle.progress().completed == handle.progress().total);
    }

    #[test]
    fn cancelled_jobs_resolve_to_the_cancelled_error() {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(1)));
        // Cancel before submission is observable: the job is cancelled on
        // the handle immediately, so at the latest the first task boundary
        // (and at best the pre-run check) stops it.
        let handle = engine.submit(sweep_workload(
            "async/cancelled",
            TransitionStrategy::QDrift,
            SweepConfig {
                time: 0.5,
                epsilons: vec![0.1; 8],
                repeats: 8,
                base_seed: 1,
                evaluate_fidelity: false,
            },
        ));
        handle.cancel();
        let control = handle.control();
        match handle.collect() {
            Err(EngineError::Cancelled { label }) => assert_eq!(label, "async/cancelled"),
            // The race where the sweep finished before the flag was seen is
            // legal but essentially impossible for a 64-point sweep on one
            // worker; treat it as a failure so a broken cancellation path
            // cannot hide behind it.
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert!(control.is_cancelled());
        assert!(control.is_finished());
    }

    #[test]
    fn submitted_job_progress_reaches_the_callback() {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let handle = engine.submit_with_progress(
            sweep_workload(
                "async/progress",
                TransitionStrategy::QDrift,
                SweepConfig::quick(0.5),
            ),
            move |progress| {
                seen.fetch_add(1, Ordering::Relaxed);
                assert!(progress.completed <= progress.total);
            },
        );
        handle.collect().unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 6, "one call per point");
    }

    #[test]
    fn progress_cadence_coalesces_events_but_keeps_the_final_one() {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
        let events = Arc::new(Mutex::new(Vec::<Progress>::new()));
        let sink = Arc::clone(&events);
        let handle = engine.submit_with_options(
            sweep_workload(
                "async/throttled",
                TransitionStrategy::QDrift,
                SweepConfig {
                    time: 0.5,
                    epsilons: vec![0.1, 0.05],
                    repeats: 6,
                    base_seed: 1,
                    evaluate_fidelity: false,
                },
            ),
            SubmitOptions::new().with_progress_every(ProgressCadence::every(5)),
            move |progress| sink.lock().unwrap().push(progress),
        );
        handle.collect().unwrap();
        let events = events.lock().unwrap();
        assert!(
            events.len() <= 4,
            "12 points at cadence 5 must coalesce, got {} events",
            events.len()
        );
        let last = events.last().expect("final event always delivered");
        assert_eq!((last.completed, last.total), (12, 12));
        for pair in events.windows(2) {
            assert!(pair[0].completed < pair[1].completed, "monotone events");
        }
    }

    #[test]
    fn perturb_average_workload_is_deterministic_across_thread_counts() {
        let config = PerturbationConfig {
            samples: 6,
            seed: 13,
            ..Default::default()
        };
        // The reference: serial combination of the independently seeded
        // samples the workload is specified to average.
        let matrices: Vec<_> = (0..config.samples)
            .map(|i| perturbed_matrix_sample(&ham(), &config, i).unwrap())
            .collect();
        let weights = vec![1.0 / config.samples as f64; config.samples];
        let expected = combine(&matrices, &weights).unwrap();

        for threads in [1, 4] {
            let engine = Engine::new(EngineConfig::default().with_threads(threads));
            let result: PerturbAverageResult = engine
                .run_workload(&PerturbAverageWorkload::new("prp", ham(), config))
                .unwrap()
                .downcast()
                .expect("perturb output");
            assert_eq!(result.samples, config.samples);
            assert_eq!(result.matrix, expected, "{threads} threads");
            assert!(result
                .matrix
                .preserves_distribution(&ham().stationary_distribution(), 1e-8));
        }
    }

    #[test]
    fn perturb_average_workload_warm_starts_from_one_cold_solve() {
        let config = PerturbationConfig {
            samples: 6,
            seed: 13,
            ..Default::default()
        };
        // Simplex backend: sample 0 solves cold and exports its basis, the
        // other samples re-pivot — the stats window must read exactly
        // flow_solves = 1, warm_starts = samples - 1.
        let cache_config = CacheConfig::default().with_flow_solver(SolverKind::NetworkSimplex);
        let mut results = Vec::new();
        for threads in [1, 4] {
            let engine = Engine::new(
                EngineConfig::default()
                    .with_threads(threads)
                    .with_cache_config(cache_config.clone()),
            );
            let before = engine.cache().stats();
            let result: PerturbAverageResult = engine
                .run_workload(&PerturbAverageWorkload::new("prp-warm", ham(), config))
                .unwrap()
                .downcast()
                .expect("perturb output");
            let delta = engine.cache().stats().delta_since(&before);
            assert_eq!(delta.flow_solves, 1, "{threads} threads: one cold solve");
            assert_eq!(delta.flow_solves_simplex, 1, "{threads} threads");
            assert_eq!(
                delta.warm_starts,
                config.samples as u64 - 1,
                "{threads} threads: every other sample re-pivots"
            );
            assert!(result
                .matrix
                .preserves_distribution(&ham().stationary_distribution(), 1e-8));
            results.push(result.matrix);
        }
        assert_eq!(
            results[0], results[1],
            "warm averaging is deterministic across thread counts"
        );

        // The default backend has no warm support: every sample solves
        // cold and is attributed as a plain flow solve.
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let before = engine.cache().stats();
        engine
            .run_workload(&PerturbAverageWorkload::new("prp-cold", ham(), config))
            .unwrap();
        let delta = engine.cache().stats().delta_since(&before);
        assert_eq!(delta.flow_solves, config.samples as u64);
        assert_eq!(delta.warm_starts, 0);
    }

    #[test]
    fn high_priority_submissions_produce_identical_results() {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
        let config = SweepConfig::quick(0.5);
        let strategy = TransitionStrategy::marqsim_gc();
        let normal = engine.run_sweep(&ham(), &strategy, &config).unwrap();
        let handle = engine.submit_with_options(
            sweep_workload("async/high", strategy, config),
            SubmitOptions::new().with_priority(Priority::High),
            |_| {},
        );
        let high = handle.collect().unwrap().into_swept();
        for (a, b) in high.points.iter().zip(&normal.points) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn panicking_custom_workloads_resolve_as_worker_panics() {
        struct Bomb;
        impl Workload for Bomb {
            fn label(&self) -> &str {
                "bomb"
            }
            fn total_units(&self) -> usize {
                1
            }
            fn run(&self, _ctx: &WorkloadCtx<'_>) -> Result<WorkloadOutput, EngineError> {
                panic!("workload body exploded");
            }
        }
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(1)));
        let handle = engine.submit(Bomb);
        match handle.collect() {
            Err(EngineError::WorkerPanic { label, message }) => {
                assert_eq!(label, "bomb");
                assert!(message.contains("exploded"));
            }
            other => panic!("expected a worker panic, got {other:?}"),
        }
        assert_eq!(engine.active_jobs(), 0, "accounting survives the panic");
        // The engine still runs jobs afterwards.
        engine
            .run_sweep(
                &ham(),
                &TransitionStrategy::QDrift,
                &SweepConfig::quick(0.5),
            )
            .unwrap();
    }

    #[test]
    fn flow_solver_env_values_parse_strictly() {
        let parsed =
            EngineConfig::from_values(None, None, None, None, Some("network_simplex")).unwrap();
        assert_eq!(parsed.cache.flow_solver, SolverKind::NetworkSimplex);
        let parsed = EngineConfig::from_values(None, None, None, None, Some("ssp")).unwrap();
        assert_eq!(parsed.cache.flow_solver, SolverKind::SuccessiveShortestPath);
        let err = EngineConfig::from_values(None, None, None, None, Some("dijkstra")).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig { .. }));
        assert!(err.to_string().contains("MARQSIM_FLOW_SOLVER"), "{err}");
        assert!(err.to_string().contains("network_simplex"), "{err}");
    }

    #[test]
    fn flow_solver_selection_is_cached_and_attributed_per_backend() {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
        assert_eq!(engine.flow_solver(), SolverKind::Auto);
        let config = SweepConfig::quick(0.5);
        let strategy = TransitionStrategy::marqsim_gc();

        // `Auto` resolves the tiny test Hamiltonian to the SSP backend, so
        // the solve is attributed there.
        engine.run_sweep(&ham(), &strategy, &config).unwrap();
        let stats = engine.cache().stats();
        assert_eq!(stats.flow_solves_ssp, 1);
        assert_eq!(stats.flow_solves_simplex, 0);
        assert_eq!(stats.flow_solves, 1);

        // Per-job override: its own cache entry, attributed to the simplex
        // backend.
        let ns_options = SubmitOptions::new().with_flow_solver(SolverKind::NetworkSimplex);
        let handle = engine.submit_with_options(
            sweep_workload("async/ns", strategy.clone(), config.clone()),
            ns_options.clone(),
            |_| {},
        );
        let swept = handle.collect().unwrap().into_swept();
        assert_eq!(swept.points.len(), 6);
        let stats = engine.cache().stats();
        assert_eq!(stats.flow_solves_simplex, 1);
        assert_eq!(stats.flow_solves, 2);
        assert_eq!(stats.misses, 2, "the backend is part of the cache key");

        // Repeats under the same override are pure cache hits.
        let handle = engine.submit_with_options(
            sweep_workload("async/ns2", strategy, config),
            ns_options,
            |_| {},
        );
        handle.collect().unwrap();
        let stats = engine.cache().stats();
        assert_eq!(stats.flow_solves, 2, "no further solves");
        assert!(stats.hits >= 1);
    }

    #[test]
    fn network_simplex_engine_sweeps_are_deterministic_across_thread_counts() {
        // The alternate backend has the same determinism contract as the
        // default: the sweep outcome is a pure function of the request.
        let config = SweepConfig::quick(0.5);
        let strategy = TransitionStrategy::marqsim_gc();
        let cache_config = CacheConfig::default().with_flow_solver(SolverKind::NetworkSimplex);
        let reference = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_cache_config(cache_config.clone()),
        );
        assert_eq!(reference.flow_solver(), SolverKind::NetworkSimplex);
        let expected = reference.run_sweep(&ham(), &strategy, &config).unwrap();
        for threads in [2, 4] {
            let engine = Engine::new(
                EngineConfig::default()
                    .with_threads(threads)
                    .with_cache_config(cache_config.clone()),
            );
            let swept = engine.run_sweep(&ham(), &strategy, &config).unwrap();
            for (a, b) in swept.points.iter().zip(&expected.points) {
                assert_eq!(a.seed, b.seed, "{threads} threads");
                assert_eq!(a.stats, b.stats, "{threads} threads");
            }
            assert_eq!(engine.cache().stats().flow_solves_simplex, 1);
        }
    }

    #[test]
    fn cache_stats_delta_isolates_one_window() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let config = SweepConfig::quick(0.5);
        let strategy = TransitionStrategy::marqsim_gc();
        engine.run_sweep(&ham(), &strategy, &config).unwrap();
        let warm = engine.cache().stats();
        assert_eq!(warm.flow_solves, 1);

        engine.run_sweep(&ham(), &strategy, &config).unwrap();
        let delta = engine.cache().stats().delta_since(&warm);
        assert_eq!(delta.flow_solves, 0, "second sweep solved nothing");
        assert_eq!(delta.misses, 0);
        assert!(delta.hits >= 1);
        assert_eq!(delta.graphs, 1, "gauges keep the later snapshot");
    }

    #[test]
    fn persistent_engines_share_flow_solves_across_processes() {
        // Two engines with the same persistence directory model two
        // processes: the second performs zero min-cost-flow solves.
        let dir =
            std::env::temp_dir().join(format!("marqsim-engine-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || {
            EngineConfig::default()
                .with_threads(2)
                .with_cache_config(CacheConfig::default().with_persist_dir(&dir))
        };
        let sweep = SweepConfig::quick(0.5);
        let strategy = TransitionStrategy::marqsim_gc();

        let first = Engine::new(config());
        let warm = first.run_sweep(&ham(), &strategy, &sweep).unwrap();
        assert_eq!(first.cache().stats().flow_solves, 1);
        assert_eq!(first.cache().stats().disk_writes, 1);

        let second = Engine::new(config());
        let reloaded = second.run_sweep(&ham(), &strategy, &sweep).unwrap();
        let stats = second.cache().stats();
        assert_eq!(stats.flow_solves, 0, "P_gc loaded from disk");
        assert_eq!(stats.disk_hits, 1);
        for (a, b) in warm.points.iter().zip(&reloaded.points) {
            assert_eq!(a.stats, b.stats, "disk-loaded sweep is identical");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
