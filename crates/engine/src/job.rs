//! Asynchronous job submission: ids, cancellation, and handles.
//!
//! [`Engine::run_workload`](crate::Engine::run_workload) is synchronous — it
//! blocks the calling thread until the workload finishes. A service
//! front-end (the `marqsim-serve` crate) needs the opposite shape: submit a
//! job, get a handle back immediately, poll or stream its progress, cancel
//! it, and collect the outcome without blocking the connection's reader
//! thread. This module provides that layer:
//!
//! * [`JobId`] — a monotonically increasing per-engine job identifier.
//! * [`CancelToken`] — the cooperative cancellation flag a
//!   [`WorkloadCtx`](crate::WorkloadCtx) exposes to running workloads.
//! * [`JobControl`] — a cheaply cloneable view of a running job: id, label,
//!   cancellation, progress snapshot, finished flag. This is what a job
//!   registry stores.
//! * [`JobHandle`] — the submitter's end: everything `JobControl` offers
//!   plus collecting the outcome, either blocking ([`JobHandle::collect`])
//!   or non-blocking ([`JobHandle::try_collect`]).
//!
//! Cancellation is cooperative and unit-grained: built-in workloads check
//! the token before graph resolution and before every point-level task, and
//! custom workloads are expected to call
//! [`WorkloadCtx::ensure_active`](crate::WorkloadCtx::ensure_active) between
//! units of work, so a cancelled sweep stops after the currently running
//! points finish. A cancelled job's outcome is [`EngineError::Cancelled`];
//! units that already completed are discarded.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;

use crate::engine::Progress;
use crate::error::EngineError;
use crate::workload::WorkloadOutput;

/// Identifier of a submitted job, unique within its [`Engine`](crate::Engine)
/// (ids start at 1 and increase in submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A cooperative cancellation flag, cheaply cloneable and shared between a
/// job's [`JobControl`]/[`JobHandle`] (which request cancellation) and its
/// [`WorkloadCtx`](crate::WorkloadCtx) (which observes it between units of
/// work).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Irrevocable.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Shared state of one submitted job.
#[derive(Debug)]
pub(crate) struct JobState {
    pub(crate) id: JobId,
    pub(crate) label: String,
    pub(crate) cancel: CancelToken,
    completed: AtomicUsize,
    total: AtomicUsize,
    finished: AtomicBool,
}

impl JobState {
    pub(crate) fn new(id: JobId, label: String) -> Self {
        JobState {
            id,
            label,
            cancel: CancelToken::new(),
            completed: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            finished: AtomicBool::new(false),
        }
    }

    pub(crate) fn record_progress(&self, progress: Progress) {
        self.completed.store(progress.completed, Ordering::Relaxed);
        self.total.store(progress.total, Ordering::Relaxed);
    }

    pub(crate) fn mark_finished(&self) {
        self.finished.store(true, Ordering::Release);
    }
}

/// A cheaply cloneable control view of a submitted job — what a job
/// registry (e.g. a serve connection's table of in-flight jobs) stores to
/// answer `status` and `cancel` requests without owning the outcome channel.
#[derive(Debug, Clone)]
pub struct JobControl {
    state: Arc<JobState>,
}

impl JobControl {
    pub(crate) fn new(state: Arc<JobState>) -> Self {
        JobControl { state }
    }

    /// The job's id.
    pub fn id(&self) -> JobId {
        self.state.id
    }

    /// The job's label.
    pub fn label(&self) -> &str {
        &self.state.label
    }

    /// Requests cooperative cancellation (see the module docs for the
    /// granularity).
    pub fn cancel(&self) {
        self.state.cancel.cancel();
    }

    /// Whether cancellation has been requested (the job may still be
    /// draining already-running tasks).
    pub fn is_cancelled(&self) -> bool {
        self.state.cancel.is_cancelled()
    }

    /// Latest progress snapshot. `total` is 0 until the job's work has been
    /// expanded into units.
    pub fn progress(&self) -> Progress {
        Progress {
            completed: self.state.completed.load(Ordering::Relaxed),
            total: self.state.total.load(Ordering::Relaxed),
        }
    }

    /// Whether the job's outcome has been produced (successfully, with an
    /// error, or by cancellation).
    pub fn is_finished(&self) -> bool {
        self.state.finished.load(Ordering::Acquire)
    }
}

/// The submitter's handle to one asynchronously running job.
///
/// Obtained from [`Engine::submit`](crate::Engine::submit); the outcome is
/// produced exactly once and retrieved with [`collect`](Self::collect)
/// (blocking) or [`try_collect`](Self::try_collect) (non-blocking).
#[derive(Debug)]
pub struct JobHandle {
    control: JobControl,
    receiver: Receiver<Result<WorkloadOutput, EngineError>>,
    /// Set once the outcome has been pulled off the channel so repeated
    /// `try_collect` calls after completion stay cheap and well-defined.
    taken: bool,
}

impl JobHandle {
    pub(crate) fn new(
        control: JobControl,
        receiver: Receiver<Result<WorkloadOutput, EngineError>>,
    ) -> Self {
        JobHandle {
            control,
            receiver,
            taken: false,
        }
    }

    /// The job's id.
    pub fn id(&self) -> JobId {
        self.control.id()
    }

    /// The job's label.
    pub fn label(&self) -> &str {
        self.control.label()
    }

    /// A cloneable control view (for registries: status / cancel without
    /// the handle).
    pub fn control(&self) -> JobControl {
        self.control.clone()
    }

    /// Requests cooperative cancellation; the outcome then resolves to
    /// [`EngineError::Cancelled`] unless the job already finished.
    pub fn cancel(&self) {
        self.control.cancel();
    }

    /// Latest progress snapshot.
    pub fn progress(&self) -> Progress {
        self.control.progress()
    }

    /// Non-blocking collection: `None` while the job is still running,
    /// `Some(outcome)` exactly once when it finishes. After the outcome has
    /// been taken (by this method or a disconnect), further calls return
    /// `None`.
    pub fn try_collect(&mut self) -> Option<Result<WorkloadOutput, EngineError>> {
        if self.taken {
            return None;
        }
        match self.receiver.try_recv() {
            Ok(outcome) => {
                self.taken = true;
                Some(outcome)
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                // The coordinator thread died without reporting — surface it
                // as a worker panic rather than spinning forever.
                self.taken = true;
                Some(Err(EngineError::panic(
                    self.control.label(),
                    "job coordinator thread terminated without an outcome".to_string(),
                )))
            }
        }
    }

    /// Blocking collection: waits for the job to finish and returns its
    /// outcome.
    pub fn collect(mut self) -> Result<WorkloadOutput, EngineError> {
        if self.taken {
            return Err(EngineError::panic(
                self.control.label(),
                "job outcome already collected".to_string(),
            ));
        }
        self.taken = true;
        self.receiver.recv().unwrap_or_else(|_| {
            Err(EngineError::panic(
                self.control.label(),
                "job coordinator thread terminated without an outcome".to_string(),
            ))
        })
    }
}
