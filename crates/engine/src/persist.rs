//! Opt-in disk persistence for solved `P_gc` components.
//!
//! The gate-cancellation matrix `P_gc` — the min-cost-flow solve that
//! dominates compile time (§6.6, Table 2) — is a pure function of the
//! (dominant-term-split) Hamiltonian, and the Hamiltonian fingerprint is
//! stable across processes and platforms. Spilling each solved matrix to a
//! file keyed by that fingerprint therefore makes repeated benchmark runs
//! (CI, figure regeneration) nearly free: a fresh process loads the matrix
//! instead of re-solving the flow model.
//!
//! # File format (version 3)
//!
//! One file per component, named `pgc-<fingerprint:016x>.mqsc`, all fields
//! little-endian:
//!
//! ```text
//! magic   4  b"MQSC"
//! version u32
//! fingerprint u64          -- hamiltonian_fingerprint of the stored H
//! num_qubits  u64
//! num_terms   u64
//! terms       num_terms ×  (coefficient f64 bits as u64,
//!                           num_qubits × PauliOp byte)
//! states      u64          -- matrix dimension (== num_terms)
//! rows        states² × f64 bits as u64
//! basis_flag  u8           -- 0 = no spanning basis follows, 1 = it does
//! [when basis_flag == 1]
//! topology    u64          -- flow-network topology fingerprint
//! num_nodes   u64          -- real node count of the solved network
//! num_real    u64          -- real arc count
//! arc_states  (num_real + num_nodes) × u8
//! arc_flows   (num_real + num_nodes) × f64 bits as u64
//! ```
//!
//! The basis section (version 3) stores the network simplex's optimal
//! spanning basis next to the matrix, so a later process warm-starts the
//! `P_rp` perturbation solves from the loaded basis exactly as the
//! original process did; `ssp` components write `basis_flag = 0`.
//!
//! # Safety against collisions and stale files
//!
//! A load is only accepted if (1) magic, version, and fingerprint match,
//! (2) the *full Hamiltonian* stored in the file is equal — term by term,
//! exact coefficient bits — to the Hamiltonian being requested, and (3) the
//! matrix passes [`TransitionMatrix::new`]'s row-stochasticity validation.
//! A 64-bit fingerprint collision or a stale/corrupt file therefore
//! degrades to a cache miss (the component is re-solved), never a wrong
//! matrix. The final combined transition matrix is additionally re-checked
//! against both Theorem 4.1 conditions by the regular build path, loaded
//! component or not.
//!
//! Writes go through a process-unique temporary file followed by a rename,
//! so concurrent processes sharing one cache directory never observe a
//! torn file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use marqsim_core::{SolverKind, SpanningBasis};
use marqsim_markov::TransitionMatrix;
use marqsim_pauli::{Hamiltonian, PauliOp, PauliString, Term};

const MAGIC: &[u8; 4] = b"MQSC";
/// Format/provenance version. Bumped to 2 with the pluggable-solver
/// redesign: the default backend's non-negative fast path may select a
/// different (equally optimal) flow than the pre-redesign solver did on
/// degenerate instances, so files solved by the old code must not mix with
/// fresh solves — the version gate degrades them to a one-time re-solve.
/// Bumped to 3 with warm-start re-solves: version-3 files append the
/// solve's spanning basis (see the module docs), and version-2 files are
/// re-solved rather than loaded so a cached matrix is never paired with a
/// missing basis (which would make warm-started `P_rp` samples depend on
/// which process solved `P_gc`).
const VERSION: u32 = 3;

/// Path of the component file for a fingerprint inside `dir` (the default
/// backend's layout, unchanged since version 1 so existing cache
/// directories stay valid).
pub(crate) fn component_path(dir: &Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("pgc-{fingerprint:016x}.mqsc"))
}

/// Path of the component file for a fingerprint solved by `solver`.
/// Non-default backends get a backend-tagged file name: backends guarantee
/// equal optimal cost but may pick different optimal flows on degenerate
/// instances, so persisted components are never shared across backends.
pub(crate) fn component_path_for(dir: &Path, fingerprint: u64, solver: SolverKind) -> PathBuf {
    match solver {
        SolverKind::SuccessiveShortestPath => component_path(dir, fingerprint),
        other => dir.join(format!("pgc-{fingerprint:016x}.{}.mqsc", other.as_str())),
    }
}

/// Serializes `(ham, matrix, basis)` into the version-3 binary format.
fn encode(
    fingerprint: u64,
    ham: &Hamiltonian,
    matrix: &TransitionMatrix,
    basis: Option<&SpanningBasis>,
) -> Vec<u8> {
    let n = matrix.num_states();
    let mut out = Vec::with_capacity(4 + 4 + 8 * 3 + ham.num_terms() * 16 + n * n * 8 + 1);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(ham.num_qubits() as u64).to_le_bytes());
    out.extend_from_slice(&(ham.num_terms() as u64).to_le_bytes());
    for term in ham.terms() {
        out.extend_from_slice(&term.coefficient.to_bits().to_le_bytes());
        for op in term.string.ops() {
            out.push(*op as u8);
        }
    }
    out.extend_from_slice(&(n as u64).to_le_bytes());
    for row in matrix.rows() {
        for &p in row {
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
    match basis {
        Some(basis) => {
            out.push(1);
            out.extend_from_slice(&basis.topology().to_le_bytes());
            out.extend_from_slice(&(basis.num_nodes() as u64).to_le_bytes());
            out.extend_from_slice(&(basis.num_real_arcs() as u64).to_le_bytes());
            out.extend_from_slice(&basis.state_bytes());
            for &flow in basis.flows() {
                out.extend_from_slice(&flow.to_bits().to_le_bytes());
            }
        }
        None => out.push(0),
    }
    out
}

/// Writes the solved component for `fingerprint` to `dir`, creating the
/// directory if needed. Atomic against concurrent readers and writers
/// (temp file + rename).
///
/// # Errors
///
/// Propagates filesystem errors; the caller treats them as "persistence
/// unavailable", never as a compile failure.
pub(crate) fn save_component(
    dir: &Path,
    fingerprint: u64,
    solver: SolverKind,
    ham: &Hamiltonian,
    matrix: &TransitionMatrix,
    basis: Option<&SpanningBasis>,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let bytes = encode(fingerprint, ham, matrix, basis);
    // Unique per call, not just per process: concurrent misses on one key
    // may both solve and both save (see the cache docs), and they must not
    // interleave writes through a shared temp path.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!(
        "pgc-{fingerprint:016x}.tmp.{}.{seq}",
        std::process::id()
    ));
    fs::write(&tmp, &bytes)?;
    let result = fs::rename(&tmp, component_path_for(dir, fingerprint, solver));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Loads the component for `fingerprint` solved by `solver` from `dir`,
/// returning `None` — a plain cache miss — unless every validation
/// described in the module docs passes against `expected`. The second
/// element is the persisted spanning basis, when the solve exported one.
pub(crate) fn load_component(
    dir: &Path,
    fingerprint: u64,
    solver: SolverKind,
    expected: &Hamiltonian,
) -> Option<(TransitionMatrix, Option<SpanningBasis>)> {
    let bytes = fs::read(component_path_for(dir, fingerprint, solver)).ok()?;
    decode(&bytes, fingerprint, expected)
}

fn decode(
    bytes: &[u8],
    fingerprint: u64,
    expected: &Hamiltonian,
) -> Option<(TransitionMatrix, Option<SpanningBasis>)> {
    let mut cursor = Cursor { bytes, pos: 0 };
    if cursor.take(4)? != MAGIC {
        return None;
    }
    if cursor.u32()? != VERSION {
        return None;
    }
    if cursor.u64()? != fingerprint {
        return None;
    }
    let num_qubits = cursor.u64()? as usize;
    let num_terms = cursor.u64()? as usize;
    // The expected Hamiltonian is in hand, so pin the header to it before
    // allocating anything: a corrupt ~40-byte file must not be able to
    // request a multi-hundred-MB buffer.
    if num_qubits != expected.num_qubits() || num_terms != expected.num_terms() {
        return None;
    }
    let mut terms = Vec::with_capacity(num_terms);
    for _ in 0..num_terms {
        let coefficient = f64::from_bits(cursor.u64()?);
        let mut ops = Vec::with_capacity(num_qubits);
        for &byte in cursor.take(num_qubits)? {
            ops.push(PauliOp::from_bits(byte & 0b10 != 0, byte & 0b01 != 0));
            if byte > 0b11 {
                return None;
            }
        }
        terms.push(Term::new(coefficient, PauliString::from_ops(ops)));
    }
    let stored = Hamiltonian::new(terms).ok()?;
    if stored != *expected {
        // Fingerprint collision or stale file: fall back to solving.
        return None;
    }
    let n = cursor.u64()? as usize;
    if n != expected.num_terms() {
        return None;
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(f64::from_bits(cursor.u64()?));
        }
        rows.push(row);
    }
    let basis = match cursor.take(1)? {
        [0] => None,
        [1] => {
            let topology = cursor.u64()?;
            let num_nodes = cursor.u64()? as usize;
            let num_real = cursor.u64()? as usize;
            let total = num_real.checked_add(num_nodes)?;
            // `take` bounds `total` against the remaining bytes before any
            // allocation, mirroring the header guard above.
            let state_bytes = cursor.take(total)?;
            let mut flows = Vec::with_capacity(total);
            for _ in 0..total {
                flows.push(f64::from_bits(cursor.u64()?));
            }
            Some(SpanningBasis::from_raw(
                topology,
                num_nodes,
                num_real,
                state_bytes,
                flows,
            )?)
        }
        _ => return None,
    };
    if cursor.pos != bytes.len() {
        return None;
    }
    Some((TransitionMatrix::new(rows).ok()?, basis))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos.checked_add(len)?)?;
        self.pos += len;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::hamiltonian_fingerprint;
    use marqsim_core::gate_cancel::{
        gate_cancellation_matrix, gate_cancellation_matrix_with_basis,
    };

    fn ham() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("marqsim-persist-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_restores_the_exact_matrix() {
        let dir = temp_dir("roundtrip");
        let ham = ham();
        let fp = hamiltonian_fingerprint(&ham);
        let matrix = gate_cancellation_matrix(&ham).unwrap();
        save_component(&dir, fp, SolverKind::default(), &ham, &matrix, None).unwrap();
        let (loaded, basis) =
            load_component(&dir, fp, SolverKind::default(), &ham).expect("valid file loads");
        assert_eq!(loaded, matrix, "bit-identical rows");
        assert!(basis.is_none(), "no basis was saved");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trip_restores_the_spanning_basis() {
        let dir = temp_dir("basis-roundtrip");
        let ham = ham();
        let fp = hamiltonian_fingerprint(&ham);
        let (matrix, basis) =
            gate_cancellation_matrix_with_basis(&ham, SolverKind::NetworkSimplex).unwrap();
        let basis = basis.expect("network simplex exports its optimal basis");
        save_component(
            &dir,
            fp,
            SolverKind::NetworkSimplex,
            &ham,
            &matrix,
            Some(&basis),
        )
        .unwrap();
        let (loaded, loaded_basis) =
            load_component(&dir, fp, SolverKind::NetworkSimplex, &ham).expect("valid file loads");
        assert_eq!(loaded, matrix, "bit-identical rows");
        let loaded_basis = loaded_basis.expect("basis section round-trips");
        assert_eq!(loaded_basis.topology(), basis.topology());
        assert_eq!(loaded_basis.num_nodes(), basis.num_nodes());
        assert_eq!(loaded_basis.num_real_arcs(), basis.num_real_arcs());
        assert_eq!(loaded_basis.state_bytes(), basis.state_bytes());
        assert_eq!(loaded_basis.flows(), basis.flows());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn backends_persist_to_separate_files() {
        let dir = temp_dir("backend-namespacing");
        let ham = ham();
        let fp = hamiltonian_fingerprint(&ham);
        let matrix = gate_cancellation_matrix(&ham).unwrap();
        save_component(&dir, fp, SolverKind::NetworkSimplex, &ham, &matrix, None).unwrap();
        assert_ne!(
            component_path_for(&dir, fp, SolverKind::NetworkSimplex),
            component_path(&dir, fp),
            "non-default backend gets a tagged file"
        );
        assert!(
            load_component(&dir, fp, SolverKind::default(), &ham).is_none(),
            "a simplex-solved component must not answer a default-backend load"
        );
        assert_eq!(
            load_component(&dir, fp, SolverKind::NetworkSimplex, &ham)
                .unwrap()
                .0,
            matrix
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_miss() {
        let dir = temp_dir("missing");
        assert!(load_component(&dir, 1234, SolverKind::default(), &ham()).is_none());
    }

    #[test]
    fn corrupt_or_truncated_files_are_rejected() {
        let dir = temp_dir("corrupt");
        let ham = ham();
        let fp = hamiltonian_fingerprint(&ham);
        let matrix = gate_cancellation_matrix(&ham).unwrap();
        save_component(&dir, fp, SolverKind::default(), &ham, &matrix, None).unwrap();
        let path = component_path(&dir, fp);
        let good = fs::read(&path).unwrap();

        // Truncation anywhere must be rejected, as must trailing garbage
        // and a flipped magic byte.
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(
            load_component(&dir, fp, SolverKind::default(), &ham).is_none(),
            "truncated"
        );
        let mut extended = good.clone();
        extended.push(0);
        fs::write(&path, &extended).unwrap();
        assert!(
            load_component(&dir, fp, SolverKind::default(), &ham).is_none(),
            "trailing bytes"
        );
        let mut flipped = good.clone();
        flipped[0] ^= 0xff;
        fs::write(&path, &flipped).unwrap();
        assert!(
            load_component(&dir, fp, SolverKind::default(), &ham).is_none(),
            "bad magic"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_stale_file_for_another_hamiltonian_is_rejected() {
        // Simulate a 64-bit fingerprint collision / stale rename: the file
        // sits at the fingerprint path of `other`, but stores `ham`. The
        // full-equality check must refuse it.
        let dir = temp_dir("stale");
        let ham = ham();
        let other = Hamiltonian::parse("0.6 XZII + 0.4 ZYII + 0.3 XXII + 0.1 IIZZ").unwrap();
        let matrix = gate_cancellation_matrix(&ham).unwrap();
        let other_fp = hamiltonian_fingerprint(&other);
        save_component(&dir, other_fp, SolverKind::default(), &ham, &matrix, None).unwrap();
        assert!(
            load_component(&dir, other_fp, SolverKind::default(), &other).is_none(),
            "stored Hamiltonian differs from the requested one"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_matrix_rows_fail_stochasticity_validation() {
        let dir = temp_dir("tampered");
        let ham = ham();
        let fp = hamiltonian_fingerprint(&ham);
        let matrix = gate_cancellation_matrix(&ham).unwrap();
        save_component(&dir, fp, SolverKind::default(), &ham, &matrix, None).unwrap();
        let path = component_path(&dir, fp);
        let mut bytes = fs::read(&path).unwrap();
        // Overwrite the last matrix entry with 7.0 (the matrix rows end one
        // byte before EOF — the trailing byte is the basis flag): the row no
        // longer sums to one, so TransitionMatrix::new must reject the load.
        let last = bytes.len() - 9;
        bytes[last..last + 8].copy_from_slice(&7.0f64.to_bits().to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(load_component(&dir, fp, SolverKind::default(), &ham).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_format_versions_are_rejected() {
        // A version-2 file has no basis section; accepting it would pair a
        // cached matrix with a missing basis and make warm starts depend on
        // which process solved the component. The version gate must degrade
        // it to a re-solve.
        let dir = temp_dir("old-version");
        let ham = ham();
        let fp = hamiltonian_fingerprint(&ham);
        let matrix = gate_cancellation_matrix(&ham).unwrap();
        save_component(&dir, fp, SolverKind::default(), &ham, &matrix, None).unwrap();
        let path = component_path(&dir, fp);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(load_component(&dir, fp, SolverKind::default(), &ham).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_basis_sections_are_rejected() {
        let dir = temp_dir("corrupt-basis");
        let ham = ham();
        let fp = hamiltonian_fingerprint(&ham);
        let (matrix, basis) =
            gate_cancellation_matrix_with_basis(&ham, SolverKind::NetworkSimplex).unwrap();
        let basis = basis.unwrap();
        save_component(
            &dir,
            fp,
            SolverKind::NetworkSimplex,
            &ham,
            &matrix,
            Some(&basis),
        )
        .unwrap();
        let path = component_path_for(&dir, fp, SolverKind::NetworkSimplex);
        let good = fs::read(&path).unwrap();

        // An invalid basis flag must be rejected outright…
        let total = basis.num_real_arcs() + basis.num_nodes();
        let flag_pos = good.len() - (8 * 3 + total + 8 * total) - 1;
        assert_eq!(good[flag_pos], 1, "flag offset arithmetic");
        let mut bad_flag = good.clone();
        bad_flag[flag_pos] = 9;
        fs::write(&path, &bad_flag).unwrap();
        assert!(load_component(&dir, fp, SolverKind::NetworkSimplex, &ham).is_none());

        // …and so must an invalid arc-state byte inside the section.
        let mut bad_state = good.clone();
        bad_state[flag_pos + 1 + 8 * 3] = 0xff;
        fs::write(&path, &bad_state).unwrap();
        assert!(load_component(&dir, fp, SolverKind::NetworkSimplex, &ham).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
