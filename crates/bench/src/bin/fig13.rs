//! Regenerates **Fig. 13**: the overall improvement of MarQSim-GC and
//! MarQSim-GC-RP over the qDRIFT baseline across all Table 1 benchmarks.
//!
//! For every benchmark the three configurations are swept over the target
//! precisions of §6.1 and the CNOT / single-qubit / total gate reductions at
//! matched precision are reported (the paper reports 25.1% average CNOT
//! reduction for MarQSim-GC and 27.0% for MarQSim-GC-RP).
//!
//! Run with `cargo run -p marqsim-bench --release --bin fig13 [--full]`.

use marqsim_bench::{engine, header, pct, report_cache_stats, run_scale};
use marqsim_core::experiment::{reduction_summary, SweepConfig};
use marqsim_core::TransitionStrategy;
use marqsim_engine::{BenchmarkSuiteResult, BenchmarkSuiteWorkload};
use marqsim_hamlib::suite::table1_suite;

fn main() {
    let scale = run_scale();
    let engine = engine();
    header("Fig. 13: Overall improvement over all benchmarks");

    let mut gc_cnot_reductions = Vec::new();
    let mut gcrp_cnot_reductions = Vec::new();
    let mut gcrp_total_reductions = Vec::new();

    // One BenchmarkSuiteWorkload — the whole figure is a benchmarks ×
    // strategies grid: every (benchmark, strategy) sweep load-balances over
    // the same work queue, and each benchmark's P_gc min-cost-flow solve
    // happens once for both MarQSim strategies.
    let suite = table1_suite(scale.suite);
    let strategies = [
        TransitionStrategy::QDrift,
        TransitionStrategy::marqsim_gc(),
        TransitionStrategy::marqsim_gc_rp(),
    ];
    let workload = BenchmarkSuiteWorkload::new("fig13").grid(
        suite
            .iter()
            .map(|bench| (bench.name.to_string(), bench.hamiltonian.clone())),
        &strategies,
        |name| {
            let bench = suite.iter().find(|b| b.name == name).expect("known name");
            SweepConfig {
                time: bench.time,
                epsilons: vec![0.1, 0.05, 0.033],
                repeats: scale.repeats,
                base_seed: 42,
                evaluate_fidelity: scale.fidelity && bench.qubits <= 8,
            }
        },
    );
    let result: BenchmarkSuiteResult = engine
        .run_workload(&workload)
        .expect("fig13 suite")
        .downcast()
        .expect("suite output");
    let mut sweeps = result.cases.into_iter().map(|case| case.sweep);

    println!(
        "{:<16} {:>9} | {:>12} {:>12} | {:>12} {:>12} {:>14}",
        "Benchmark", "Strings", "GC CNOT", "GC total", "GC-RP CNOT", "GC-RP total", "sigma change"
    );

    for bench in &suite {
        let baseline = sweeps.next().expect("baseline sweep");
        let gc = sweeps.next().expect("gc sweep");
        let gcrp = sweeps.next().expect("gc-rp sweep");

        let gc_summary = reduction_summary(&baseline, &gc);
        let gcrp_summary = reduction_summary(&baseline, &gcrp);

        // Standard deviation of the fidelity: GC-RP vs GC (the paper reports
        // an 8.3% average reduction).
        let sigma = |sweep: &marqsim_core::experiment::SweepResult| -> f64 {
            let clusters = sweep.cluster_summaries();
            let sigmas: Vec<f64> = clusters.iter().map(|c| c.std_fidelity).collect();
            if sigmas.is_empty() {
                0.0
            } else {
                sigmas.iter().sum::<f64>() / sigmas.len() as f64
            }
        };
        let sigma_gc = sigma(&gc);
        let sigma_gcrp = sigma(&gcrp);
        let sigma_change = if sigma_gc > 0.0 {
            pct(1.0 - sigma_gcrp / sigma_gc).to_string()
        } else {
            "n/a".to_string()
        };

        println!(
            "{:<16} {:>9} | {:>12} {:>12} | {:>12} {:>12} {:>14}",
            bench.name,
            bench.pauli_strings,
            pct(gc_summary.cnot_reduction),
            pct(gc_summary.total_reduction),
            pct(gcrp_summary.cnot_reduction),
            pct(gcrp_summary.total_reduction),
            sigma_change
        );

        gc_cnot_reductions.push(gc_summary.cnot_reduction);
        gcrp_cnot_reductions.push(gcrp_summary.cnot_reduction);
        gcrp_total_reductions.push(gcrp_summary.total_reduction);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "average CNOT reduction: MarQSim-GC {}  MarQSim-GC-RP {}  (paper: 25.1% / 27.0%)",
        pct(mean(&gc_cnot_reductions)),
        pct(mean(&gcrp_cnot_reductions))
    );
    println!(
        "average total-gate reduction (GC-RP): {}  (paper: 17.0%)",
        pct(mean(&gcrp_total_reductions))
    );
    report_cache_stats(engine.cache().stats());
}
