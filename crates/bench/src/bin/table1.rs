//! Regenerates **Table 1**: the benchmark inventory (name, qubit count,
//! Pauli-string count, evolution time), plus the coefficient 1-norm λ that
//! determines the qDRIFT sample count.
//!
//! Benchmark construction (molecular / SYK Hamiltonian generation) is
//! fanned out over the engine's worker pool, one job per table row.
//!
//! Run with `cargo run -p marqsim-bench --bin table1 [--full]`.

use marqsim_bench::{engine, header, report_cache_stats, run_scale};
use marqsim_hamlib::suite::{benchmark_by_name, table1_names};

fn main() {
    let scale = run_scale();
    let engine = engine();
    header("Table 1: Benchmark Information");
    println!(
        "{:<16} {:>7} {:>14} {:>10} {:>10}",
        "Benchmark", "Qubit#", "Pauli String#", "Time", "lambda"
    );
    let suite_scale = scale.suite;
    let rows = engine.map("table1", table1_names(), move |_, name| {
        let bench = benchmark_by_name(name, suite_scale).expect("benchmark exists");
        let lambda = bench.hamiltonian.lambda();
        (bench, lambda)
    });
    for row in rows {
        let (bench, lambda) = row.expect("benchmark construction");
        println!(
            "{:<16} {:>7} {:>14} {:>10.4} {:>10.3}",
            bench.name, bench.qubits, bench.pauli_strings, bench.time, lambda
        );
    }
    println!();
    println!(
        "(scale: {:?}; pass --full for the paper-sized suite)",
        scale.suite
    );
    report_cache_stats(engine.cache().stats());
}
