//! Regenerates **Table 1**: the benchmark inventory (name, qubit count,
//! Pauli-string count, evolution time), plus the coefficient 1-norm λ that
//! determines the qDRIFT sample count.
//!
//! Run with `cargo run -p marqsim-bench --bin table1 [--full]`.

use marqsim_bench::{header, run_scale};
use marqsim_hamlib::suite::table1_suite;

fn main() {
    let scale = run_scale();
    header("Table 1: Benchmark Information");
    println!(
        "{:<16} {:>7} {:>14} {:>10} {:>10}",
        "Benchmark", "Qubit#", "Pauli String#", "Time", "lambda"
    );
    for bench in table1_suite(scale.suite) {
        println!(
            "{:<16} {:>7} {:>14} {:>10.4} {:>10.3}",
            bench.name,
            bench.qubits,
            bench.pauli_strings,
            bench.time,
            bench.hamiltonian.lambda()
        );
    }
    println!();
    println!(
        "(scale: {:?}; pass --full for the paper-sized suite)",
        scale.suite
    );
}
