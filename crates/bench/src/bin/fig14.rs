//! Regenerates **Fig. 14**: the effect of varying the `(P_qd, P_gc)`
//! combination ratio on the CNOT reduction.
//!
//! The paper reports average CNOT reductions of 10.3% / 23.8% / 28.0% for the
//! ratios `0.8/0.2`, `0.4/0.6`, `0.2/0.8` over eight benchmarks, with an
//! accuracy loss creeping in as the `P_gc` share grows.
//!
//! Run with `cargo run -p marqsim-bench --release --bin fig14 [--full]`.

use marqsim_bench::{engine, header, pct, report_cache_stats, run_scale};
use marqsim_core::experiment::{reduction_summary, SweepConfig};
use marqsim_core::TransitionStrategy;
use marqsim_engine::{BenchmarkSuiteResult, BenchmarkSuiteWorkload};
use marqsim_hamlib::suite::{benchmark_by_name, table1_suite};

fn main() {
    let scale = run_scale();
    let engine = engine();
    header("Fig. 14: Varying the (Pqd, Pgc) combination ratio");

    // The eight benchmarks used by the paper for this figure.
    let names = [
        "Na+",
        "Cl-",
        "Ar",
        "OH-",
        "HF",
        "LiH",
        "SYK model 1",
        "SYK model 2",
    ];
    let ratios = [0.8, 0.4, 0.2];

    println!(
        "{:<16} | {:>16} {:>16} {:>16}",
        "Benchmark", "0.8Pqd+0.2Pgc", "0.4Pqd+0.6Pgc", "0.2Pqd+0.8Pgc"
    );

    let mut per_ratio_totals = vec![Vec::new(); ratios.len()];
    let suite = table1_suite(scale.suite);
    let benches: Vec<_> = names
        .iter()
        .map(|name| {
            benchmark_by_name(name, scale.suite)
                .or_else(|| suite.iter().find(|b| &b.name == name).cloned())
                .expect("benchmark exists")
        })
        .collect();

    // Baseline plus the three ratio chains per benchmark, as one
    // BenchmarkSuiteWorkload: the four strategies of one benchmark share a
    // single P_gc solve.
    let mut workload = BenchmarkSuiteWorkload::new("fig14");
    for bench in &benches {
        let config = SweepConfig {
            time: bench.time,
            epsilons: vec![0.1, 0.05],
            repeats: scale.repeats,
            base_seed: 7,
            evaluate_fidelity: false,
        };
        for strategy in
            std::iter::once(TransitionStrategy::QDrift).chain(ratios.iter().map(|&qd_weight| {
                TransitionStrategy::GateCancellation {
                    qdrift_weight: qd_weight,
                }
            }))
        {
            workload = workload.case(
                bench.name,
                bench.hamiltonian.clone(),
                strategy,
                config.clone(),
            );
        }
    }
    let result: BenchmarkSuiteResult = engine
        .run_workload(&workload)
        .expect("fig14 suite")
        .downcast()
        .expect("suite output");
    let mut sweeps = result.cases.into_iter().map(|case| case.sweep);

    for bench in &benches {
        let baseline = sweeps.next().expect("baseline sweep");
        let mut row = format!("{:<16} |", bench.name);
        for (i, _) in ratios.iter().enumerate() {
            let sweep = sweeps.next().expect("ratio sweep");
            let summary = reduction_summary(&baseline, &sweep);
            per_ratio_totals[i].push(summary.cnot_reduction);
            row.push_str(&format!(" {:>16}", pct(summary.cnot_reduction)));
        }
        println!("{row}");
    }

    println!();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "average CNOT reduction: {} / {} / {}  (paper: 10.3% / 23.8% / 28.0%)",
        pct(mean(&per_ratio_totals[0])),
        pct(mean(&per_ratio_totals[1])),
        pct(mean(&per_ratio_totals[2]))
    );
    println!("(a larger Pgc share gives more cancellation but slower Markov-chain mixing; see fig15 for the spectra)");
    report_cache_stats(engine.cache().stats());
}
