//! Regenerates **Fig. 12**: the data-processing pipeline of §6.1 — raw
//! `(algorithmic accuracy, CNOT count)` scatter for one benchmark, the
//! per-precision cluster averages, and the `y = a + exp(bx + c)` fit used to
//! compare configurations at matched accuracy.
//!
//! Run with `cargo run -p marqsim-bench --release --bin fig12 [--full]`.
//! The reduced scale uses the BeH2 (froze)-class benchmark shrunk to 8
//! qubits so the exact unitary is cheap to evaluate.

use marqsim_bench::{engine, header, report_cache_stats, run_scale};
use marqsim_core::experiment::{SweepConfig, DEFAULT_EPSILONS};
use marqsim_core::fitting::fit_exponential;
use marqsim_core::TransitionStrategy;
use marqsim_engine::{SweepRequest, SweepWorkload};
use marqsim_hamlib::suite::{benchmark_by_name, SuiteScale};

fn main() {
    let scale = run_scale();
    let engine = engine();
    // Fidelity evaluation is exponential in qubit count; Fig. 12 always runs
    // on the reduced benchmark unless --full is given explicitly.
    let suite_scale = if scale.fidelity {
        SuiteScale::Reduced
    } else {
        scale.suite
    };
    let bench = benchmark_by_name("BeH2 (froze)", suite_scale).expect("benchmark exists");

    header("Fig. 12(a): raw data (accuracy, CNOT count)");
    let config = SweepConfig {
        time: bench.time,
        epsilons: DEFAULT_EPSILONS.to_vec(),
        repeats: scale.repeats,
        base_seed: 12,
        evaluate_fidelity: true,
    };
    let sweep = engine
        .run_workload(&SweepWorkload::new(SweepRequest::new(
            "fig12",
            bench.hamiltonian.clone(),
            TransitionStrategy::marqsim_gc(),
            config,
        )))
        .expect("sweep")
        .into_swept();

    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "epsilon", "N samples", "CNOT", "accuracy"
    );
    for p in &sweep.points {
        println!(
            "{:>10.4} {:>12} {:>12} {:>10.5}",
            p.epsilon,
            p.num_samples,
            p.stats.cnot,
            p.fidelity.unwrap_or(f64::NAN)
        );
    }

    header("Fig. 12(b): cluster averages and exponential fit");
    let clusters = sweep.cluster_summaries();
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "epsilon", "mean CNOT", "std CNOT", "mean acc", "std acc"
    );
    for c in &clusters {
        println!(
            "{:>10.4} {:>12.1} {:>12.1} {:>12.5} {:>12.5}",
            c.epsilon, c.mean_cnot, c.std_cnot, c.mean_fidelity, c.std_fidelity
        );
    }

    let curve: Vec<(f64, f64)> = clusters
        .iter()
        .filter(|c| c.mean_fidelity > 0.0)
        .map(|c| (c.mean_fidelity, c.mean_cnot))
        .collect();
    match fit_exponential(&curve) {
        Some(fit) => {
            println!();
            println!(
                "fit: CNOT(accuracy) = {:.2} + exp({:.2} * accuracy + {:.2})   (rss = {:.2})",
                fit.a, fit.b, fit.c, fit.rss
            );
            for target in [0.992, 0.993, 0.994] {
                println!(
                    "  interpolated CNOT at accuracy {target}: {:.1}",
                    fit.evaluate(target)
                );
            }
        }
        None => println!("not enough accuracy data for the exponential fit"),
    }
    report_cache_stats(engine.cache().stats());
}
