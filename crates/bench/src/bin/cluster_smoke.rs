//! Smoke-tests router mode end to end: a three-node fleet behind one
//! router, driven through the ordinary [`Client`].
//!
//! Three phases, each printing a grep-able marker for CI:
//!
//! 1. **Bit-identity** — distinct-Hamiltonian sweeps submitted through the
//!    router must match the same sweeps run on an in-process single-node
//!    engine bit for bit (routing must never change results, only where
//!    they are computed).
//! 2. **Warm shards** — rerunning the identical sweeps must report
//!    `flow_solves=0` on every job *and* leave every fleet node's
//!    min-cost-flow latency histogram untouched (the fleet-wide proof that
//!    the fingerprint-sharded caches, not re-solves, served the rerun).
//! 3. **Node loss** — with a flood of jobs in flight, the busiest node is
//!    killed; its jobs must fail fast with the structured `node_lost` kind
//!    naming it, the rest of the flood must complete on the survivors, and
//!    a fresh post-kill submit must still be served.
//!
//! Two modes:
//!
//! * `cargo run -p marqsim-bench --bin cluster_smoke` — spawns three
//!   in-process node servers plus a router on OS-assigned ports (phase 3
//!   stops the victim via its server handle).
//! * `... -- --connect ROUTER --pids NODE=PID,...` — drives an external
//!   fleet of `marqsim-served` daemons (what the CI cluster-smoke job
//!   does); phase 3 SIGKILLs the victim's PID. `MARQSIM_SERVE_TOKEN` is
//!   honored in both modes.

use std::collections::HashMap;
use std::sync::Arc;

use marqsim_core::experiment::SweepConfig;
use marqsim_core::TransitionStrategy;
use marqsim_engine::{Engine, EngineConfig};
use marqsim_pauli::Hamiltonian;
use marqsim_serve::{
    Client, ClientError, Outcome, Role, Router, RouterHandle, Server, ServerHandle,
};

const FLEET: usize = 3;
const COLD_SWEEPS: usize = 6;
const FLOOD_JOBS: usize = 24;

fn fail(message: impl std::fmt::Display) -> ! {
    marqsim_obs::error!("cluster-smoke", "FAILED: {message}");
    std::process::exit(1);
}

/// A small Hamiltonian whose coefficients vary with `index`, so every
/// sweep carries a distinct fingerprint and the ring spreads the set
/// across the fleet.
fn smoke_ham(index: usize) -> Hamiltonian {
    let shift = 0.01 * index as f64;
    Hamiltonian::parse(&format!(
        "{:.3} ZZIZ + {:.3} XXII + {:.3} IYYI + {:.3} IIZZ + {:.3} XYXY",
        0.9 - shift,
        0.8 + shift,
        0.7 - shift,
        0.6 + shift,
        0.5 + shift,
    ))
    .unwrap_or_else(|e| fail(format!("smoke Hamiltonian {index}: {e}")))
}

/// A bigger Hamiltonian for the node-loss flood: with fidelity evaluation
/// on, each sweep simulates 2^8 amplitudes per sample and runs for most of
/// a second — long enough that killing the busiest node reliably catches
/// jobs in flight.
fn flood_ham(index: usize) -> Hamiltonian {
    let shift = 0.001 * index as f64;
    Hamiltonian::parse(&format!(
        "{:.3} ZZIZIIZZ + {:.3} XXIIXXII + {:.3} IYYIIYYI + {:.3} IIZZIIZZ + \
         {:.3} XYXYIIII + {:.3} IIIIZZXX + {:.3} ZIIZIXXI + {:.3} IZZIYIIY",
        0.9 - shift,
        0.8 + shift,
        0.7 - shift,
        0.6 + shift,
        0.5 + shift,
        0.4 - shift,
        0.3 + shift,
        0.2 + shift,
    ))
    .unwrap_or_else(|e| fail(format!("flood Hamiltonian {index}: {e}")))
}

fn sweep_config() -> SweepConfig {
    SweepConfig {
        time: 0.4,
        epsilons: vec![0.1, 0.05],
        repeats: 2,
        base_seed: 11,
        evaluate_fidelity: false,
    }
}

/// Total sample count across the per-backend `flow_solve` latency
/// histograms in a Prometheus-style exposition.
fn flow_solve_histogram_count(exposition: &str) -> u64 {
    exposition
        .lines()
        .filter(|line| line.starts_with("marqsim_flow_solve_seconds_count"))
        .filter_map(|line| line.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

/// The fleet under test: either external daemons (addressed by `--connect`
/// / `--pids`) or an in-process trio plus router.
struct Fleet {
    router_addr: String,
    token: Option<String>,
    /// External mode: node address -> PID to SIGKILL.
    pids: HashMap<String, u32>,
    /// In-process mode: the node handles (by address) and the router.
    local_nodes: Vec<(String, ServerHandle)>,
    local_router: Option<RouterHandle>,
}

impl Fleet {
    fn connect(&self) -> Client {
        Client::connect_with_token(&*self.router_addr, self.token.as_deref())
            .unwrap_or_else(|e| fail(format!("connect to router {}: {e}", self.router_addr)))
    }

    fn connect_node(&self, node: &str) -> Client {
        Client::connect_with_token(node, self.token.as_deref())
            .unwrap_or_else(|e| fail(format!("connect to node {node}: {e}")))
    }

    /// Abruptly stops `node` — SIGKILL in external mode, a handle shutdown
    /// in-process. Either way the router sees the connection drop.
    fn kill_node(&mut self, node: &str) {
        if let Some(index) = self.local_nodes.iter().position(|(addr, _)| addr == node) {
            let (_, handle) = self.local_nodes.remove(index);
            handle.shutdown();
            return;
        }
        let pid = self
            .pids
            .get(node)
            .copied()
            .unwrap_or_else(|| fail(format!("no PID known for node {node} (pass --pids)")));
        let status = std::process::Command::new("kill")
            .args(["-9", &pid.to_string()])
            .status()
            .unwrap_or_else(|e| fail(format!("spawn kill: {e}")));
        if !status.success() {
            fail(format!("kill -9 {pid} exited with {status}"));
        }
    }

    fn shutdown(self) {
        for (_, handle) in self.local_nodes {
            handle.shutdown();
        }
        if let Some(router) = self.local_router {
            router.shutdown();
        }
    }
}

fn parse_pids(spec: &str) -> HashMap<String, u32> {
    spec.split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            let (addr, pid) = part
                .split_once('=')
                .unwrap_or_else(|| fail(format!("--pids entry '{part}' is not NODE=PID")));
            let pid = pid
                .trim()
                .parse::<u32>()
                .unwrap_or_else(|e| fail(format!("--pids entry '{part}': {e}")));
            (addr.trim().to_string(), pid)
        })
        .collect()
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| fail(format!("{flag} requires a value")))
    })
}

fn spawn_local_fleet(token: Option<&str>) -> Fleet {
    let mut local_nodes = Vec::new();
    let mut names = Vec::new();
    for _ in 0..FLEET {
        let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
        let mut server = Server::bind("127.0.0.1:0", engine)
            .unwrap_or_else(|e| fail(format!("bind node: {e}")))
            .with_max_in_flight(256);
        if let Some(token) = token {
            server = server.with_token(token);
        }
        let handle = server
            .spawn()
            .unwrap_or_else(|e| fail(format!("spawn node: {e}")));
        names.push(handle.addr().to_string());
        local_nodes.push((handle.addr().to_string(), handle));
    }
    let mut router =
        Router::bind("127.0.0.1:0", &names).unwrap_or_else(|e| fail(format!("bind router: {e}")));
    if let Some(token) = token {
        router = router.with_token(token);
    }
    let router = router
        .spawn()
        .unwrap_or_else(|e| fail(format!("spawn router: {e}")));
    Fleet {
        router_addr: router.addr().to_string(),
        token: token.map(str::to_string),
        pids: HashMap::new(),
        local_nodes,
        local_router: Some(router),
    }
}

/// Polls the router's aggregated stats until every fleet node reports real
/// numbers (a connected node has threads > 0; a placeholder is zeroed).
fn wait_for_fleet(client: &mut Client, n: usize) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(15);
    loop {
        let stats = client
            .stats()
            .unwrap_or_else(|e| fail(format!("stats: {e}")));
        if stats
            .per_node
            .iter()
            .filter(|p| p.stats.threads > 0)
            .count()
            >= n
        {
            return;
        }
        if std::time::Instant::now() >= deadline {
            fail(format!("fleet never became ready: {:?}", stats.per_node));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let token = marqsim_bench::serve_token();

    let mut fleet = match arg_value(&args, "--connect") {
        Some(router_addr) => {
            println!("[cluster-smoke] connecting to external router at {router_addr}");
            Fleet {
                router_addr,
                token,
                pids: arg_value(&args, "--pids")
                    .as_deref()
                    .map(parse_pids)
                    .unwrap_or_default(),
                local_nodes: Vec::new(),
                local_router: None,
            }
        }
        None => {
            let fleet = spawn_local_fleet(token.as_deref().or(Some("cluster-smoke-secret")));
            println!(
                "[cluster-smoke] spawned {FLEET} in-process nodes and a router at {}",
                fleet.router_addr
            );
            fleet
        }
    };

    let mut client = fleet.connect();
    if client.role() != Role::Router {
        fail(format!(
            "{} is not a router (role {:?})",
            fleet.router_addr,
            client.role()
        ));
    }
    let nodes: Vec<String> = client.nodes().to_vec();
    if nodes.len() != FLEET {
        fail(format!(
            "router fronts {} nodes, expected {FLEET}",
            nodes.len()
        ));
    }
    wait_for_fleet(&mut client, FLEET);
    println!(
        "[cluster-smoke] fleet ready: router fronts {}",
        nodes.join(", ")
    );

    // Phase 1 — routed sweeps are bit-identical to a single-node engine.
    let strategy = TransitionStrategy::marqsim_gc();
    let config = sweep_config();
    let reference_engine = Engine::new(EngineConfig::default().with_threads(2));
    let mut jobs = Vec::new();
    for index in 0..COLD_SWEEPS {
        let job = client
            .submit_sweep(
                &format!("cluster/cold/{index}"),
                &smoke_ham(index),
                &strategy,
                &config,
            )
            .unwrap_or_else(|e| fail(format!("cold submit {index}: {e}")));
        jobs.push(job);
    }
    let mut cold_points = Vec::new();
    for (index, job) in jobs.iter().enumerate() {
        let result = client
            .wait(*job)
            .unwrap_or_else(|e| fail(format!("cold wait {index}: {e}")));
        let sweep = match result.outcome {
            Outcome::Sweep(sweep) => sweep,
            other => fail(format!("cold job {index}: unexpected outcome {other:?}")),
        };
        let reference = reference_engine
            .run_sweep(&smoke_ham(index), &strategy, &config)
            .unwrap_or_else(|e| fail(format!("in-process sweep {index}: {e}")));
        if sweep.points.len() != reference.points.len() {
            fail(format!("cold job {index}: point count mismatch"));
        }
        for (point, (remote, local)) in sweep.points.iter().zip(&reference.points).enumerate() {
            if remote.seed != local.seed
                || remote.epsilon.to_bits() != local.epsilon.to_bits()
                || remote.num_samples != local.num_samples
                || remote.stats != local.stats
                || remote.fidelity.map(f64::to_bits) != local.fidelity.map(f64::to_bits)
            {
                fail(format!(
                    "cold job {index} point {point} differs between routed and single-node runs"
                ));
            }
        }
        cold_points.push(sweep.points);
    }
    println!("[cluster-smoke] {COLD_SWEEPS} routed sweeps bit-identical to the single-node engine");

    // Phase 2 — the identical rerun is served warm, fleet-wide: zero flow
    // solves reported per job, and every node's solve histogram unchanged.
    let before: Vec<u64> = nodes
        .iter()
        .map(|node| {
            let report = fleet
                .connect_node(node)
                .metrics()
                .unwrap_or_else(|e| fail(format!("metrics from {node}: {e}")));
            flow_solve_histogram_count(&report.exposition)
        })
        .collect();
    for index in 0..COLD_SWEEPS {
        let job = client
            .submit_sweep(
                &format!("cluster/warm/{index}"),
                &smoke_ham(index),
                &strategy,
                &config,
            )
            .unwrap_or_else(|e| fail(format!("warm submit {index}: {e}")));
        let result = client
            .wait(job)
            .unwrap_or_else(|e| fail(format!("warm wait {index}: {e}")));
        if result.cache_delta.flow_solves != 0 {
            fail(format!(
                "warm job {index} performed {} flow solves (expected 0)",
                result.cache_delta.flow_solves
            ));
        }
        match result.outcome {
            Outcome::Sweep(sweep) => {
                if sweep.points != cold_points[index] {
                    fail(format!("warm job {index} differs from its cold run"));
                }
            }
            other => fail(format!("warm job {index}: unexpected outcome {other:?}")),
        }
    }
    for (node, before) in nodes.iter().zip(&before) {
        let report = fleet
            .connect_node(node)
            .metrics()
            .unwrap_or_else(|e| fail(format!("warm metrics from {node}: {e}")));
        let after = flow_solve_histogram_count(&report.exposition);
        if after != *before {
            fail(format!(
                "node {node} solved {} flows during the warm rerun",
                after - before
            ));
        }
        println!(
            "[cluster-smoke] node {node} warm rerun flow_solves=0 (histogram count {after} unchanged)"
        );
    }
    println!("[cluster-smoke] warm fleet rerun solved zero flows fleet-wide");

    // Phase 3 — kill the busiest node under a flood of distinct jobs.
    let flood_config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.05],
        repeats: 8,
        base_seed: 23,
        evaluate_fidelity: true,
    };
    let mut flood = fleet.connect();
    let mut flood_jobs = Vec::new();
    for index in 0..FLOOD_JOBS {
        let job = flood
            .submit_sweep(
                &format!("cluster/flood/{index}"),
                &flood_ham(index),
                &strategy,
                &flood_config,
            )
            .unwrap_or_else(|e| fail(format!("flood submit {index}: {e}")));
        flood_jobs.push(job);
    }

    // Pick the node with the deepest backlog and kill it mid-flood.
    let victim = {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let stats = client
                .stats()
                .unwrap_or_else(|e| fail(format!("stats: {e}")));
            let busiest = stats
                .per_node
                .iter()
                .max_by_key(|p| p.stats.active_jobs + p.stats.queue_depth);
            if let Some(part) = busiest {
                if part.stats.active_jobs + part.stats.queue_depth >= 1 {
                    break part.node.clone();
                }
            }
            if std::time::Instant::now() >= deadline {
                fail("no node ever reported flood backlog");
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    };
    println!("[cluster-smoke] killing busiest node {victim} mid-flood");
    fleet.kill_node(&victim);

    let mut completed = 0usize;
    let mut lost = 0usize;
    for (index, job) in flood_jobs.iter().enumerate() {
        match flood.wait(*job) {
            Ok(_) => completed += 1,
            Err(ClientError::JobFailed { kind, message }) if kind == "node_lost" => {
                if !message.contains(&victim) {
                    fail(format!(
                        "node_lost message does not name {victim}: {message}"
                    ));
                }
                lost += 1;
            }
            Err(error) => fail(format!("flood job {index}: {error}")),
        }
    }
    if lost == 0 {
        fail("no flood job failed with node_lost — the kill raced the flood; raise FLOOD_JOBS");
    }
    if completed == 0 {
        fail("no flood job survived on the remaining nodes");
    }
    println!(
        "[cluster-smoke] node loss surfaced: {lost} jobs failed with node_lost, {completed} completed on survivors"
    );

    // The remaining shards must keep serving: a fresh connection, a fresh
    // job, and fleet stats that show the victim as unhealthy.
    let mut after = fleet.connect();
    let post_job = after
        .submit_sweep("cluster/post-kill", &smoke_ham(500), &strategy, &config)
        .unwrap_or_else(|e| fail(format!("post-kill submit: {e}")));
    match after.wait(post_job) {
        Ok(result) => match result.outcome {
            Outcome::Sweep(_) => {}
            other => fail(format!("post-kill job: unexpected outcome {other:?}")),
        },
        Err(error) => fail(format!("post-kill job failed: {error}")),
    }
    let stats = after
        .stats()
        .unwrap_or_else(|e| fail(format!("post-kill stats: {e}")));
    let victim_part = stats
        .per_node
        .iter()
        .find(|p| p.node == victim)
        .unwrap_or_else(|| fail(format!("post-kill stats no longer list {victim}")));
    if victim_part.health == "up" {
        fail(format!("killed node {victim} still reports healthy"));
    }
    println!(
        "[cluster-smoke] router kept serving after the kill ({} now {})",
        victim, victim_part.health
    );

    fleet.shutdown();
    println!("[cluster-smoke] PASS");
}
