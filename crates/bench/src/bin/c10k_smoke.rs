//! Full-scale C10K smoke test of the event-loop server: parks thousands of
//! idle connections on the single reactor thread, drives dozens of active
//! sweeps through the crowd, and requires
//!
//! * every active sweep to come back **bit-identical** to the same sweep
//!   run through an in-process engine,
//! * every sampled idle connection to still answer a `stats` round trip
//!   after the storm, and
//! * resident memory (`VmRSS`) to stay under a per-connection budget —
//!   idle connections must cost a slab slot and an epoll registration,
//!   not a thread stack.
//!
//! Run with `cargo run -p marqsim-bench --release --bin c10k_smoke`. Needs
//! `ulimit -n` comfortably above the idle-crowd size (the CI `c10k-smoke`
//! job sets 8192); `MARQSIM_C10K_IDLE=<n>` overrides the default 2000. Exits
//! non-zero on any failure; prints `[c10k-smoke]` lines for the CI grep.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use marqsim_bench::c10k_idle_conns;
use marqsim_core::experiment::SweepConfig;
use marqsim_core::TransitionStrategy;
use marqsim_engine::{Engine, EngineConfig};
use marqsim_pauli::Hamiltonian;
use marqsim_serve::{Client, Outcome, Server};

const ACTIVE_CONNS: usize = 50;
/// RSS budget: base process footprint plus a generous 64 KiB for every
/// parked connection (actual per-connection state is a few hundred bytes
/// of slab entry plus kernel socket buffers).
const RSS_BASE_KIB: u64 = 512 * 1024;
const RSS_PER_CONN_KIB: u64 = 64;

fn ham() -> Hamiltonian {
    Hamiltonian::parse("0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ")
        .expect("valid smoke Hamiltonian")
}

fn fail(message: impl std::fmt::Display) -> ! {
    marqsim_obs::error!("c10k-smoke", "FAILED: {message}");
    std::process::exit(1);
}

/// Current resident set size in KiB from `/proc/self/status`, or `None`
/// off Linux (the RSS gate is then skipped, not failed).
fn rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Opens a connection, consumes the `hello` line, and parks the socket.
fn idle_conn(addr: SocketAddr, index: usize) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| fail(format!("idle connect {index} (check ulimit -n): {e}")));
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream);
    let mut hello = String::new();
    reader
        .read_line(&mut hello)
        .unwrap_or_else(|e| fail(format!("idle hello {index}: {e}")));
    if !hello.contains("\"event\":\"hello\"") {
        fail(format!("idle connection {index} greeted with {hello:?}"));
    }
    reader
}

fn main() {
    let idle_conns = c10k_idle_conns();

    let strategy = TransitionStrategy::marqsim_gc();
    let config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.1, 0.05],
        repeats: 3,
        base_seed: 41,
        evaluate_fidelity: false,
    };

    // In-process reference for the bit-identity check.
    let reference_engine = Engine::new(EngineConfig::default().with_threads(2));
    let reference = reference_engine
        .run_sweep(&ham(), &strategy, &config)
        .unwrap_or_else(|e| fail(format!("in-process sweep: {e}")));

    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
    let server = Server::bind("127.0.0.1:0", engine)
        .unwrap_or_else(|e| fail(format!("bind: {e}")))
        .spawn()
        .unwrap_or_else(|e| fail(format!("spawn: {e}")));
    let addr = server.addr();
    println!("[c10k-smoke] spawned in-process server at {addr}");

    // Park the idle crowd.
    let connect_start = Instant::now();
    let idle: Vec<BufReader<TcpStream>> = (0..idle_conns).map(|i| idle_conn(addr, i)).collect();
    println!(
        "[c10k-smoke] parked {} idle connections in {:.2}s",
        idle.len(),
        connect_start.elapsed().as_secs_f64()
    );

    // Drive active sweeps through the crowd: all submitted before any
    // result is awaited, so they overlap on the reactor.
    let storm_start = Instant::now();
    let mut active: Vec<(Client, u64)> = (0..ACTIVE_CONNS)
        .map(|i| {
            let mut client =
                Client::connect(addr).unwrap_or_else(|e| fail(format!("active connect {i}: {e}")));
            let job = client
                .submit_sweep(&format!("c10k/active-{i}"), &ham(), &strategy, &config)
                .unwrap_or_else(|e| fail(format!("active submit {i}: {e}")));
            (client, job)
        })
        .collect();
    for (i, (client, job)) in active.iter_mut().enumerate() {
        let result = client
            .wait(*job)
            .unwrap_or_else(|e| fail(format!("active wait {i}: {e}")));
        let sweep = match result.outcome {
            Outcome::Sweep(sweep) => sweep,
            other => fail(format!("active {i}: unexpected outcome {other:?}")),
        };
        if sweep.points.len() != reference.points.len() {
            fail(format!(
                "active {i}: {} points, reference has {}",
                sweep.points.len(),
                reference.points.len()
            ));
        }
        for (remote, local) in sweep.points.iter().zip(reference.points.iter()) {
            if remote.epsilon.to_bits() != local.epsilon.to_bits()
                || remote.seed != local.seed
                || remote.num_samples != local.num_samples
                || remote.stats != local.stats
            {
                fail(format!(
                    "active {i}: sweep diverged from the in-process engine \
                     at epsilon {} seed {}",
                    local.epsilon, local.seed
                ));
            }
        }
    }
    println!(
        "[c10k-smoke] {ACTIVE_CONNS} active sweeps bit-identical to the \
         in-process engine in {:.2}s",
        storm_start.elapsed().as_secs_f64()
    );

    // The idle crowd must still be responsive after the storm: round-trip
    // a `stats` request on a sample of parked sockets.
    let mut sampled = 0usize;
    for (i, reader) in idle.into_iter().enumerate() {
        if i % 100 != 0 {
            continue;
        }
        let mut stream = reader.into_inner();
        stream
            .write_all(b"{\"verb\":\"stats\"}\n")
            .unwrap_or_else(|e| fail(format!("idle conn {i} died: {e}")));
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .unwrap_or_else(|e| fail(format!("idle conn {i} stats read: {e}")));
        if !line.contains("\"event\":\"stats\"") {
            fail(format!("idle conn {i} answered {line:?}"));
        }
        sampled += 1;
    }
    println!("[c10k-smoke] {sampled} sampled idle connections still responsive");

    match rss_kib() {
        Some(rss) => {
            let budget = RSS_BASE_KIB + RSS_PER_CONN_KIB * idle_conns as u64;
            println!("[c10k-smoke] VmRSS {rss} KiB (budget {budget} KiB)");
            if rss > budget {
                fail(format!("RSS {rss} KiB exceeds budget {budget} KiB"));
            }
        }
        None => println!("[c10k-smoke] VmRSS unavailable on this platform; RSS gate skipped"),
    }

    server.shutdown();
    println!("[c10k-smoke] PASS");
}
