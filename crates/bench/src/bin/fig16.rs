//! Regenerates **Fig. 16**: the impact of the evolution time on the
//! optimization effect, for the Na+ and OH- benchmarks at
//! `t ∈ {π/6, π/3, π/2, 3π/4}`.
//!
//! The paper reports MarQSim-GC CNOT reductions of 21.8% / 24.7% / 17.9% /
//! 24.8% averaged over the two benchmarks — i.e. the benefit does not
//! degrade with longer simulated times.
//!
//! Run with `cargo run -p marqsim-bench --release --bin fig16 [--full]`.

use std::f64::consts::PI;

use marqsim_bench::{header, pct, run_scale};
use marqsim_core::experiment::{reduction_summary, run_sweep, SweepConfig};
use marqsim_core::TransitionStrategy;
use marqsim_hamlib::suite::benchmark_by_name;

fn main() {
    let scale = run_scale();
    header("Fig. 16: impact of the evolution time");

    let times = [PI / 6.0, PI / 3.0, PI / 2.0, 3.0 * PI / 4.0];
    let time_labels = ["pi/6", "pi/3", "pi/2", "3pi/4"];

    println!(
        "{:<10} {:>8} | {:>14} {:>14} | {:>16} {:>16}",
        "Benchmark", "t", "GC CNOT", "GC total", "GC-RP CNOT", "GC-RP total"
    );

    let mut gc_by_time = vec![Vec::new(); times.len()];
    for name in ["Na+", "OH-"] {
        let bench = benchmark_by_name(name, scale.suite).expect("benchmark exists");
        for (ti, (&t, label)) in times.iter().zip(time_labels.iter()).enumerate() {
            let config = SweepConfig {
                time: t,
                epsilons: vec![0.1, 0.05],
                repeats: scale.repeats,
                base_seed: 23,
                evaluate_fidelity: false,
            };
            let baseline =
                run_sweep(&bench.hamiltonian, &TransitionStrategy::QDrift, &config).unwrap();
            let gc =
                run_sweep(&bench.hamiltonian, &TransitionStrategy::marqsim_gc(), &config).unwrap();
            let gcrp = run_sweep(
                &bench.hamiltonian,
                &TransitionStrategy::marqsim_gc_rp(),
                &config,
            )
            .unwrap();
            let gc_summary = reduction_summary(&baseline, &gc);
            let gcrp_summary = reduction_summary(&baseline, &gcrp);
            gc_by_time[ti].push(gc_summary.cnot_reduction);
            println!(
                "{:<10} {:>8} | {:>14} {:>14} | {:>16} {:>16}",
                name,
                label,
                pct(gc_summary.cnot_reduction),
                pct(gc_summary.total_reduction),
                pct(gcrp_summary.cnot_reduction),
                pct(gcrp_summary.total_reduction)
            );
        }
    }

    println!();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let averages: Vec<String> = gc_by_time.iter().map(|v| pct(mean(v))).collect();
    println!(
        "average MarQSim-GC CNOT reduction per t: {}  (paper: 21.8% / 24.7% / 17.9% / 24.8%)",
        averages.join(" / ")
    );
}
