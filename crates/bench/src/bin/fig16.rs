//! Regenerates **Fig. 16**: the impact of the evolution time on the
//! optimization effect, for the Na+ and OH- benchmarks at
//! `t ∈ {π/6, π/3, π/2, 3π/4}`.
//!
//! The paper reports MarQSim-GC CNOT reductions of 21.8% / 24.7% / 17.9% /
//! 24.8% averaged over the two benchmarks — i.e. the benefit does not
//! degrade with longer simulated times.
//!
//! Run with `cargo run -p marqsim-bench --release --bin fig16 [--full]`.

use std::f64::consts::PI;

use marqsim_bench::{engine, header, pct, report_cache_stats, run_scale};
use marqsim_core::experiment::{reduction_summary, SweepConfig};
use marqsim_core::TransitionStrategy;
use marqsim_engine::{BenchmarkSuiteResult, BenchmarkSuiteWorkload};
use marqsim_hamlib::suite::benchmark_by_name;

fn main() {
    let scale = run_scale();
    let engine = engine();
    header("Fig. 16: impact of the evolution time");

    let times = [PI / 6.0, PI / 3.0, PI / 2.0, 3.0 * PI / 4.0];
    let time_labels = ["pi/6", "pi/3", "pi/2", "3pi/4"];

    println!(
        "{:<10} {:>8} | {:>14} {:>14} | {:>16} {:>16}",
        "Benchmark", "t", "GC CNOT", "GC total", "GC-RP CNOT", "GC-RP total"
    );

    // Note the P_gc transition matrix depends only on the Hamiltonian, not
    // on the evolution time: all four times of a benchmark — twelve sweeps —
    // share one min-cost-flow solve through the engine cache.
    let strategies = [
        TransitionStrategy::QDrift,
        TransitionStrategy::marqsim_gc(),
        TransitionStrategy::marqsim_gc_rp(),
    ];
    let names = ["Na+", "OH-"];
    let benches: Vec<_> = names
        .iter()
        .map(|name| benchmark_by_name(name, scale.suite).expect("benchmark exists"))
        .collect();
    let mut workload = BenchmarkSuiteWorkload::new("fig16");
    for bench in &benches {
        for (&t, label) in times.iter().zip(time_labels.iter()) {
            let config = SweepConfig {
                time: t,
                epsilons: vec![0.1, 0.05],
                repeats: scale.repeats,
                base_seed: 23,
                evaluate_fidelity: false,
            };
            for strategy in &strategies {
                workload = workload.case(
                    format!("{}/t={label}", bench.name),
                    bench.hamiltonian.clone(),
                    strategy.clone(),
                    config.clone(),
                );
            }
        }
    }
    let result: BenchmarkSuiteResult = engine
        .run_workload(&workload)
        .expect("fig16 suite")
        .downcast()
        .expect("suite output");
    let mut sweeps = result.cases.into_iter().map(|case| case.sweep);

    let mut gc_by_time = vec![Vec::new(); times.len()];
    for bench in &benches {
        let name = bench.name;
        for (ti, label) in time_labels.iter().enumerate() {
            let baseline = sweeps.next().unwrap();
            let gc = sweeps.next().unwrap();
            let gcrp = sweeps.next().unwrap();
            let gc_summary = reduction_summary(&baseline, &gc);
            let gcrp_summary = reduction_summary(&baseline, &gcrp);
            gc_by_time[ti].push(gc_summary.cnot_reduction);
            println!(
                "{:<10} {:>8} | {:>14} {:>14} | {:>16} {:>16}",
                name,
                label,
                pct(gc_summary.cnot_reduction),
                pct(gc_summary.total_reduction),
                pct(gcrp_summary.cnot_reduction),
                pct(gcrp_summary.total_reduction)
            );
        }
    }

    println!();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let averages: Vec<String> = gc_by_time.iter().map(|v| pct(mean(v))).collect();
    println!(
        "average MarQSim-GC CNOT reduction per t: {}  (paper: 21.8% / 24.7% / 17.9% / 24.8%)",
        averages.join(" / ")
    );
    report_cache_stats(engine.cache().stats());
}
