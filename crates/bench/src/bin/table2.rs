//! Regenerates **Table 2**: compilation-time scaling on randomly generated
//! Hamiltonians (10/20/30 qubits × 100/500/1000 Pauli strings).
//!
//! The two phases timed are the same as in §6.6: transition-matrix
//! generation (P_qd, P_gc, P_rp) and circuit generation (sampling +
//! synthesis-free sequence accounting) for the three configurations. The
//! per-configuration compiles are routed through a cache-disabled engine so
//! each reported time still includes its transition-matrix build, exactly
//! like the paper's measurement; a warm-cache column then shows what the
//! engine's transition cache turns that compile time into.
//!
//! With `MARQSIM_CACHE_DIR` set the binary instead exercises the
//! persistent cache path: the `P_gc` column times
//! [`TransitionCache::get_or_solve_gc`] (solve + spill on the first run,
//! disk load on reruns), every engine keeps its cache enabled so compiles
//! reuse the persisted component, and the closing `[cache]` line reports
//! `flow_solves=0` on a rerun — the CI smoke job asserts exactly that.
//! Timings in this mode measure the persistent-cache path, not the paper's
//! cold-compile measurement.
//!
//! Run with `cargo run -p marqsim-bench --release --bin table2 [--full]`.
//! The default skips the 1000-string instances; `--full` includes them.

use marqsim_bench::{header, report_cache_stats, timed};
use marqsim_core::gate_cancel::gate_cancellation_matrix;
use marqsim_core::perturb::{random_perturbation_matrix, PerturbationConfig};
use marqsim_core::qdrift::qdrift_matrix;
use marqsim_core::{CompilerConfig, TransitionStrategy};
use marqsim_engine::{
    CacheStats, CompileRequest, CompileWorkload, Engine, EngineConfig, TransitionCache,
};
use marqsim_hamlib::random::{random_hamiltonian, RandomHamiltonianParams};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let qubit_counts = [10usize, 20, 30];
    let term_counts: &[usize] = if full { &[100, 500, 1000] } else { &[100, 500] };
    let time = std::f64::consts::FRAC_PI_4;
    let epsilon = 0.05;

    let env_config = EngineConfig::from_env().unwrap_or_else(|error| {
        marqsim_obs::error!("bench", "{error}");
        std::process::exit(2);
    });
    let persistent = env_config.cache.persist_dir.is_some();

    // Cold engine: cache disabled, so every compile pays its own
    // transition-matrix build (the paper's measurement). Warm engine: cache
    // forced on regardless of MARQSIM_CACHE, primed by a twin request, so
    // the "warm GC" column is warm-cache timing by construction. In
    // persistent mode the cold engine keeps its cache on too — the point of
    // that mode is to show reruns skipping the flow solve via disk.
    let cold = Engine::new(env_config.clone().with_cache(persistent));
    let warm = Engine::new(env_config.clone().with_cache(true));
    // Phase-1 P_gc timings go through this persistence-backed component
    // cache in persistent mode (solve + spill once, disk load on reruns).
    let component_cache =
        persistent.then(|| TransitionCache::with_config(env_config.cache.clone()));
    println!("[marqsim-engine: {} worker threads]", cold.threads());
    if persistent {
        println!("[persistent cache mode: P_gc served from MARQSIM_CACHE_DIR when present; timings are not paper-comparable]");
    }

    header("Table 2: Compilation time analysis (t = pi/4, eps = 0.05)");
    println!(
        "{:>7} {:>8} | {:>9} {:>9} {:>9} | {:>10} {:>12} {:>14} | {:>10}",
        "Qubit#",
        "String#",
        "Pqd (s)",
        "Pgc (s)",
        "Prp (s)",
        "Base (s)",
        "GC (s)",
        "GC-RP (s)",
        "warm GC"
    );

    for &qubits in &qubit_counts {
        for &terms in term_counts {
            let ham = random_hamiltonian(&RandomHamiltonianParams {
                qubits,
                terms,
                identity_bias: 0.6,
                seed: 1234 + terms as u64,
            });
            // Phase 1: transition-matrix generation.
            let (_, t_qd) = timed(|| qdrift_matrix(&ham));
            let (_, t_gc) = match &component_cache {
                Some(cache) => timed(|| {
                    cache.get_or_solve_gc(&ham).expect("gc matrix");
                }),
                None => timed(|| {
                    gate_cancellation_matrix(&ham).expect("gc matrix");
                }),
            };
            let (_, t_rp) = timed(|| {
                random_perturbation_matrix(
                    &ham,
                    &PerturbationConfig {
                        samples: 3,
                        seed: 5,
                        ..Default::default()
                    },
                )
                .expect("rp matrix")
            });

            // Phase 2: circuit generation (sampling + sequence accounting),
            // through the engine.
            let compile_time = |engine: &Engine, strategy: TransitionStrategy| {
                let cfg = CompilerConfig::new(time, epsilon)
                    .with_strategy(strategy)
                    .with_seed(3)
                    .without_circuit();
                let workload = CompileWorkload::new(CompileRequest::new(
                    format!("table2/{qubits}q/{terms}s"),
                    ham.clone(),
                    cfg,
                ));
                timed(|| engine.run_workload(&workload).expect("compilation")).1
            };
            let t_base = compile_time(&cold, TransitionStrategy::QDrift);
            let t_gc_cfg = compile_time(&cold, TransitionStrategy::marqsim_gc());
            let t_gcrp_cfg = compile_time(
                &cold,
                TransitionStrategy::GateCancellationRandomPerturbation {
                    qdrift_weight: 0.4,
                    gc_weight: 0.3,
                    perturbation: PerturbationConfig {
                        samples: 3,
                        seed: 5,
                        ..Default::default()
                    },
                },
            );
            // Warm-cache timing: first compile primes the cache, the second
            // is what a sweep point costs once the matrix is shared.
            compile_time(&warm, TransitionStrategy::marqsim_gc());
            let t_gc_warm = compile_time(&warm, TransitionStrategy::marqsim_gc());

            println!(
                "{:>7} {:>8} | {:>9.3} {:>9.3} {:>9.3} | {:>10.3} {:>12.3} {:>14.3} | {:>10.3}",
                qubits, terms, t_qd, t_gc, t_rp, t_base, t_gc_cfg, t_gcrp_cfg, t_gc_warm
            );
        }
    }
    println!();
    println!("(transition-matrix time is dominated by the min-cost-flow solve; circuit time by sampling. The warm-GC column repeats the GC compile with the engine's transition cache primed: only sampling remains, which is why sweeps through marqsim-engine pay the flow solve once per benchmark instead of once per point)");

    // One combined counter line across every cache this run used; with a
    // warm MARQSIM_CACHE_DIR a rerun reports flow_solves=0.
    let mut totals = CacheStats::default();
    if let Some(cache) = &component_cache {
        totals += cache.stats();
    }
    totals += cold.cache().stats();
    totals += warm.cache().stats();
    report_cache_stats(totals);
}
