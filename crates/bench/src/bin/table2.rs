//! Regenerates **Table 2**: compilation-time scaling on randomly generated
//! Hamiltonians (10/20/30 qubits × 100/500/1000 Pauli strings).
//!
//! The two phases timed are the same as in §6.6: transition-matrix
//! generation (P_qd, P_gc, P_rp) and circuit generation (sampling +
//! synthesis-free sequence accounting) for the three configurations.
//!
//! Run with `cargo run -p marqsim-bench --release --bin table2 [--full]`.
//! The default skips the 1000-string instances; `--full` includes them.

use marqsim_bench::{header, timed};
use marqsim_core::gate_cancel::gate_cancellation_matrix;
use marqsim_core::perturb::{random_perturbation_matrix, PerturbationConfig};
use marqsim_core::qdrift::qdrift_matrix;
use marqsim_core::{Compiler, CompilerConfig, TransitionStrategy};
use marqsim_hamlib::random::{random_hamiltonian, RandomHamiltonianParams};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let qubit_counts = [10usize, 20, 30];
    let term_counts: &[usize] = if full { &[100, 500, 1000] } else { &[100, 500] };
    let time = std::f64::consts::FRAC_PI_4;
    let epsilon = 0.05;

    header("Table 2: Compilation time analysis (t = pi/4, eps = 0.05)");
    println!(
        "{:>7} {:>8} | {:>9} {:>9} {:>9} | {:>10} {:>12} {:>14}",
        "Qubit#", "String#", "Pqd (s)", "Pgc (s)", "Prp (s)", "Base (s)", "GC (s)", "GC-RP (s)"
    );

    for &qubits in &qubit_counts {
        for &terms in term_counts {
            let ham = random_hamiltonian(&RandomHamiltonianParams {
                qubits,
                terms,
                identity_bias: 0.6,
                seed: 1234 + terms as u64,
            });
            // Phase 1: transition-matrix generation.
            let (_, t_qd) = timed(|| qdrift_matrix(&ham));
            let (_, t_gc) = timed(|| gate_cancellation_matrix(&ham).expect("gc matrix"));
            let (_, t_rp) = timed(|| {
                random_perturbation_matrix(
                    &ham,
                    &PerturbationConfig {
                        samples: 3,
                        seed: 5,
                        ..Default::default()
                    },
                )
                .expect("rp matrix")
            });

            // Phase 2: circuit generation (sampling + sequence accounting).
            let compile_time = |strategy: TransitionStrategy| {
                let cfg = CompilerConfig::new(time, epsilon)
                    .with_strategy(strategy)
                    .with_seed(3)
                    .without_circuit();
                timed(|| Compiler::new(cfg).compile(&ham).expect("compilation")).1
            };
            let t_base = compile_time(TransitionStrategy::QDrift);
            let t_gc_cfg = compile_time(TransitionStrategy::marqsim_gc());
            let t_gcrp_cfg = compile_time(TransitionStrategy::GateCancellationRandomPerturbation {
                qdrift_weight: 0.4,
                gc_weight: 0.3,
                perturbation: PerturbationConfig {
                    samples: 3,
                    seed: 5,
                    ..Default::default()
                },
            });

            println!(
                "{:>7} {:>8} | {:>9.3} {:>9.3} {:>9.3} | {:>10.3} {:>12.3} {:>14.3}",
                qubits, terms, t_qd, t_gc, t_rp, t_base, t_gc_cfg, t_gcrp_cfg
            );
        }
    }
    println!();
    println!("(transition-matrix time is dominated by the min-cost-flow solve; circuit time by sampling, matching the paper's observation that both depend mainly on the Pauli-string count)");
}
