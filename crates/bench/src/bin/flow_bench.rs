//! `flow_bench` — per-backend min-cost-flow timing on the gate-cancellation
//! transportation model.
//!
//! For each problem size (Pauli-string count) it builds the same random
//! Hamiltonian `table2` uses, derives the CNOT-cost bipartite instance, and
//! solves it once per registered backend, printing one grep-able line per
//! `(backend, size)` pair:
//!
//! ```text
//! [flow] backend=ssp strings=500 states=500 solve_s=2.175 cost=3.4 bf_skipped=true
//! ```
//!
//! plus a cross-backend agreement line per size (the optimal costs must
//! match to 1e-9 — the equivalence guarantee the test suite enforces at
//! small sizes, checked here at benchmark scale too). `bf_skipped` records
//! the successive-shortest-path fast path: the CNOT cost model is
//! non-negative, so its Bellman–Ford potential bootstrap is skipped.
//!
//! Run with `cargo run --release -p marqsim-bench --bin flow_bench
//! [--quick]`. The default covers 100/500/1000 strings (≈30 s in release);
//! `--quick` drops the 1000-string instance.
//!
//! `--warm` switches to the warm-start benchmark instead: per size, solve
//! the base instance cold under the simplex backend, export its spanning
//! basis, then re-solve perturbed-cost variants both cold and as warm
//! re-pivots from that basis, printing one line per size:
//!
//! ```text
//! [flow] warm=network_simplex strings=500 samples=8 repivot_s=0.041 cold_s=0.513 speedup=12.5 equal=true
//! ```
//!
//! `equal` asserts the re-pivoted optimum matches the cold optimum to 1e-9
//! on every sample (exit 1 otherwise) — the warm-start correctness
//! contract the CI smoke leg greps for.

use marqsim_bench::{header, timed};
use marqsim_core::gate_cancel::cnot_cost_matrix;
use marqsim_core::SolverKind;
use marqsim_flow::bipartite;
use marqsim_hamlib::random::{random_hamiltonian, RandomHamiltonianParams};
use marqsim_obs::{error, info};

/// Deterministic xorshift cost perturbation: `+1.0` on roughly half of the
/// off-diagonal entries, mirroring the §5.5 perturbation shape. Costs stay
/// non-negative, so the backend-equivalence contract keeps holding.
fn perturbed(costs: &[Vec<f64>], seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    costs
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(|(j, &cost)| {
                    if i != j && next() % 2 == 0 {
                        cost + 1.0
                    } else {
                        cost
                    }
                })
                .collect()
        })
        .collect()
}

fn run_warm(sizes: &[usize]) {
    const SAMPLES: u64 = 8;
    header("flow_bench: warm-start re-pivots vs cold solves (network simplex)");
    for &strings in sizes {
        let ham = random_hamiltonian(&RandomHamiltonianParams {
            qubits: 20,
            terms: strings,
            identity_bias: 0.6,
            seed: 1234 + strings as u64,
        })
        .split_if_dominant();
        let pi = ham.stationary_distribution();
        let costs = cnot_cost_matrix(&ham);
        let kind = SolverKind::NetworkSimplex;

        let seed_solve = bipartite::solve_with_basis(kind, &pi, &costs, |i, j| i != j);
        let basis = match seed_solve {
            Ok((_, Some(basis))) => basis,
            Ok((_, None)) => {
                error!(
                    "flow",
                    "simplex backend exported no basis at {strings} strings"
                );
                std::process::exit(1);
            }
            Err(cause) => {
                error!("flow", "seed solve failed at {strings} strings: {cause}");
                std::process::exit(1);
            }
        };

        let mut repivot_s = 0.0;
        let mut cold_s = 0.0;
        let mut equal = true;
        for sample in 0..SAMPLES {
            let sample_costs = perturbed(&costs, strings as u64 * 1000 + sample);
            let (cold, seconds) =
                timed(|| bipartite::solve_with(kind, &pi, &sample_costs, |i, j| i != j));
            cold_s += seconds;
            let cold = cold.unwrap_or_else(|cause| {
                error!("flow", "cold re-solve failed at {strings} strings: {cause}");
                std::process::exit(1);
            });
            let (warm, seconds) = timed(|| {
                bipartite::solve_warm_with(kind, &pi, &sample_costs, |i, j| i != j, &basis)
            });
            repivot_s += seconds;
            let (warm, _) = warm.unwrap_or_else(|cause| {
                error!("flow", "warm re-solve failed at {strings} strings: {cause}");
                std::process::exit(1);
            });
            if !warm.warm_start {
                error!("flow", "warm solve fell back to cold at {strings} strings");
                std::process::exit(1);
            }
            let scale = cold.cost.abs().max(1.0);
            if (warm.cost - cold.cost).abs() > 1e-9 * scale {
                equal = false;
            }
        }
        info!(
            "flow",
            "warm={} strings={strings} samples={SAMPLES} repivot_s={repivot_s:.3} cold_s={cold_s:.3} speedup={:.1} equal={equal}",
            kind.as_str(),
            cold_s / repivot_s.max(1e-12),
        );
        if !equal {
            error!(
                "flow",
                "warm re-pivot diverged from the cold optimum at {strings} strings"
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let warm = std::env::args().any(|a| a == "--warm");
    let sizes: &[usize] = if quick {
        &[100, 500]
    } else {
        &[100, 500, 1000]
    };
    if warm {
        run_warm(sizes);
        return;
    }

    header("flow_bench: min-cost-flow backend timing (gate-cancellation model)");
    println!(
        "(backends: {}; one [flow] line per backend and size)",
        SolverKind::ALL.map(SolverKind::as_str).join(", ")
    );

    for &strings in sizes {
        let ham = random_hamiltonian(&RandomHamiltonianParams {
            qubits: 20,
            terms: strings,
            identity_bias: 0.6,
            seed: 1234 + strings as u64,
        })
        .split_if_dominant();
        let pi = ham.stationary_distribution();
        let costs = cnot_cost_matrix(&ham);

        let mut optima: Vec<(SolverKind, f64)> = Vec::new();
        for kind in SolverKind::ALL {
            let (solution, seconds) =
                timed(|| bipartite::solve_with(kind, &pi, &costs, |i, j| i != j));
            match solution {
                Ok(flow) => {
                    info!(
                        "flow",
                        "backend={} strings={strings} states={} solve_s={seconds:.3} cost={:.6} bf_skipped={}",
                        kind.as_str(),
                        ham.num_terms(),
                        flow.cost,
                        flow.bellman_ford_skipped,
                    );
                    optima.push((kind, flow.cost));
                }
                Err(cause) => {
                    error!(
                        "flow",
                        "backend {kind} failed at {strings} strings: {cause}"
                    );
                    std::process::exit(1);
                }
            }
        }
        let (reference_kind, reference) = optima[0];
        for &(kind, cost) in &optima[1..] {
            let delta = (cost - reference).abs();
            let agree = delta < 1e-9;
            info!(
                "flow",
                "agreement strings={strings} {}={reference:.9} {}={cost:.9} delta={delta:.3e} equal={agree}",
                reference_kind.as_str(),
                kind.as_str(),
            );
            if !agree {
                error!(
                    "flow",
                    "backends disagree on the optimal cost at {strings} strings"
                );
                std::process::exit(1);
            }
        }
    }
}
