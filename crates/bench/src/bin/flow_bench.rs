//! `flow_bench` — per-backend min-cost-flow timing on the gate-cancellation
//! transportation model.
//!
//! For each problem size (Pauli-string count) it builds the same random
//! Hamiltonian `table2` uses, derives the CNOT-cost bipartite instance, and
//! solves it once per registered backend, printing one grep-able line per
//! `(backend, size)` pair:
//!
//! ```text
//! [flow] backend=ssp strings=500 states=500 solve_s=2.175 cost=3.4 bf_skipped=true
//! ```
//!
//! plus a cross-backend agreement line per size (the optimal costs must
//! match to 1e-9 — the equivalence guarantee the test suite enforces at
//! small sizes, checked here at benchmark scale too). `bf_skipped` records
//! the successive-shortest-path fast path: the CNOT cost model is
//! non-negative, so its Bellman–Ford potential bootstrap is skipped.
//!
//! Run with `cargo run --release -p marqsim-bench --bin flow_bench
//! [--quick]`. The default covers 100/500/1000 strings (≈30 s in release);
//! `--quick` drops the 1000-string instance.

use marqsim_bench::{header, timed};
use marqsim_core::gate_cancel::cnot_cost_matrix;
use marqsim_core::SolverKind;
use marqsim_flow::bipartite;
use marqsim_hamlib::random::{random_hamiltonian, RandomHamiltonianParams};
use marqsim_obs::{error, info};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[100, 500]
    } else {
        &[100, 500, 1000]
    };

    header("flow_bench: min-cost-flow backend timing (gate-cancellation model)");
    println!(
        "(backends: {}; one [flow] line per backend and size)",
        SolverKind::ALL.map(SolverKind::as_str).join(", ")
    );

    for &strings in sizes {
        let ham = random_hamiltonian(&RandomHamiltonianParams {
            qubits: 20,
            terms: strings,
            identity_bias: 0.6,
            seed: 1234 + strings as u64,
        })
        .split_if_dominant();
        let pi = ham.stationary_distribution();
        let costs = cnot_cost_matrix(&ham);

        let mut optima: Vec<(SolverKind, f64)> = Vec::new();
        for kind in SolverKind::ALL {
            let (solution, seconds) =
                timed(|| bipartite::solve_with(kind, &pi, &costs, |i, j| i != j));
            match solution {
                Ok(flow) => {
                    info!(
                        "flow",
                        "backend={} strings={strings} states={} solve_s={seconds:.3} cost={:.6} bf_skipped={}",
                        kind.as_str(),
                        ham.num_terms(),
                        flow.cost,
                        flow.bellman_ford_skipped,
                    );
                    optima.push((kind, flow.cost));
                }
                Err(cause) => {
                    error!(
                        "flow",
                        "backend {kind} failed at {strings} strings: {cause}"
                    );
                    std::process::exit(1);
                }
            }
        }
        let (reference_kind, reference) = optima[0];
        for &(kind, cost) in &optima[1..] {
            let delta = (cost - reference).abs();
            let agree = delta < 1e-9;
            info!(
                "flow",
                "agreement strings={strings} {}={reference:.9} {}={cost:.9} delta={delta:.3e} equal={agree}",
                reference_kind.as_str(),
                kind.as_str(),
            );
            if !agree {
                error!(
                    "flow",
                    "backends disagree on the optimal cost at {strings} strings"
                );
                std::process::exit(1);
            }
        }
    }
}
