//! Regenerates **Fig. 11 and Fig. 15**: transition-matrix spectra with and
//! without the random-perturbation component, and the resulting change in
//! the standard deviation of the sampled-circuit accuracy.
//!
//! Fig. 11 uses the 5-term Hamiltonian of Example 5.3; Fig. 15 uses the Na+
//! benchmark. The paper reports σ reductions of 26% (0.4 Pqd) and 33%
//! (0.2 Pqd) when part of the P_gc weight is replaced by P_rp.
//!
//! Run with `cargo run -p marqsim-bench --release --bin fig15 [--full]`.

use marqsim_bench::{engine, header, pct, report_cache_stats, run_scale};
use marqsim_core::experiment::SweepConfig;
use marqsim_core::perturb::PerturbationConfig;
use marqsim_core::transition::build_transition_matrix;
use marqsim_core::TransitionStrategy;
use marqsim_engine::{
    BenchmarkSuiteResult, BenchmarkSuiteWorkload, PerturbAverageResult, PerturbAverageWorkload,
};
use marqsim_hamlib::suite::{benchmark_by_name, SuiteScale};
use marqsim_markov::spectra::spectrum;
use marqsim_pauli::Hamiltonian;

fn print_spectrum(label: &str, ham: &Hamiltonian, strategy: &TransitionStrategy) {
    let p = build_transition_matrix(ham, strategy).expect("transition matrix");
    let s = spectrum(&p);
    let shown: Vec<String> = s.values.iter().take(8).map(|v| format!("{v:.3}")).collect();
    println!(
        "{:<34} spectra: [{}]  subdominant mass: {:.3}",
        label,
        shown.join(", "),
        s.subdominant_mass()
    );
}

fn main() {
    let scale = run_scale();
    let engine = engine();

    header("Fig. 11: spectra for the Example 5.3 Hamiltonian");
    let example =
        Hamiltonian::parse("1.0 IIIZY + 1.0 XXIII + 0.7 ZXZYI + 0.5 IIZZX + 0.3 XXYYZ").unwrap();
    print_spectrum("Pqd", &example, &TransitionStrategy::QDrift);
    print_spectrum(
        "0.4 Pqd + 0.6 Pgc",
        &example,
        &TransitionStrategy::GateCancellation { qdrift_weight: 0.4 },
    );

    header("Fig. 15: spectra for the Na+ benchmark, with and without Prp");
    let bench = benchmark_by_name(
        "Na+",
        if scale.fidelity {
            SuiteScale::Reduced
        } else {
            scale.suite
        },
    )
    .expect("benchmark exists");
    let perturbation = PerturbationConfig {
        samples: 20,
        seed: 11,
        ..Default::default()
    };
    let configs: Vec<(&str, TransitionStrategy)> = vec![
        (
            "P1  = 0.4 Pqd + 0.6 Pgc",
            TransitionStrategy::GateCancellation { qdrift_weight: 0.4 },
        ),
        (
            "P1' = 0.4 Pqd + 0.3 Pgc + 0.3 Prp",
            TransitionStrategy::Combined {
                qdrift_weight: 0.4,
                gc_weight: 0.3,
                rp_weight: 0.3,
                perturbation,
            },
        ),
        (
            "P2  = 0.2 Pqd + 0.8 Pgc",
            TransitionStrategy::GateCancellation { qdrift_weight: 0.2 },
        ),
        (
            "P2' = 0.2 Pqd + 0.4 Pgc + 0.4 Prp",
            TransitionStrategy::Combined {
                qdrift_weight: 0.2,
                gc_weight: 0.4,
                rp_weight: 0.4,
                perturbation,
            },
        ),
    ];
    for (label, strategy) in &configs {
        print_spectrum(label, &bench.hamiltonian, strategy);
    }

    // The standalone P_rp, with its per-sample min-cost-flow solves fanned
    // out over the engine pool (the PerturbAverageWorkload's independent
    // per-sample seeding — deterministic for any thread count).
    let prp: PerturbAverageResult = engine
        .run_workload(&PerturbAverageWorkload::new(
            "fig15/prp",
            bench.hamiltonian.clone(),
            perturbation,
        ))
        .expect("parallel Prp average")
        .downcast()
        .expect("perturb output");
    let prp_spectrum = spectrum(&prp.matrix);
    println!(
        "{:<34} spectra head: {:.3}  subdominant mass: {:.3}  ({} samples solved in parallel)",
        "Prp (parallel average)",
        prp_spectrum.values.first().copied().unwrap_or(f64::NAN),
        prp_spectrum.subdominant_mass(),
        prp.samples
    );

    header("Fig. 15: accuracy standard deviation with and without Prp");
    let sweep_config = SweepConfig {
        time: bench.time,
        epsilons: vec![0.1, 0.05],
        repeats: scale.repeats.max(5),
        base_seed: 19,
        evaluate_fidelity: true,
    };
    let mut workload = BenchmarkSuiteWorkload::new("fig15");
    for (label, strategy) in &configs {
        workload = workload.case(
            *label,
            bench.hamiltonian.clone(),
            strategy.clone(),
            sweep_config.clone(),
        );
    }
    let result: BenchmarkSuiteResult = engine
        .run_workload(&workload)
        .expect("fig15 suite")
        .downcast()
        .expect("suite output");

    let mut sigmas = Vec::new();
    for ((label, _), case) in configs.iter().zip(result.cases) {
        let sweep = case.sweep;
        let clusters = sweep.cluster_summaries();
        let sigma: f64 =
            clusters.iter().map(|c| c.std_fidelity).sum::<f64>() / clusters.len() as f64;
        println!("{label:<34} sigma(accuracy) = {sigma:.5}");
        sigmas.push(sigma);
    }
    if sigmas.len() == 4 && sigmas[0] > 0.0 && sigmas[2] > 0.0 {
        println!();
        println!(
            "sigma reduction from Prp: {} (0.4 Pqd case, paper: 26%), {} (0.2 Pqd case, paper: 33%)",
            pct(1.0 - sigmas[1] / sigmas[0]),
            pct(1.0 - sigmas[3] / sigmas[2])
        );
    }
    report_cache_stats(engine.cache().stats());
}
