//! Smoke-tests the serve front-end with a localhost round trip: submits a
//! sweep over TCP, checks the result bit-for-bit against the same sweep run
//! through an in-process engine, repeats it on a second connection and
//! requires the warm-cache job to report zero min-cost-flow solves, then
//! submits a `benchmark_suite` workload kind covering the golden `table2`
//! benchmark grid and requires the returned gate counts to match the
//! in-process compiles exactly (the same numbers `tests/golden/table2.txt`
//! pins).
//!
//! Two modes:
//!
//! * `cargo run -p marqsim-bench --bin serve_smoke` — spawns an in-process
//!   server on an OS-assigned port and drives it.
//! * `... --bin serve_smoke -- --connect HOST:PORT` — drives an already
//!   running `marqsim-served` (what the CI serve-smoke job does).
//!
//! Exits non-zero on any mismatch; prints the standard `[cache]` stats line
//! (server-side counters) for the CI grep.

use std::sync::Arc;

use marqsim_bench::report_cache_stats;
use marqsim_core::experiment::SweepConfig;
use marqsim_core::{CompilerConfig, TransitionStrategy};
use marqsim_engine::{CompileRequest, Engine, EngineConfig};
use marqsim_pauli::Hamiltonian;
use marqsim_serve::{suite_params, Client, Outcome, Server};

fn ham() -> Hamiltonian {
    Hamiltonian::parse("0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY + 0.3 IZIZ")
        .expect("valid smoke Hamiltonian")
}

/// The tiny fixed benchmark set the `table2` golden file is rendered on —
/// the same `golden_tiny_benchmarks` definition `tests/golden.rs` uses, so
/// the two consumers cannot diverge.
fn table2_benchmarks() -> Vec<(&'static str, Hamiltonian, f64)> {
    marqsim_hamlib::suite::golden_tiny_benchmarks()
}

fn fail(message: impl std::fmt::Display) -> ! {
    marqsim_obs::error!("serve-smoke", "FAILED: {message}");
    std::process::exit(1);
}

/// Total sample count across the per-backend `flow_solve` latency
/// histograms in a Prometheus-style exposition.
fn flow_solve_histogram_count(exposition: &str) -> u64 {
    exposition
        .lines()
        .filter(|line| line.starts_with("marqsim_flow_solve_seconds_count"))
        .filter_map(|line| line.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let connect = args.iter().position(|a| a == "--connect").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            fail("--connect requires HOST:PORT");
        })
    });

    // Spawn an in-process server unless pointed at an external one.
    let (addr, local_server) = match connect {
        Some(addr) => {
            println!("[serve-smoke] connecting to external server at {addr}");
            (addr, None)
        }
        None => {
            let engine = match Engine::from_env() {
                Ok(engine) => Arc::new(engine),
                Err(error) => fail(error),
            };
            let server = Server::bind("127.0.0.1:0", engine)
                .unwrap_or_else(|e| fail(format!("bind: {e}")))
                .spawn()
                .unwrap_or_else(|e| fail(format!("spawn: {e}")));
            let addr = server.addr().to_string();
            println!("[serve-smoke] spawned in-process server at {addr}");
            (addr, Some(server))
        }
    };

    let strategy = TransitionStrategy::marqsim_gc();
    let config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.1, 0.05],
        repeats: 3,
        base_seed: 9,
        evaluate_fidelity: false,
    };

    // Reference: the identical sweep through a local in-process engine.
    let reference_engine = Engine::new(EngineConfig::default().with_threads(2));
    let reference = reference_engine
        .run_sweep(&ham(), &strategy, &config)
        .unwrap_or_else(|e| fail(format!("in-process sweep: {e}")));

    // Round trip 1: cold cache on the server side.
    let mut client = Client::connect(&*addr).unwrap_or_else(|e| fail(format!("connect: {e}")));
    println!(
        "[serve-smoke] connected; server runs {} worker threads, serves: {}",
        client.threads(),
        client.workloads().join(", ")
    );
    let job = client
        .submit_sweep("smoke/cold", &ham(), &strategy, &config)
        .unwrap_or_else(|e| fail(format!("submit: {e}")));
    let mut progress_events = 0usize;
    let cold = client
        .wait_with_progress(job, |_, _| progress_events += 1)
        .unwrap_or_else(|e| fail(format!("wait: {e}")));
    let cold_sweep = match cold.outcome {
        Outcome::Sweep(sweep) => sweep,
        other => fail(format!("unexpected outcome {other:?}")),
    };
    println!(
        "[serve-smoke] job {job}: {} points, {} progress events, cache delta flow_solves={}",
        cold_sweep.points.len(),
        progress_events,
        cold.cache_delta.flow_solves
    );

    if cold_sweep.points.len() != reference.points.len() {
        fail("point count mismatch");
    }
    for (index, (remote, local)) in cold_sweep.points.iter().zip(&reference.points).enumerate() {
        if remote.seed != local.seed
            || remote.epsilon.to_bits() != local.epsilon.to_bits()
            || remote.num_samples != local.num_samples
            || remote.stats != local.stats
            || remote.fidelity.map(f64::to_bits) != local.fidelity.map(f64::to_bits)
        {
            fail(format!(
                "point {index} differs between TCP and in-process results"
            ));
        }
    }
    println!("[serve-smoke] TCP sweep is bit-identical to the in-process engine");

    // Telemetry: the cold job's min-cost-flow solves must be visible in the
    // server's per-backend latency histogram through the metrics verb.
    let cold_metrics = client
        .metrics()
        .unwrap_or_else(|e| fail(format!("metrics: {e}")));
    let cold_solves = flow_solve_histogram_count(&cold_metrics.exposition);
    if cold_solves == 0 {
        fail("metrics exposition reports an empty flow-solve histogram after a cold GC sweep");
    }
    if cold_metrics.requests == 0 || cold_metrics.bytes_in == 0 || cold_metrics.bytes_out == 0 {
        fail("metrics verb reports zero per-connection request/byte counters");
    }

    // Round trip 2: a second connection must be served from the warm cache.
    let mut second =
        Client::connect(&*addr).unwrap_or_else(|e| fail(format!("second connect: {e}")));
    let warm_job = second
        .submit_sweep("smoke/warm", &ham(), &strategy, &config)
        .unwrap_or_else(|e| fail(format!("second submit: {e}")));
    let warm = second
        .wait(warm_job)
        .unwrap_or_else(|e| fail(format!("second wait: {e}")));
    if warm.cache_delta.flow_solves != 0 {
        fail(format!(
            "warm-cache job performed {} flow solves (expected 0)",
            warm.cache_delta.flow_solves
        ));
    }
    match warm.outcome {
        Outcome::Sweep(sweep) => {
            for (a, b) in sweep.points.iter().zip(&cold_sweep.points) {
                if a.stats != b.stats {
                    fail("warm result differs from cold result");
                }
            }
        }
        other => fail(format!("unexpected outcome {other:?}")),
    }
    println!("[serve-smoke] second client shared the warm cache (flow_solves=0)");

    // The warm rerun must leave the flow-solve histogram count unchanged —
    // the registry-level proof that the cache, not a re-solve, served it.
    let warm_metrics = second
        .metrics()
        .unwrap_or_else(|e| fail(format!("warm metrics: {e}")));
    let warm_solves = flow_solve_histogram_count(&warm_metrics.exposition);
    println!(
        "[telemetry] flow_solve_hist_cold={cold_solves} flow_solve_hist_warm={warm_solves} equal={}",
        warm_solves == cold_solves
    );
    if warm_solves != cold_solves {
        fail("warm-cache rerun changed the flow-solve histogram count");
    }

    // Round trip 3: the open submit verb — a benchmark_suite workload kind
    // replaying the golden table2 grid (3 tiny benchmarks × 3 strategies at
    // ε = 0.05, seed 7: with repeats=1 and base_seed=7 the single sweep
    // point compiles exactly like the golden `engine.compile` calls).
    let suite_strategies = [
        ("baseline", TransitionStrategy::QDrift),
        ("gc", TransitionStrategy::marqsim_gc()),
        ("gc-rp", TransitionStrategy::marqsim_gc_rp()),
    ];
    let mut cases = Vec::new();
    for (name, ham, time) in table2_benchmarks() {
        for (tag, strategy) in &suite_strategies {
            cases.push((
                format!("{name}/{tag}"),
                ham.to_string(),
                strategy.clone(),
                SweepConfig {
                    time,
                    epsilons: vec![0.05],
                    repeats: 1,
                    base_seed: 7,
                    evaluate_fidelity: false,
                },
            ));
        }
    }
    let suite_job = second
        .submit(
            "smoke/table2-suite",
            "benchmark_suite",
            suite_params(&cases),
        )
        .unwrap_or_else(|e| fail(format!("suite submit: {e}")));
    let suite = second
        .wait(suite_job)
        .unwrap_or_else(|e| fail(format!("suite wait: {e}")));
    let suite_result = match suite.outcome {
        Outcome::Suite(result) => result,
        other => fail(format!("unexpected outcome {other:?}")),
    };
    if suite_result.cases.len() != cases.len() {
        fail("suite case count mismatch");
    }
    let mut remote_cases = suite_result.cases.iter();
    for (name, ham, time) in table2_benchmarks() {
        for (tag, strategy) in &suite_strategies {
            let expected = reference_engine
                .compile(CompileRequest::new(
                    format!("golden/{name}/{tag}"),
                    ham.clone(),
                    CompilerConfig::new(time, 0.05)
                        .with_strategy(strategy.clone())
                        .with_seed(7)
                        .without_circuit(),
                ))
                .unwrap_or_else(|e| fail(format!("in-process compile: {e}")));
            let case = remote_cases.next().expect("case count checked");
            let point = match case.sweep.points.as_slice() {
                [point] => point,
                _ => fail(format!("{name}/{tag}: expected exactly one sweep point")),
            };
            if point.num_samples != expected.result.num_samples
                || point.stats != expected.result.stats
            {
                fail(format!(
                    "{name}/{tag}: TCP benchmark_suite differs from the golden table2 compile"
                ));
            }
        }
    }
    println!(
        "[serve-smoke] benchmark_suite over TCP reproduced the golden table2 numbers ({} cases)",
        cases.len()
    );

    let stats = second
        .stats()
        .unwrap_or_else(|e| fail(format!("stats: {e}")));
    report_cache_stats(stats.cache);

    if let Some(server) = local_server {
        server.shutdown();
    }
    println!("[serve-smoke] OK");
}
