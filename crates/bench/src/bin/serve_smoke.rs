//! Smoke-tests the serve front-end with a localhost round trip: submits a
//! sweep over TCP, checks the result bit-for-bit against the same sweep run
//! through an in-process engine, then repeats it on a second connection and
//! requires the warm-cache job to report zero min-cost-flow solves.
//!
//! Two modes:
//!
//! * `cargo run -p marqsim-bench --bin serve_smoke` — spawns an in-process
//!   server on an OS-assigned port and drives it.
//! * `... --bin serve_smoke -- --connect HOST:PORT` — drives an already
//!   running `marqsim-served` (what the CI serve-smoke job does).
//!
//! Exits non-zero on any mismatch; prints the standard `[cache]` stats line
//! (server-side counters) for the CI grep.

use std::sync::Arc;

use marqsim_bench::report_cache_stats;
use marqsim_core::experiment::SweepConfig;
use marqsim_core::TransitionStrategy;
use marqsim_engine::{Engine, EngineConfig};
use marqsim_pauli::Hamiltonian;
use marqsim_serve::{Client, Outcome, Server};

fn ham() -> Hamiltonian {
    Hamiltonian::parse("0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY + 0.3 IZIZ")
        .expect("valid smoke Hamiltonian")
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("serve_smoke: FAILED: {message}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let connect = args.iter().position(|a| a == "--connect").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            fail("--connect requires HOST:PORT");
        })
    });

    // Spawn an in-process server unless pointed at an external one.
    let (addr, local_server) = match connect {
        Some(addr) => {
            println!("[serve-smoke] connecting to external server at {addr}");
            (addr, None)
        }
        None => {
            let engine = match Engine::from_env() {
                Ok(engine) => Arc::new(engine),
                Err(error) => fail(error),
            };
            let server = Server::bind("127.0.0.1:0", engine)
                .unwrap_or_else(|e| fail(format!("bind: {e}")))
                .spawn()
                .unwrap_or_else(|e| fail(format!("spawn: {e}")));
            let addr = server.addr().to_string();
            println!("[serve-smoke] spawned in-process server at {addr}");
            (addr, Some(server))
        }
    };

    let strategy = TransitionStrategy::marqsim_gc();
    let config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.1, 0.05],
        repeats: 3,
        base_seed: 9,
        evaluate_fidelity: false,
    };

    // Reference: the identical sweep through a local in-process engine.
    let reference_engine = Engine::new(EngineConfig::default().with_threads(2));
    let reference = reference_engine
        .run_sweep(&ham(), &strategy, &config)
        .unwrap_or_else(|e| fail(format!("in-process sweep: {e}")));

    // Round trip 1: cold cache on the server side.
    let mut client = Client::connect(&*addr).unwrap_or_else(|e| fail(format!("connect: {e}")));
    println!(
        "[serve-smoke] connected; server runs {} worker threads",
        client.threads()
    );
    let job = client
        .submit_sweep("smoke/cold", &ham(), &strategy, &config)
        .unwrap_or_else(|e| fail(format!("submit: {e}")));
    let mut progress_events = 0usize;
    let cold = client
        .wait_with_progress(job, |_, _| progress_events += 1)
        .unwrap_or_else(|e| fail(format!("wait: {e}")));
    let cold_sweep = match cold.outcome {
        Outcome::Sweep(sweep) => sweep,
        other => fail(format!("unexpected outcome {other:?}")),
    };
    println!(
        "[serve-smoke] job {job}: {} points, {} progress events, cache delta flow_solves={}",
        cold_sweep.points.len(),
        progress_events,
        cold.cache_delta.flow_solves
    );

    if cold_sweep.points.len() != reference.points.len() {
        fail("point count mismatch");
    }
    for (index, (remote, local)) in cold_sweep.points.iter().zip(&reference.points).enumerate() {
        if remote.seed != local.seed
            || remote.epsilon.to_bits() != local.epsilon.to_bits()
            || remote.num_samples != local.num_samples
            || remote.stats != local.stats
            || remote.fidelity.map(f64::to_bits) != local.fidelity.map(f64::to_bits)
        {
            fail(format!(
                "point {index} differs between TCP and in-process results"
            ));
        }
    }
    println!("[serve-smoke] TCP sweep is bit-identical to the in-process engine");

    // Round trip 2: a second connection must be served from the warm cache.
    let mut second =
        Client::connect(&*addr).unwrap_or_else(|e| fail(format!("second connect: {e}")));
    let warm_job = second
        .submit_sweep("smoke/warm", &ham(), &strategy, &config)
        .unwrap_or_else(|e| fail(format!("second submit: {e}")));
    let warm = second
        .wait(warm_job)
        .unwrap_or_else(|e| fail(format!("second wait: {e}")));
    if warm.cache_delta.flow_solves != 0 {
        fail(format!(
            "warm-cache job performed {} flow solves (expected 0)",
            warm.cache_delta.flow_solves
        ));
    }
    match warm.outcome {
        Outcome::Sweep(sweep) => {
            for (a, b) in sweep.points.iter().zip(&cold_sweep.points) {
                if a.stats != b.stats {
                    fail("warm result differs from cold result");
                }
            }
        }
        other => fail(format!("unexpected outcome {other:?}")),
    }
    println!("[serve-smoke] second client shared the warm cache (flow_solves=0)");

    let (_, cache) = second
        .stats()
        .unwrap_or_else(|e| fail(format!("stats: {e}")));
    report_cache_stats(cache);

    if let Some(server) = local_server {
        server.shutdown();
    }
    println!("[serve-smoke] OK");
}
