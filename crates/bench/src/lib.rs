//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index). All of them accept
//! a `--full` flag (or `MARQSIM_SCALE=full`) to run at the paper's benchmark
//! sizes; the default is a reduced scale that finishes in minutes on a
//! laptop while preserving the qualitative shape of every result.

use std::time::Instant;

use marqsim_engine::{CacheStats, Engine};
use marqsim_hamlib::suite::SuiteScale;

/// Runtime scale selection shared by the binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Suite scale (benchmark sizes).
    pub suite: SuiteScale,
    /// Repetitions per configuration.
    pub repeats: usize,
    /// Whether fidelity evaluation is enabled by default.
    pub fidelity: bool,
}

/// Parses the scale from the command line / environment: `--full` or
/// `MARQSIM_SCALE=full` selects the paper-sized run.
pub fn run_scale() -> RunScale {
    let full = std::env::args().any(|a| a == "--full")
        || std::env::var("MARQSIM_SCALE")
            .map(|v| v == "full")
            .unwrap_or(false);
    if full {
        RunScale {
            suite: SuiteScale::Full,
            repeats: 10,
            fidelity: false,
        }
    } else {
        RunScale {
            suite: SuiteScale::Reduced,
            repeats: 5,
            fidelity: true,
        }
    }
}

/// Idle-connection crowd size for the `c10k_smoke` binary:
/// `MARQSIM_C10K_IDLE=<n>` overrides the default of 2000 (e.g. to run
/// under a tight `ulimit -n` locally).
pub fn c10k_idle_conns() -> usize {
    std::env::var("MARQSIM_C10K_IDLE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2000)
}

/// The fleet shared secret for the `cluster_smoke` binary:
/// `MARQSIM_SERVE_TOKEN` (the same variable `marqsim-served` honors),
/// `None` when unset or empty.
pub fn serve_token() -> Option<String> {
    std::env::var("MARQSIM_SERVE_TOKEN")
        .ok()
        .filter(|token| !token.is_empty())
}

/// Builds the engine every binary routes its compilations through
/// (`MARQSIM_THREADS` / `MARQSIM_CACHE` / `MARQSIM_CACHE_CAP` /
/// `MARQSIM_CACHE_DIR` overrides apply) and prints a one-line banner so
/// runs record their parallelism. An invalid override is a clear exit-2
/// diagnostic, never a silent fallback.
pub fn engine() -> Engine {
    match Engine::from_env() {
        Ok(engine) => {
            println!(
                "[marqsim-engine: {} worker threads, flow solver {}]",
                engine.threads(),
                engine.flow_solver()
            );
            engine
        }
        Err(error) => {
            marqsim_obs::error!("bench", "{error}");
            std::process::exit(2);
        }
    }
}

/// Emits the cache counters in the stable, grep-able one-line format
/// through the `marqsim-obs` structured logger (info level, stderr). Every
/// binary emits this before exiting; the CI smoke jobs redirect stderr into
/// their logs and assert e.g. `flow_solves=0` when `table2` reruns against
/// a warm `MARQSIM_CACHE_DIR`. The line format predates the logger and is
/// frozen: `[cache] key=value …` — new counters append at the end so the
/// existing `key=value ` greps keep matching.
pub fn report_cache_stats(stats: CacheStats) {
    marqsim_obs::info!(
        "cache",
        "hits={} misses={} component_hits={} flow_solves={} flow_solves_ssp={} flow_solves_simplex={} disk_hits={} disk_writes={} disk_errors={} evictions={} graphs={} components={} warm_starts={}",
        stats.hits,
        stats.misses,
        stats.component_hits,
        stats.flow_solves,
        stats.flow_solves_ssp,
        stats.flow_solves_simplex,
        stats.disk_hits,
        stats.disk_writes,
        stats.disk_errors,
        stats.evictions,
        stats.graphs,
        stats.components,
        stats.warm_starts,
    );
}

/// Prints a section header in a consistent format.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Times a closure and returns `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_reduced() {
        // The test binary is not passed --full.
        if std::env::var("MARQSIM_SCALE").is_err() {
            assert_eq!(run_scale().suite, SuiteScale::Reduced);
        }
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (value, secs) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.251), "25.1%");
    }
}
