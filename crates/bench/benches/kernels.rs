//! Criterion micro-benchmarks for the compiler's kernels: Pauli algebra,
//! the min-cost-flow solve, Markov sampling, spectra analysis, and
//! Pauli-rotation synthesis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use marqsim_circuit::{cancellation, synthesis, Circuit};
use marqsim_core::gate_cancel::{cnot_cost_matrix, gate_cancellation_matrix};
use marqsim_core::qdrift::qdrift_matrix;
use marqsim_hamlib::random::{random_hamiltonian, RandomHamiltonianParams};
use marqsim_markov::sample::ChainSampler;
use marqsim_markov::spectra::spectrum;
use marqsim_pauli::algebra::cnot_count_between;
use marqsim_pauli::Hamiltonian;

fn bench_hamiltonian(terms: usize) -> Hamiltonian {
    random_hamiltonian(&RandomHamiltonianParams {
        qubits: 12,
        terms,
        identity_bias: 0.6,
        seed: 77,
    })
}

fn pauli_kernels(c: &mut Criterion) {
    let ham = bench_hamiltonian(60);
    c.bench_function("pauli/cnot_cost_matrix_60_terms", |b| {
        b.iter(|| cnot_cost_matrix(&ham))
    });
    let a = &ham.term(0).string;
    let z = &ham.term(1).string;
    c.bench_function("pauli/cnot_count_between", |b| {
        b.iter(|| cnot_count_between(a, z))
    });
    c.bench_function("pauli/string_product", |b| b.iter(|| a.mul(z)));
}

fn flow_kernels(c: &mut Criterion) {
    let ham = bench_hamiltonian(60);
    c.bench_function("flow/gate_cancellation_matrix_60_terms", |b| {
        b.iter(|| gate_cancellation_matrix(&ham).unwrap())
    });
    let ham_200 = bench_hamiltonian(200);
    let mut group = c.benchmark_group("flow/larger");
    group.sample_size(10);
    group.bench_function("gate_cancellation_matrix_200_terms", |b| {
        b.iter(|| gate_cancellation_matrix(&ham_200).unwrap())
    });
    group.finish();
}

fn markov_kernels(c: &mut Criterion) {
    let ham = bench_hamiltonian(60);
    let p = qdrift_matrix(&ham);
    let pi = ham.stationary_distribution();
    let sampler = ChainSampler::new(&p, &pi);
    c.bench_function("markov/sample_10k_steps_60_states", |b| {
        b.iter(|| sampler.sample_trajectory_seeded(10_000, 3))
    });
    c.bench_function("markov/spectrum_60_states", |b| {
        let gc = gate_cancellation_matrix(&ham).unwrap();
        b.iter(|| spectrum(&gc))
    });
}

fn circuit_kernels(c: &mut Criterion) {
    let ham = bench_hamiltonian(60);
    let sequence: Vec<_> = (0..500)
        .map(|k| (ham.term(k % ham.num_terms()).string.clone(), 0.01))
        .collect();
    c.bench_function("circuit/synthesize_500_rotations", |b| {
        b.iter(|| synthesis::sequence_circuit(ham.num_qubits(), &sequence))
    });
    let circuit: Circuit = synthesis::sequence_circuit(ham.num_qubits(), &sequence);
    let mut group = c.benchmark_group("circuit/cancellation");
    group.sample_size(10);
    group.bench_function("peephole_500_rotations", |b| {
        b.iter_batched(
            || circuit.clone(),
            |c| cancellation::cancel_gates(&c),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    pauli_kernels,
    flow_kernels,
    markov_kernels,
    circuit_kernels
);
criterion_main!(benches);
