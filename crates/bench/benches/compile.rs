//! Criterion end-to-end compilation benchmarks: the full Algorithm 1 + 2
//! pipeline for each experimental configuration, plus the fidelity
//! evaluation kernel.

use criterion::{criterion_group, criterion_main, Criterion};

use marqsim_core::metrics::evaluate_fidelity;
use marqsim_core::{Compiler, CompilerConfig, TransitionStrategy};
use marqsim_hamlib::random::{random_hamiltonian, RandomHamiltonianParams};
use marqsim_hamlib::suite::{benchmark_by_name, SuiteScale};

fn end_to_end(c: &mut Criterion) {
    let ham = random_hamiltonian(&RandomHamiltonianParams {
        qubits: 10,
        terms: 100,
        identity_bias: 0.6,
        seed: 2024,
    });
    let mut group = c.benchmark_group("compile/random_10q_100terms");
    group.sample_size(10);
    for (label, strategy) in [
        ("baseline", TransitionStrategy::QDrift),
        ("marqsim_gc", TransitionStrategy::marqsim_gc()),
        ("marqsim_gc_rp", TransitionStrategy::marqsim_gc_rp()),
    ] {
        group.bench_function(label, |b| {
            let cfg = CompilerConfig::new(std::f64::consts::FRAC_PI_4, 0.05)
                .with_strategy(strategy.clone())
                .with_seed(1)
                .without_circuit();
            b.iter(|| Compiler::new(cfg.clone()).compile(&ham).unwrap())
        });
    }
    group.finish();
}

fn fidelity_kernel(c: &mut Criterion) {
    let bench = benchmark_by_name("Na+", SuiteScale::Reduced).expect("benchmark exists");
    let cfg = CompilerConfig::new(bench.time, 0.1)
        .with_strategy(TransitionStrategy::marqsim_gc())
        .with_seed(5)
        .without_circuit();
    let result = Compiler::new(cfg).compile(&bench.hamiltonian).unwrap();
    let mut group = c.benchmark_group("fidelity/na_plus_reduced");
    group.sample_size(10);
    group.bench_function("unitary_accumulation", |b| {
        b.iter(|| evaluate_fidelity(&result.hamiltonian, bench.time, &result.sequence))
    });
    group.finish();
}

criterion_group!(benches, end_to_end, fidelity_kernel);
criterion_main!(benches);
