//! The Sachdev–Ye–Kitaev (SYK) model.
//!
//! `H = Σ_{i<j<k<l} J_{ijkl} χ_i χ_j χ_k χ_l` with independent Gaussian
//! couplings `J_{ijkl}` of variance `3! J² / N³`, where the `χ_i` are
//! Majorana fermions. The paper uses SYK instances from quantum field theory
//! as two of its benchmarks (Table 1); this module generates them directly in
//! the qubit picture.
//!
//! Under Jordan–Wigner, `N = 2n` Majorana operators live on `n` qubits:
//!
//! ```text
//! χ_{2k}   = Z_0 … Z_{k-1} X_k
//! χ_{2k+1} = Z_0 … Z_{k-1} Y_k
//! ```
//!
//! A product of four distinct Majoranas is (up to a real sign) a single Pauli
//! string, so the SYK Hamiltonian is a dense sum of `C(N, 4)` Pauli strings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use marqsim_pauli::{Hamiltonian, PauliOp, PauliString, Term};

/// Parameters of the SYK generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SykParams {
    /// Number of Majorana fermions `N` (must be even and at least 4); the
    /// model uses `N / 2` qubits.
    pub majoranas: usize,
    /// Overall coupling strength `J`.
    pub coupling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SykParams {
    fn default() -> Self {
        SykParams {
            majoranas: 8,
            coupling: 1.0,
            seed: 1,
        }
    }
}

/// The Jordan–Wigner image of the Majorana operator `χ_index` on
/// `num_qubits` qubits.
///
/// # Panics
///
/// Panics if `index >= 2 * num_qubits`.
pub fn majorana_string(index: usize, num_qubits: usize) -> PauliString {
    assert!(
        index < 2 * num_qubits,
        "majorana index {index} out of range for {num_qubits} qubits"
    );
    let qubit = index / 2;
    let mut ops = vec![PauliOp::I; num_qubits];
    for q in 0..qubit {
        ops[q] = PauliOp::Z;
    }
    ops[qubit] = if index.is_multiple_of(2) {
        PauliOp::X
    } else {
        PauliOp::Y
    };
    PauliString::from_ops(ops)
}

/// Generates an SYK Hamiltonian instance.
///
/// Optionally trims the output to the `max_terms` largest couplings so the
/// benchmark sizes of Table 1 can be matched exactly.
///
/// # Panics
///
/// Panics if `majoranas` is odd or smaller than 4.
pub fn syk_hamiltonian(params: &SykParams, max_terms: Option<usize>) -> Hamiltonian {
    assert!(
        params.majoranas >= 4 && params.majoranas.is_multiple_of(2),
        "SYK needs an even number of at least 4 Majorana fermions"
    );
    let n_majorana = params.majoranas;
    let num_qubits = n_majorana / 2;
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Variance 3! J^2 / N^3 as in the standard SYK_4 definition.
    let sigma = (6.0 * params.coupling * params.coupling / (n_majorana as f64).powi(3)).sqrt();

    let chi: Vec<PauliString> = (0..n_majorana)
        .map(|i| majorana_string(i, num_qubits))
        .collect();

    let mut terms = Vec::new();
    for i in 0..n_majorana {
        for j in (i + 1)..n_majorana {
            for k in (j + 1)..n_majorana {
                for l in (k + 1)..n_majorana {
                    // Box–Muller transform for a Gaussian coupling.
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    let gaussian =
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    let coupling = sigma * gaussian;

                    // χ_i χ_j χ_k χ_l is a Pauli string up to a phase; for
                    // four distinct Majoranas the product is Hermitian, so the
                    // phase is real (±1).
                    let (p1, s1) = chi[i].mul(&chi[j]);
                    let (p2, s2) = s1.mul(&chi[k]);
                    let (p3, string) = s2.mul(&chi[l]);
                    let phase = p1 * p2 * p3;
                    debug_assert!(
                        phase.im.abs() < 1e-12,
                        "four-Majorana product must be Hermitian"
                    );
                    let coefficient = coupling * phase.re;
                    if coefficient.abs() > 1e-12 {
                        terms.push(Term::new(coefficient, string));
                    }
                }
            }
        }
    }

    if let Some(limit) = max_terms {
        terms.sort_by(|a, b| {
            b.coefficient
                .abs()
                .partial_cmp(&a.coefficient.abs())
                .expect("finite couplings")
        });
        terms.truncate(limit);
    }

    Hamiltonian::new(terms).expect("SYK instance always has terms")
}

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_linalg::Matrix;

    #[test]
    fn majorana_strings_anticommute_pairwise() {
        let num_qubits = 3;
        for i in 0..2 * num_qubits {
            for j in 0..2 * num_qubits {
                let a = majorana_string(i, num_qubits);
                let b = majorana_string(j, num_qubits);
                if i == j {
                    assert!(a.commutes_with(&b));
                } else {
                    assert!(!a.commutes_with(&b), "χ_{i} and χ_{j} must anticommute");
                }
            }
        }
    }

    #[test]
    fn majorana_strings_square_to_identity() {
        let num_qubits = 4;
        for i in 0..2 * num_qubits {
            let chi = majorana_string(i, num_qubits);
            let m = chi.to_matrix();
            assert!(m
                .matmul(&m)
                .approx_eq(&Matrix::identity(1 << num_qubits), 1e-10));
        }
    }

    #[test]
    fn term_count_is_binomial_n_choose_4() {
        let ham = syk_hamiltonian(
            &SykParams {
                majoranas: 8,
                coupling: 1.0,
                seed: 9,
            },
            None,
        );
        // C(8, 4) = 70 couplings on 4 qubits.
        assert_eq!(ham.num_qubits(), 4);
        assert!(ham.num_terms() <= 70 && ham.num_terms() >= 60);
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let ham = syk_hamiltonian(
            &SykParams {
                majoranas: 8,
                coupling: 1.0,
                seed: 2,
            },
            None,
        );
        assert!(ham.to_matrix().is_hermitian(1e-9));
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let p = SykParams {
            majoranas: 10,
            coupling: 0.5,
            seed: 77,
        };
        assert_eq!(syk_hamiltonian(&p, None), syk_hamiltonian(&p, None));
    }

    #[test]
    fn truncation_limits_the_term_count() {
        let ham = syk_hamiltonian(
            &SykParams {
                majoranas: 12,
                coupling: 1.0,
                seed: 5,
            },
            Some(210),
        );
        assert_eq!(ham.num_terms(), 210);
        assert_eq!(ham.num_qubits(), 6);
    }

    #[test]
    fn coupling_scale_controls_lambda() {
        let small = syk_hamiltonian(
            &SykParams {
                majoranas: 8,
                coupling: 0.1,
                seed: 4,
            },
            None,
        );
        let large = syk_hamiltonian(
            &SykParams {
                majoranas: 8,
                coupling: 1.0,
                seed: 4,
            },
            None,
        );
        assert!(large.lambda() > 5.0 * small.lambda());
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_majorana_count_rejected() {
        let _ = syk_hamiltonian(
            &SykParams {
                majoranas: 7,
                coupling: 1.0,
                seed: 1,
            },
            None,
        );
    }
}
