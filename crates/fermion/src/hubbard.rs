//! The one-dimensional Fermi–Hubbard model.
//!
//! `H = -t Σ_{⟨i,j⟩,σ} (a†_{iσ} a_{jσ} + h.c.) + U Σ_i n_{i↑} n_{i↓}`
//!
//! Spin-orbital layout: site `i` spin-up is mode `2i`, spin-down is mode
//! `2i + 1`, so an `L`-site chain uses `2L` qubits after Jordan–Wigner.

use marqsim_pauli::Hamiltonian;

use crate::jordan_wigner::{transform, JwError};
use crate::FermionOperator;

/// Parameters of the 1D Hubbard chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HubbardParams {
    /// Number of lattice sites.
    pub sites: usize,
    /// Hopping amplitude `t`.
    pub hopping: f64,
    /// On-site interaction `U`.
    pub interaction: f64,
    /// Whether the chain has periodic boundary conditions.
    pub periodic: bool,
}

impl Default for HubbardParams {
    fn default() -> Self {
        HubbardParams {
            sites: 4,
            hopping: 1.0,
            interaction: 4.0,
            periodic: false,
        }
    }
}

/// Builds the second-quantized Hubbard Hamiltonian.
///
/// # Panics
///
/// Panics if `sites == 0`.
pub fn hubbard_operator(params: &HubbardParams) -> FermionOperator {
    assert!(params.sites > 0, "Hubbard chain needs at least one site");
    let l = params.sites;
    let mode_up = |i: usize| 2 * i;
    let mode_down = |i: usize| 2 * i + 1;
    let mut op = FermionOperator::new(2 * l);

    // Hopping.
    let bonds: Vec<(usize, usize)> = if params.periodic && l > 2 {
        (0..l).map(|i| (i, (i + 1) % l)).collect()
    } else {
        (0..l.saturating_sub(1)).map(|i| (i, i + 1)).collect()
    };
    for (i, j) in bonds {
        op.add_hopping(mode_up(i), mode_up(j), -params.hopping);
        op.add_hopping(mode_down(i), mode_down(j), -params.hopping);
    }

    // On-site interaction U n_up n_down, expressed with ladder operators
    // a†_up a_up a†_down a_down (the two number operators commute).
    for i in 0..l {
        op.add_term(
            params.interaction,
            vec![
                crate::LadderOp::create(mode_up(i)),
                crate::LadderOp::annihilate(mode_up(i)),
                crate::LadderOp::create(mode_down(i)),
                crate::LadderOp::annihilate(mode_down(i)),
            ],
        );
    }
    op
}

/// Builds the qubit Hamiltonian of the Hubbard chain via Jordan–Wigner.
///
/// # Errors
///
/// Propagates [`JwError`] (which cannot occur for valid parameters since the
/// operator is Hermitian by construction, but is surfaced rather than
/// unwrapped).
pub fn hubbard_hamiltonian(params: &HubbardParams) -> Result<Hamiltonian, JwError> {
    transform(&hubbard_operator(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_count_is_twice_the_site_count() {
        let ham = hubbard_hamiltonian(&HubbardParams {
            sites: 3,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(ham.num_qubits(), 6);
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let ham = hubbard_hamiltonian(&HubbardParams {
            sites: 2,
            hopping: 1.0,
            interaction: 2.0,
            periodic: false,
        })
        .unwrap();
        assert!(ham.to_matrix().is_hermitian(1e-9));
    }

    #[test]
    fn single_site_has_only_interaction_terms() {
        let ham = hubbard_hamiltonian(&HubbardParams {
            sites: 1,
            hopping: 1.0,
            interaction: 4.0,
            periodic: false,
        })
        .unwrap();
        // U n_up n_down = U/4 (I - Z_up)(I - Z_down): ZZ, ZI, IZ after
        // dropping the identity.
        assert_eq!(ham.num_terms(), 3);
        for term in ham.terms() {
            assert!((term.coefficient.abs() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn periodic_chain_has_more_hopping_terms_than_open_chain() {
        let open = hubbard_hamiltonian(&HubbardParams {
            sites: 4,
            periodic: false,
            ..Default::default()
        })
        .unwrap();
        let periodic = hubbard_hamiltonian(&HubbardParams {
            sites: 4,
            periodic: true,
            ..Default::default()
        })
        .unwrap();
        assert!(periodic.num_terms() > open.num_terms());
    }

    #[test]
    fn two_site_spectrum_contains_known_energies() {
        use crate::jordan_wigner::transform_with_options;
        use marqsim_linalg::hermitian_eigen;
        // Keep the identity term so the spectrum matches the textbook
        // Fock-space energies. The two-site Hubbard model has single-particle
        // energies ±t and a half-filled ground state at
        // (U - sqrt(U^2 + 16 t^2)) / 2.
        let t = 1.0;
        let u = 4.0;
        let op = hubbard_operator(&HubbardParams {
            sites: 2,
            hopping: t,
            interaction: u,
            periodic: false,
        });
        let ham = transform_with_options(&op, false).unwrap();
        let eig = hermitian_eigen(&ham.to_matrix());
        let half_filled = (u - (u * u + 16.0 * t * t).sqrt()) / 2.0;
        for expected in [-t, t, half_filled, 0.0] {
            assert!(
                eig.eigenvalues.iter().any(|&e| (e - expected).abs() < 1e-8),
                "energy {expected} missing from spectrum {:?}",
                eig.eigenvalues
            );
        }
        // The absolute ground state over all particle sectors is the
        // single-particle bonding orbital at -t.
        assert!((eig.eigenvalues[0] + t).abs() < 1e-8);
    }
}
