//! Fermionic operators and model-Hamiltonian generators.
//!
//! The paper's benchmarks are electronic-structure Hamiltonians generated
//! with PySCF + Qiskit Nature (Jordan–Wigner mapping, frozen cores) plus SYK
//! models from quantum field theory (Table 1). Those toolchains are not
//! available to this reproduction, so this crate rebuilds the part of the
//! pipeline the compiler actually consumes:
//!
//! * [`FermionOperator`] — sums of products of creation/annihilation
//!   operators on spin-orbitals (second quantization).
//! * [`jordan_wigner`] — the Jordan–Wigner fermion-to-qubit transform,
//!   producing [`marqsim_pauli::Hamiltonian`] values.
//! * [`molecular`] — a seeded synthetic electronic-structure generator whose
//!   output has the coefficient decay and Pauli-string structure typical of
//!   small-molecule Hamiltonians (the substitution for PySCF documented in
//!   `DESIGN.md`).
//! * [`hubbard`] — the 1D Fermi–Hubbard model.
//! * [`syk`] — the Sachdev–Ye–Kitaev model with Gaussian four-Majorana
//!   couplings.
//!
//! # Example
//!
//! ```
//! use marqsim_fermion::{jordan_wigner, FermionOperator};
//!
//! // Hopping between two spin-orbitals: a†_0 a_1 + a†_1 a_0.
//! let mut op = FermionOperator::new(2);
//! op.add_one_body(0, 1, 0.5);
//! op.add_one_body(1, 0, 0.5);
//! let ham = jordan_wigner::transform(&op).unwrap();
//! assert_eq!(ham.num_qubits(), 2);
//! assert_eq!(ham.num_terms(), 2); // 0.25 XX + 0.25 YY
//! ```

mod op;

pub mod hubbard;
pub mod jordan_wigner;
pub mod molecular;
pub mod syk;

pub use op::{FermionOperator, FermionTerm, LadderOp};
