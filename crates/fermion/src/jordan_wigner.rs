//! The Jordan–Wigner fermion-to-qubit transform.
//!
//! Mode `p` maps to qubit `p`:
//!
//! ```text
//! a_p  = (X_p + iY_p)/2 · Z_{p-1} ⊗ … ⊗ Z_0
//! a†_p = (X_p − iY_p)/2 · Z_{p-1} ⊗ … ⊗ Z_0
//! ```
//!
//! Products of ladder operators expand into sums of Pauli strings with
//! complex coefficients; a Hermitian fermionic operator always collapses to a
//! real-coefficient [`Hamiltonian`]. This is the same mapping the paper's
//! benchmark pipeline uses (Jordan & Wigner [30], via Qiskit Nature).

use std::collections::HashMap;

use marqsim_linalg::Complex;
use marqsim_pauli::{Hamiltonian, ParseError, PauliOp, PauliString, Term};

use crate::{FermionOperator, LadderOp};

/// A sum of Pauli strings with complex coefficients — the intermediate
/// representation of the transform before Hermiticity collapses it to real
/// coefficients.
#[derive(Debug, Clone, Default)]
pub struct PauliSum {
    terms: HashMap<PauliString, Complex>,
}

impl PauliSum {
    /// The empty (zero) sum.
    pub fn new() -> Self {
        PauliSum::default()
    }

    /// A sum holding a single weighted string.
    pub fn single(string: PauliString, coefficient: Complex) -> Self {
        let mut s = PauliSum::new();
        s.add(string, coefficient);
        s
    }

    /// Adds `coefficient · string` to the sum.
    pub fn add(&mut self, string: PauliString, coefficient: Complex) {
        let entry = self.terms.entry(string).or_insert(Complex::ZERO);
        *entry += coefficient;
    }

    /// Adds another sum, scaled by `scale`.
    pub fn add_scaled(&mut self, other: &PauliSum, scale: Complex) {
        for (s, c) in &other.terms {
            self.add(s.clone(), *c * scale);
        }
    }

    /// Product of two sums (distributing and multiplying the Pauli strings).
    pub fn multiply(&self, other: &PauliSum) -> PauliSum {
        let mut out = PauliSum::new();
        for (sa, ca) in &self.terms {
            for (sb, cb) in &other.terms {
                let (phase, product) = sa.mul(sb);
                out.add(product, *ca * *cb * phase);
            }
        }
        out
    }

    /// Number of distinct strings currently held (including near-zero ones).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the sum holds no strings.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterator over `(string, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PauliString, &Complex)> {
        self.terms.iter()
    }
}

/// Errors produced by [`transform`].
#[derive(Debug, Clone, PartialEq)]
pub enum JwError {
    /// A coefficient retained a significant imaginary part, meaning the input
    /// fermionic operator was not Hermitian.
    NonHermitian {
        /// The offending Pauli string (textual form).
        string: String,
        /// The imaginary part found.
        imaginary: f64,
    },
    /// The transform produced no terms (all coefficients cancelled), or the
    /// result could not form a valid Hamiltonian.
    Empty(ParseError),
}

impl std::fmt::Display for JwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JwError::NonHermitian { string, imaginary } => write!(
                f,
                "non-hermitian input: term {string} has imaginary coefficient {imaginary}"
            ),
            JwError::Empty(e) => write!(f, "transform produced no usable terms: {e}"),
        }
    }
}

impl std::error::Error for JwError {}

/// Threshold below which coefficients are considered numerically zero.
const COEFF_TOL: f64 = 1e-10;

/// The Jordan–Wigner image of a single ladder operator as a [`PauliSum`].
pub fn ladder_to_pauli(op: LadderOp, num_modes: usize) -> PauliSum {
    // Z string on qubits 0..mode, X or Y on `mode`, identity above.
    let mut x_ops = vec![PauliOp::I; num_modes];
    let mut y_ops = vec![PauliOp::I; num_modes];
    for q in 0..op.mode {
        x_ops[q] = PauliOp::Z;
        y_ops[q] = PauliOp::Z;
    }
    x_ops[op.mode] = PauliOp::X;
    y_ops[op.mode] = PauliOp::Y;

    let mut sum = PauliSum::new();
    sum.add(PauliString::from_ops(x_ops), Complex::real(0.5));
    let y_coeff = if op.creation {
        Complex::new(0.0, -0.5)
    } else {
        Complex::new(0.0, 0.5)
    };
    sum.add(PauliString::from_ops(y_ops), y_coeff);
    sum
}

/// Transforms a fermionic operator into a qubit [`Hamiltonian`], dropping the
/// identity string (which only contributes a global phase to the simulation).
///
/// # Errors
///
/// Returns [`JwError::NonHermitian`] if the input operator is not Hermitian
/// (a Pauli coefficient keeps an imaginary part), or [`JwError::Empty`] if no
/// non-identity term survives.
pub fn transform(op: &FermionOperator) -> Result<Hamiltonian, JwError> {
    transform_with_options(op, true)
}

/// Like [`transform`], but keeping the identity string if
/// `drop_identity` is `false`.
///
/// # Errors
///
/// See [`transform`].
pub fn transform_with_options(
    op: &FermionOperator,
    drop_identity: bool,
) -> Result<Hamiltonian, JwError> {
    let n = op.num_modes();
    let mut total = PauliSum::new();
    for term in op.terms() {
        let mut product = PauliSum::single(PauliString::identity(n), Complex::ONE);
        for ladder in &term.operators {
            product = product.multiply(&ladder_to_pauli(*ladder, n));
        }
        total.add_scaled(&product, Complex::real(term.coefficient));
    }

    let mut terms: Vec<Term> = Vec::new();
    for (string, coeff) in total.iter() {
        if coeff.abs() < COEFF_TOL {
            continue;
        }
        if coeff.im.abs() > 1e-7 {
            return Err(JwError::NonHermitian {
                string: string.to_string(),
                imaginary: coeff.im,
            });
        }
        if drop_identity && string.is_identity() {
            continue;
        }
        terms.push(Term::new(coeff.re, string.clone()));
    }
    // Deterministic ordering: sort by descending magnitude then string text.
    terms.sort_by(|a, b| {
        b.coefficient
            .abs()
            .partial_cmp(&a.coefficient.abs())
            .expect("coefficients are finite")
            .then_with(|| a.string.to_string().cmp(&b.string.to_string()))
    });
    Hamiltonian::new(terms).map_err(JwError::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_linalg::Matrix;

    #[test]
    fn number_operator_maps_to_identity_minus_z() {
        // a†_0 a_0 = (I - Z)/2
        let mut op = FermionOperator::new(1);
        op.add_number(0, 1.0);
        let ham = transform_with_options(&op, false).unwrap();
        let m = ham.to_matrix();
        let expected = Matrix::from_real_rows(&[vec![0.0, 0.0], vec![0.0, 1.0]]);
        assert!(m.approx_eq(&expected, 1e-10));
    }

    #[test]
    fn hopping_term_maps_to_xx_plus_yy() {
        // (a†_0 a_1 + a†_1 a_0)/1 -> (X_0 X_1 + Y_0 Y_1)/2
        let mut op = FermionOperator::new(2);
        op.add_hopping(0, 1, 1.0);
        let ham = transform(&op).unwrap();
        assert_eq!(ham.num_terms(), 2);
        for term in ham.terms() {
            assert!((term.coefficient - 0.5).abs() < 1e-10);
            let s = term.string.to_string();
            assert!(s == "XX" || s == "YY", "unexpected string {s}");
        }
    }

    #[test]
    fn jw_strings_carry_z_chains() {
        // Hopping between non-adjacent modes keeps the Z string in between.
        let mut op = FermionOperator::new(4);
        op.add_hopping(0, 3, 1.0);
        let ham = transform(&op).unwrap();
        for term in ham.terms() {
            let s = term.string.to_string();
            // Qubits 1 and 2 must carry Z.
            assert_eq!(&s[1..3], "ZZ", "missing JW chain in {s}");
        }
    }

    #[test]
    fn anticommutation_is_respected_in_matrices() {
        // {a_0, a†_0} = 1: check via dense matrices of the JW images.
        let n = 2;
        let a0 = ladder_to_pauli(LadderOp::annihilate(0), n);
        let a0dag = ladder_to_pauli(LadderOp::create(0), n);
        let dense = |s: &PauliSum| {
            let dim = 1 << n;
            let mut m = Matrix::zeros(dim, dim);
            for (p, c) in s.iter() {
                m = &m + &p.to_matrix().scale(*c);
            }
            m
        };
        let ma = dense(&a0);
        let mad = dense(&a0dag);
        let anticommutator = &ma.matmul(&mad) + &mad.matmul(&ma);
        assert!(anticommutator.approx_eq(&Matrix::identity(4), 1e-10));
        // a_0 a_0 = 0.
        assert!(ma.matmul(&ma).frobenius_norm() < 1e-10);
    }

    #[test]
    fn distinct_mode_operators_anticommute() {
        let n = 3;
        let dense = |s: &PauliSum| {
            let dim = 1 << n;
            let mut m = Matrix::zeros(dim, dim);
            for (p, c) in s.iter() {
                m = &m + &p.to_matrix().scale(*c);
            }
            m
        };
        let a0 = dense(&ladder_to_pauli(LadderOp::annihilate(0), n));
        let a2dag = dense(&ladder_to_pauli(LadderOp::create(2), n));
        let anti = &a0.matmul(&a2dag) + &a2dag.matmul(&a0);
        assert!(anti.frobenius_norm() < 1e-10);
    }

    #[test]
    fn hermitian_operator_transforms_without_error() {
        let mut op = FermionOperator::new(4);
        op.add_number(0, 0.5);
        op.add_number(1, -0.25);
        op.add_hopping(0, 2, 0.3);
        op.add_hopping(1, 3, -0.2);
        // Hermitian two-body pair.
        op.add_two_body(0, 1, 1, 0, 0.7);
        let ham = transform(&op).unwrap();
        assert!(ham.num_terms() > 0);
        assert!(ham.to_matrix().is_hermitian(1e-9));
    }

    #[test]
    fn non_hermitian_operator_is_rejected() {
        let mut op = FermionOperator::new(2);
        // a†_0 a_1 alone is not Hermitian.
        op.add_one_body(0, 1, 1.0);
        assert!(matches!(
            transform(&op).unwrap_err(),
            JwError::NonHermitian { .. }
        ));
    }

    #[test]
    fn identity_only_operator_yields_empty_error() {
        // a†_0 a_0 + a_0 a†_0 = identity; with drop_identity = true nothing is left.
        let mut op = FermionOperator::new(1);
        op.add_term(1.0, vec![LadderOp::create(0), LadderOp::annihilate(0)]);
        op.add_term(1.0, vec![LadderOp::annihilate(0), LadderOp::create(0)]);
        assert!(matches!(transform(&op).unwrap_err(), JwError::Empty(_)));
        // Keeping the identity succeeds.
        let ham = transform_with_options(&op, false).unwrap();
        assert_eq!(ham.num_terms(), 1);
    }

    #[test]
    fn dense_matrix_matches_direct_fock_space_construction() {
        // Two-mode Hamiltonian: e0 n_0 + e1 n_1 + t (a†_0 a_1 + h.c.)
        let (e0, e1, t) = (0.7, -0.4, 0.3);
        let mut op = FermionOperator::new(2);
        op.add_number(0, e0);
        op.add_number(1, e1);
        op.add_hopping(0, 1, t);
        let ham = transform_with_options(&op, false).unwrap();
        let m = ham.to_matrix();
        // Fock basis |n1 n0⟩ ordered 00, 01, 10, 11 (qubit 0 = LSB).
        let expected = Matrix::from_real_rows(&[
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, e0, t, 0.0],
            vec![0.0, t, e1, 0.0],
            vec![0.0, 0.0, 0.0, e0 + e1],
        ]);
        assert!(m.approx_eq(&expected, 1e-9), "{m:?}");
    }
}
