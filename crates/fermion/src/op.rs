//! Second-quantized fermionic operators.

use std::fmt;

/// A single ladder operator: creation (`a†_mode`) or annihilation (`a_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LadderOp {
    /// The spin-orbital (mode) index.
    pub mode: usize,
    /// `true` for a creation operator `a†`, `false` for annihilation `a`.
    pub creation: bool,
}

impl LadderOp {
    /// Creation operator on `mode`.
    pub fn create(mode: usize) -> Self {
        LadderOp {
            mode,
            creation: true,
        }
    }

    /// Annihilation operator on `mode`.
    pub fn annihilate(mode: usize) -> Self {
        LadderOp {
            mode,
            creation: false,
        }
    }
}

impl fmt::Display for LadderOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.creation {
            write!(f, "a†_{}", self.mode)
        } else {
            write!(f, "a_{}", self.mode)
        }
    }
}

/// One term of a fermionic operator: a real coefficient times an ordered
/// product of ladder operators.
#[derive(Debug, Clone, PartialEq)]
pub struct FermionTerm {
    /// Real coefficient.
    pub coefficient: f64,
    /// Ladder operators, applied right-to-left (rightmost acts first), stored
    /// left-to-right.
    pub operators: Vec<LadderOp>,
}

/// A fermionic operator on a fixed number of spin-orbitals: a sum of
/// [`FermionTerm`]s.
///
/// Only the patterns needed by molecular/Hubbard/SYK Hamiltonians are given
/// convenience constructors (number operators, one-body and two-body terms),
/// but arbitrary ladder products can be added with [`Self::add_term`].
#[derive(Debug, Clone, PartialEq)]
pub struct FermionOperator {
    num_modes: usize,
    terms: Vec<FermionTerm>,
}

impl FermionOperator {
    /// Creates the zero operator on `num_modes` spin-orbitals.
    pub fn new(num_modes: usize) -> Self {
        FermionOperator {
            num_modes,
            terms: Vec::new(),
        }
    }

    /// Number of spin-orbitals (qubits after Jordan–Wigner).
    pub fn num_modes(&self) -> usize {
        self.num_modes
    }

    /// The terms of the operator.
    pub fn terms(&self) -> &[FermionTerm] {
        &self.terms
    }

    /// Adds an arbitrary ladder-product term.
    ///
    /// # Panics
    ///
    /// Panics if any mode index is out of range.
    pub fn add_term(&mut self, coefficient: f64, operators: Vec<LadderOp>) {
        for op in &operators {
            assert!(
                op.mode < self.num_modes,
                "mode {} out of range for {} modes",
                op.mode,
                self.num_modes
            );
        }
        if coefficient != 0.0 {
            self.terms.push(FermionTerm {
                coefficient,
                operators,
            });
        }
    }

    /// Adds the one-body term `coefficient · a†_p a_q`.
    pub fn add_one_body(&mut self, p: usize, q: usize, coefficient: f64) {
        self.add_term(
            coefficient,
            vec![LadderOp::create(p), LadderOp::annihilate(q)],
        );
    }

    /// Adds the two-body term `coefficient · a†_p a†_q a_r a_s`.
    pub fn add_two_body(&mut self, p: usize, q: usize, r: usize, s: usize, coefficient: f64) {
        self.add_term(
            coefficient,
            vec![
                LadderOp::create(p),
                LadderOp::create(q),
                LadderOp::annihilate(r),
                LadderOp::annihilate(s),
            ],
        );
    }

    /// Adds the number operator `coefficient · a†_p a_p`.
    pub fn add_number(&mut self, p: usize, coefficient: f64) {
        self.add_one_body(p, p, coefficient);
    }

    /// Adds a Hermitian hopping pair
    /// `coefficient · (a†_p a_q + a†_q a_p)` for `p ≠ q`.
    pub fn add_hopping(&mut self, p: usize, q: usize, coefficient: f64) {
        self.add_one_body(p, q, coefficient);
        self.add_one_body(q, p, coefficient);
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }
}

impl fmt::Display for FermionOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, term) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}", term.coefficient)?;
            for op in &term.operators {
                write!(f, " {op}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_terms() {
        let mut op = FermionOperator::new(4);
        op.add_number(2, 1.5);
        op.add_hopping(0, 1, -0.5);
        op.add_two_body(0, 1, 2, 3, 0.25);
        assert_eq!(op.num_terms(), 4);
        assert_eq!(op.terms()[0].operators.len(), 2);
        assert_eq!(op.terms()[3].operators.len(), 4);
        assert_eq!(op.terms()[1].coefficient, -0.5);
    }

    #[test]
    fn zero_coefficient_terms_are_dropped() {
        let mut op = FermionOperator::new(2);
        op.add_one_body(0, 1, 0.0);
        assert_eq!(op.num_terms(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_mode_rejected() {
        let mut op = FermionOperator::new(2);
        op.add_number(5, 1.0);
    }

    #[test]
    fn display_shows_daggers() {
        let mut op = FermionOperator::new(2);
        op.add_one_body(0, 1, 0.5);
        let text = op.to_string();
        assert!(text.contains("a†_0"));
        assert!(text.contains("a_1"));
    }
}
