//! Synthetic electronic-structure Hamiltonians.
//!
//! The paper generates its molecular benchmarks with PySCF + Qiskit Nature.
//! Neither is available here, so this module generates *pseudo-molecular*
//! Hamiltonians with the structural features that matter to the compiler:
//!
//! * a handful of dominant diagonal (number-operator / `Z`-type) terms from
//!   the one-body integrals,
//! * a long tail of smaller two-body terms whose Pauli strings carry
//!   Jordan–Wigner `Z` chains and mixed `X`/`Y` support,
//! * coefficient magnitudes spanning two to three orders of magnitude.
//!
//! The generator is fully deterministic given a seed, so every experiment in
//! the evaluation is reproducible. `DESIGN.md` documents this substitution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use marqsim_pauli::Hamiltonian;

use crate::jordan_wigner::{transform, JwError};
use crate::FermionOperator;

/// Parameters of the synthetic molecular generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MolecularParams {
    /// Number of spin-orbitals (qubits after Jordan–Wigner).
    pub spin_orbitals: usize,
    /// RNG seed; the same seed always produces the same Hamiltonian.
    pub seed: u64,
    /// Scale of the one-body (orbital energy / hopping) integrals.
    pub one_body_scale: f64,
    /// Scale of the two-body (Coulomb / exchange) integrals.
    pub two_body_scale: f64,
    /// Fraction of candidate two-body terms retained (controls the number of
    /// Pauli strings in the output).
    pub two_body_density: f64,
}

impl Default for MolecularParams {
    fn default() -> Self {
        MolecularParams {
            spin_orbitals: 8,
            seed: 1,
            one_body_scale: 1.0,
            two_body_scale: 0.35,
            two_body_density: 0.5,
        }
    }
}

/// Builds the second-quantized operator of a synthetic molecule.
///
/// # Panics
///
/// Panics if `spin_orbitals == 0` or `two_body_density` is outside `[0, 1]`.
pub fn molecular_operator(params: &MolecularParams) -> FermionOperator {
    assert!(params.spin_orbitals > 0, "need at least one spin-orbital");
    assert!(
        (0.0..=1.0).contains(&params.two_body_density),
        "two_body_density must be in [0, 1]"
    );
    let n = params.spin_orbitals;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut op = FermionOperator::new(n);

    // One-body integrals h_pq: diagonal dominated (orbital energies), with
    // hopping amplitudes decaying with |p - q|.
    for p in 0..n {
        let orbital_energy = params.one_body_scale * (1.0 + rng.gen::<f64>());
        op.add_number(p, -orbital_energy);
        for q in (p + 1)..n {
            let distance = (q - p) as f64;
            let amplitude: f64 = params.one_body_scale * rng.gen::<f64>() * 0.4 / (1.0 + distance);
            if amplitude.abs() > 1e-3 {
                op.add_hopping(p, q, amplitude);
            }
        }
    }

    // Two-body integrals: density-density terms (always kept, they produce
    // the Z-heavy backbone) plus a sampled subset of exchange-style terms
    // producing X/Y strings.
    for p in 0..n {
        for q in (p + 1)..n {
            let coulomb: f64 = params.two_body_scale * rng.gen::<f64>() / (1.0 + (q - p) as f64);
            // n_p n_q as a†_p a_p a†_q a_q.
            op.add_term(
                coulomb,
                vec![
                    crate::LadderOp::create(p),
                    crate::LadderOp::annihilate(p),
                    crate::LadderOp::create(q),
                    crate::LadderOp::annihilate(q),
                ],
            );
        }
    }
    for p in 0..n {
        for q in (p + 1)..n {
            for r in 0..n {
                for s in (r + 1)..n {
                    if (p, q) >= (r, s) {
                        continue;
                    }
                    if rng.gen::<f64>() > params.two_body_density {
                        continue;
                    }
                    let magnitude: f64 = params.two_body_scale * rng.gen::<f64>() * 0.25
                        / (1.0 + (p + q + r + s) as f64 * 0.25);
                    if magnitude.abs() < 1e-4 {
                        continue;
                    }
                    // Hermitian exchange pair a†_p a†_q a_r a_s + h.c.
                    op.add_two_body(p, q, s, r, magnitude);
                    op.add_two_body(r, s, q, p, magnitude);
                }
            }
        }
    }
    op
}

/// Builds the qubit Hamiltonian of a synthetic molecule and optionally trims
/// it to the `max_terms` largest-magnitude Pauli strings (the analogue of
/// freezing core orbitals to control the benchmark size, as in Table 1).
///
/// # Errors
///
/// Propagates [`JwError`] from the Jordan–Wigner transform.
pub fn molecular_hamiltonian(
    params: &MolecularParams,
    max_terms: Option<usize>,
) -> Result<Hamiltonian, JwError> {
    let ham = transform(&molecular_operator(params))?;
    match max_terms {
        Some(limit) if limit < ham.num_terms() => {
            let mut terms: Vec<_> = ham.terms().to_vec();
            terms.sort_by(|a, b| {
                b.coefficient
                    .abs()
                    .partial_cmp(&a.coefficient.abs())
                    .expect("finite coefficients")
            });
            terms.truncate(limit);
            Hamiltonian::new(terms).map_err(JwError::Empty)
        }
        _ => Ok(ham),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_for_a_seed() {
        let params = MolecularParams {
            spin_orbitals: 6,
            seed: 42,
            ..Default::default()
        };
        let a = molecular_hamiltonian(&params, None).unwrap();
        let b = molecular_hamiltonian(&params, None).unwrap();
        assert_eq!(a, b);
        let c = molecular_hamiltonian(&MolecularParams { seed: 43, ..params }, None).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn output_is_hermitian_and_has_expected_qubit_count() {
        let params = MolecularParams {
            spin_orbitals: 5,
            seed: 7,
            ..Default::default()
        };
        let ham = molecular_hamiltonian(&params, None).unwrap();
        assert_eq!(ham.num_qubits(), 5);
        assert!(ham.to_matrix().is_hermitian(1e-8));
    }

    #[test]
    fn coefficient_spectrum_has_dominant_and_tail_terms() {
        let params = MolecularParams {
            spin_orbitals: 8,
            seed: 3,
            ..Default::default()
        };
        let ham = molecular_hamiltonian(&params, None).unwrap();
        let mags: Vec<f64> = ham.terms().iter().map(|t| t.coefficient.abs()).collect();
        let max = mags.iter().cloned().fold(0.0, f64::max);
        let min = mags.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 10.0, "expected a wide coefficient spread");
        assert!(ham.num_terms() > 30);
    }

    #[test]
    fn term_truncation_respects_the_limit_and_keeps_largest() {
        let params = MolecularParams {
            spin_orbitals: 7,
            seed: 11,
            ..Default::default()
        };
        let full = molecular_hamiltonian(&params, None).unwrap();
        let trimmed = molecular_hamiltonian(&params, Some(40)).unwrap();
        assert_eq!(trimmed.num_terms(), 40);
        let min_kept = trimmed
            .terms()
            .iter()
            .map(|t| t.coefficient.abs())
            .fold(f64::INFINITY, f64::min);
        // Count how many full terms are at least as large as the smallest
        // kept one; it must not exceed the limit by much (ties aside).
        let larger = full
            .terms()
            .iter()
            .filter(|t| t.coefficient.abs() > min_kept + 1e-12)
            .count();
        assert!(larger < 40);
    }

    #[test]
    fn strings_include_z_heavy_and_xy_terms() {
        let params = MolecularParams {
            spin_orbitals: 6,
            seed: 5,
            ..Default::default()
        };
        let ham = molecular_hamiltonian(&params, None).unwrap();
        let has_pure_z = ham.terms().iter().any(|t| {
            t.string
                .support()
                .all(|(_, op)| op == marqsim_pauli::PauliOp::Z)
        });
        let has_xy = ham.terms().iter().any(|t| {
            t.string
                .support()
                .any(|(_, op)| op != marqsim_pauli::PauliOp::Z)
        });
        assert!(has_pure_z && has_xy);
    }
}
