//! A minimal `f64` complex scalar.
//!
//! We implement our own complex type instead of depending on `num-complex`
//! so the workspace stays within the allowed dependency set. Only the
//! operations the rest of the workspace needs are provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use marqsim_linalg::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!(z.conj(), Complex::new(3.0, -4.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * exp(i theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `exp(i theta)`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z` is exactly zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d != 0.0, "attempted to invert a zero complex number");
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance on both parts.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(1.5, -2.5);
        assert!((z + Complex::ZERO).approx_eq(z, TOL));
        assert!((z * Complex::ONE).approx_eq(z, TOL));
        assert!((z - z).approx_eq(Complex::ZERO, TOL));
        assert!((z * z.inv()).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 4.0);
        let p = a * b;
        assert!((p.re - (-2.0 - 3.0 * 4.0)).abs() < TOL);
        assert!((p.im - (2.0 * 4.0 + -3.0)).abs() < TOL);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!(((z * z.conj()).re - 25.0).abs() < TOL);
    }

    #[test]
    fn exponential_of_imaginary_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.4;
            let z = Complex::new(0.0, theta).exp();
            assert!((z.abs() - 1.0).abs() < TOL);
            assert!((z.re - theta.cos()).abs() < TOL);
            assert!((z.im - theta.sin()).abs() < TOL);
        }
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::new(-1.25, 2.5);
        let back = Complex::from_polar(z.abs(), z.arg());
        assert!(back.approx_eq(z, 1e-10));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-10));
    }

    #[test]
    fn division_inverse_relation() {
        let a = Complex::new(5.0, -1.0);
        let b = Complex::new(0.5, 2.0);
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-10));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(Complex::new(6.0, 4.0), TOL));
    }

    #[test]
    fn cis_matches_exp() {
        let theta = 0.77;
        assert!(Complex::cis(theta).approx_eq(Complex::new(0.0, theta).exp(), TOL));
    }
}
