//! Eigenvalues of general (non-symmetric) matrices.
//!
//! The spectra analysis in §5.4 of the paper (Fig. 11, Fig. 15) requires the
//! eigenvalues of Markov transition matrices, which are real but *not*
//! symmetric and may have complex eigenvalues. We compute them with the
//! standard dense approach: reduce to upper Hessenberg form with complex
//! Householder reflections, then run a shifted QR iteration (Wilkinson shift,
//! explicit Givens-based QR steps) with deflation.

use crate::{Complex, Matrix};

/// Maximum QR iterations per eigenvalue before applying an exceptional shift.
const MAX_ITERS_PER_EIGENVALUE: usize = 60;

/// Computes the eigenvalues of a general real square matrix.
///
/// The eigenvalues are returned sorted by descending magnitude, which is the
/// order used throughout the spectra analysis of the paper (the leading
/// eigenvalue of a stochastic matrix is always `1`).
///
/// # Panics
///
/// Panics if the input is not square.
///
/// # Example
///
/// ```
/// use marqsim_linalg::eigenvalues_real;
///
/// // 90-degree rotation has eigenvalues ±i.
/// let eigs = eigenvalues_real(&[vec![0.0, -1.0], vec![1.0, 0.0]]);
/// assert!((eigs[0].abs() - 1.0).abs() < 1e-10);
/// assert!(eigs[0].im.abs() > 0.9);
/// ```
pub fn eigenvalues_real(rows: &[Vec<f64>]) -> Vec<Complex> {
    let m = Matrix::from_real_rows(rows);
    eigenvalues_general(&m)
}

/// Computes the eigenvalues of a general complex square matrix.
///
/// # Panics
///
/// Panics if the input is not square.
pub fn eigenvalues_general(a: &Matrix) -> Vec<Complex> {
    assert!(a.is_square(), "eigenvalues require a square matrix");
    let n = a.rows();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![a[(0, 0)]];
    }

    let mut h = hessenberg(a);
    let mut eigs = qr_eigenvalues(&mut h);
    eigs.sort_by(|x, y| {
        y.abs()
            .partial_cmp(&x.abs())
            .expect("eigenvalue magnitudes must be finite")
    });
    eigs
}

/// Reduces a square complex matrix to upper Hessenberg form via Householder
/// reflections (similarity transform, eigenvalues preserved).
fn hessenberg(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Build the Householder vector for column k, rows k+1..n.
        let mut x: Vec<Complex> = (k + 1..n).map(|i| h[(i, k)]).collect();
        let norm_x = x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm_x < 1e-300 {
            continue;
        }
        let alpha = if x[0].abs() > 1e-300 {
            -(x[0] / x[0].abs()) * norm_x
        } else {
            Complex::real(-norm_x)
        };
        x[0] -= alpha;
        let vnorm_sq: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sq < 1e-300 {
            continue;
        }
        let v = x;
        let beta = 2.0 / vnorm_sq;

        // Apply P = I - beta v v^H from the left: rows k+1..n.
        for j in 0..n {
            let mut dot = Complex::ZERO;
            for (idx, i) in (k + 1..n).enumerate() {
                dot += v[idx].conj() * h[(i, j)];
            }
            let dot = dot.scale(beta);
            for (idx, i) in (k + 1..n).enumerate() {
                h[(i, j)] -= v[idx] * dot;
            }
        }
        // Apply P from the right: columns k+1..n.
        for i in 0..n {
            let mut dot = Complex::ZERO;
            for (idx, j) in (k + 1..n).enumerate() {
                dot += h[(i, j)] * v[idx];
            }
            let dot = dot.scale(beta);
            for (idx, j) in (k + 1..n).enumerate() {
                h[(i, j)] -= dot * v[idx].conj();
            }
        }
        // Explicitly zero the annihilated entries to suppress round-off noise.
        h[(k + 1, k)] = alpha;
        for i in (k + 2)..n {
            h[(i, k)] = Complex::ZERO;
        }
    }
    h
}

/// Wilkinson shift: the eigenvalue of the trailing 2x2 block closest to the
/// bottom-right entry.
fn wilkinson_shift(h: &Matrix, m: usize) -> Complex {
    let a = h[(m - 2, m - 2)];
    let b = h[(m - 2, m - 1)];
    let c = h[(m - 1, m - 2)];
    let d = h[(m - 1, m - 1)];
    let tr = a + d;
    let disc = ((a - d) * (a - d) + b * c * 4.0).sqrt();
    let l1 = (tr + disc) * 0.5;
    let l2 = (tr - disc) * 0.5;
    if (l1 - d).abs() < (l2 - d).abs() {
        l1
    } else {
        l2
    }
}

/// Runs shifted QR iteration with deflation on an upper Hessenberg matrix and
/// returns its eigenvalues.
fn qr_eigenvalues(h: &mut Matrix) -> Vec<Complex> {
    let n = h.rows();
    let mut eigs = Vec::with_capacity(n);
    let mut m = n; // Active block is rows/cols 0..m.
    let mut iter_count = 0usize;
    let eps = 1e-14;

    while m > 0 {
        if m == 1 {
            eigs.push(h[(0, 0)]);
            m = 0;
            continue;
        }
        // Deflate if the last subdiagonal entry of the active block is tiny.
        let sub = h[(m - 1, m - 2)].abs();
        let scale = h[(m - 1, m - 1)].abs() + h[(m - 2, m - 2)].abs();
        if sub <= eps * scale.max(1e-30) {
            eigs.push(h[(m - 1, m - 1)]);
            m -= 1;
            iter_count = 0;
            continue;
        }
        // If the active block has collapsed to 2x2 and refuses to deflate
        // numerically, solve it directly.
        if m == 2 || iter_count >= 3 * MAX_ITERS_PER_EIGENVALUE {
            if m == 2 {
                let (l1, l2) = eig_2x2(h[(0, 0)], h[(0, 1)], h[(1, 0)], h[(1, 1)]);
                eigs.push(l1);
                eigs.push(l2);
                m = 0;
                continue;
            }
            // Last-resort: accept the trailing 2x2 block eigenvalues.
            let (l1, l2) = eig_2x2(
                h[(m - 2, m - 2)],
                h[(m - 2, m - 1)],
                h[(m - 1, m - 2)],
                h[(m - 1, m - 1)],
            );
            eigs.push(l1);
            eigs.push(l2);
            m -= 2;
            iter_count = 0;
            continue;
        }

        iter_count += 1;
        // Occasionally use an exceptional shift to break symmetry stalls.
        let mu = if iter_count.is_multiple_of(MAX_ITERS_PER_EIGENVALUE) {
            h[(m - 1, m - 2)] * 1.5 + h[(m - 1, m - 1)]
        } else {
            wilkinson_shift(h, m)
        };

        qr_step(h, m, mu);
    }
    eigs
}

/// Eigenvalues of a 2x2 complex matrix.
fn eig_2x2(a: Complex, b: Complex, c: Complex, d: Complex) -> (Complex, Complex) {
    let tr = a + d;
    let disc = ((a - d) * (a - d) + b * c * 4.0).sqrt();
    ((tr + disc) * 0.5, (tr - disc) * 0.5)
}

/// One explicit single-shift QR step restricted to the leading `m × m` block
/// of the Hessenberg matrix, using complex Givens rotations.
fn qr_step(h: &mut Matrix, m: usize, mu: Complex) {
    let n = h.cols();
    // A = H - mu I (active block only).
    for i in 0..m {
        h[(i, i)] -= mu;
    }
    // QR factorization by Givens rotations; remember them to form RQ.
    let mut rotations: Vec<(Complex, Complex)> = Vec::with_capacity(m.saturating_sub(1));
    for k in 0..m - 1 {
        let x1 = h[(k, k)];
        let x2 = h[(k + 1, k)];
        let r = (x1.norm_sqr() + x2.norm_sqr()).sqrt();
        let (g1, g2) = if r < 1e-300 {
            (Complex::ONE, Complex::ZERO)
        } else {
            (x1.conj() / r, x2.conj() / r)
        };
        // Rows k, k+1 <- G * rows, where G = [[g1, g2], [-conj(g2), conj(g1)]].
        for j in k..n.min(m) {
            let a = h[(k, j)];
            let b = h[(k + 1, j)];
            h[(k, j)] = g1 * a + g2 * b;
            h[(k + 1, j)] = -(g2.conj()) * a + g1.conj() * b;
        }
        rotations.push((g1, g2));
    }
    // R Q: apply the adjoint rotations from the right.
    for (k, (g1, g2)) in rotations.iter().enumerate() {
        let top = (k + 2).min(m);
        for i in 0..top {
            let a = h[(i, k)];
            let b = h[(i, k + 1)];
            // Columns k, k+1 <- columns * G^H.
            h[(i, k)] = a * g1.conj() + b * g2.conj();
            h[(i, k + 1)] = -(a * *g2) + b * *g1;
        }
    }
    // Add the shift back.
    for i in 0..m {
        h[(i, i)] += mu;
    }
    // Clean round-off below the first subdiagonal in the active block.
    for i in 2..m {
        for j in 0..i - 1 {
            h[(i, j)] = Complex::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real_parts(eigs: &[Complex]) -> Vec<f64> {
        let mut v: Vec<f64> = eigs.iter().map(|z| z.re).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn diagonal_matrix() {
        let eigs = eigenvalues_real(&[
            vec![2.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 0.5],
        ]);
        let re = sorted_real_parts(&eigs);
        assert!((re[0] + 1.0).abs() < 1e-10);
        assert!((re[1] - 0.5).abs() < 1e-10);
        assert!((re[2] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn upper_triangular_eigenvalues_are_diagonal() {
        let eigs = eigenvalues_real(&[
            vec![1.0, 5.0, -3.0],
            vec![0.0, 4.0, 2.0],
            vec![0.0, 0.0, -2.0],
        ]);
        let re = sorted_real_parts(&eigs);
        assert!((re[0] + 2.0).abs() < 1e-8);
        assert!((re[1] - 1.0).abs() < 1e-8);
        assert!((re[2] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn rotation_matrix_has_imaginary_eigenvalues() {
        let eigs = eigenvalues_real(&[vec![0.0, -1.0], vec![1.0, 0.0]]);
        assert_eq!(eigs.len(), 2);
        for e in &eigs {
            assert!(e.re.abs() < 1e-10);
            assert!((e.im.abs() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn qdrift_style_rank_one_stochastic_matrix() {
        // Every row equal to pi: eigenvalues are 1 and 0 (multiplicity n-1).
        let pi = [0.5, 0.25, 0.2, 0.05];
        let rows: Vec<Vec<f64>> = (0..4).map(|_| pi.to_vec()).collect();
        let eigs = eigenvalues_real(&rows);
        assert!((eigs[0].abs() - 1.0).abs() < 1e-10);
        for e in &eigs[1..] {
            assert!(e.abs() < 1e-8);
        }
    }

    #[test]
    fn paper_example_2_1_transition_matrix_has_unit_leading_eigenvalue() {
        // The 4-state Markov chain from Example 2.1 / Fig. 4 of the paper.
        let p = vec![
            vec![0.0, 0.8, 0.0, 0.2],
            vec![0.5, 0.0, 0.5, 0.0],
            vec![0.5, 0.0, 0.2, 0.3],
            vec![0.4, 0.0, 0.6, 0.0],
        ];
        let eigs = eigenvalues_real(&p);
        assert!((eigs[0].abs() - 1.0).abs() < 1e-8);
        for e in &eigs[1..] {
            assert!(e.abs() <= 1.0 + 1e-8);
        }
    }

    #[test]
    fn companion_matrix_roots() {
        // Companion matrix of x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
        let eigs = eigenvalues_real(&[
            vec![6.0, -11.0, 6.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
        ]);
        let re = sorted_real_parts(&eigs);
        assert!((re[0] - 1.0).abs() < 1e-7);
        assert!((re[1] - 2.0).abs() < 1e-7);
        assert!((re[2] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn symmetric_matrix_matches_jacobi_solver() {
        let rows = vec![
            vec![2.0, 1.0, 0.0, 0.3],
            vec![1.0, -1.0, 0.5, 0.0],
            vec![0.0, 0.5, 3.0, -0.7],
            vec![0.3, 0.0, -0.7, 0.25],
        ];
        let general = eigenvalues_real(&rows);
        let herm = crate::hermitian_eigen(&Matrix::from_real_rows(&rows));
        let mut from_general: Vec<f64> = general.iter().map(|z| z.re).collect();
        from_general.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, h) in from_general.iter().zip(herm.eigenvalues.iter()) {
            assert!((g - h).abs() < 1e-7, "mismatch {g} vs {h}");
        }
        // Imaginary parts of a symmetric matrix's eigenvalues vanish.
        for e in &general {
            assert!(e.im.abs() < 1e-7);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let rows = vec![
            vec![0.1, 0.9, 0.0, 0.0, 0.0],
            vec![0.2, 0.1, 0.7, 0.0, 0.0],
            vec![0.0, 0.3, 0.3, 0.4, 0.0],
            vec![0.0, 0.0, 0.5, 0.2, 0.3],
            vec![0.6, 0.0, 0.0, 0.1, 0.3],
        ];
        let trace: f64 = (0..5).map(|i| rows[i][i]).sum();
        let eigs = eigenvalues_real(&rows);
        let eig_sum: Complex = eigs.iter().copied().sum();
        assert!((eig_sum.re - trace).abs() < 1e-7);
        assert!(eig_sum.im.abs() < 1e-7);
    }

    #[test]
    fn larger_stochastic_matrix_spectrum_bounded_by_one() {
        // Deterministic pseudo-random row-stochastic matrix.
        let n = 24;
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 + 0.001
        };
        let mut rows = vec![vec![0.0; n]; n];
        for r in rows.iter_mut() {
            let mut sum = 0.0;
            for x in r.iter_mut() {
                *x = next();
                sum += *x;
            }
            for x in r.iter_mut() {
                *x /= sum;
            }
        }
        let eigs = eigenvalues_real(&rows);
        assert_eq!(eigs.len(), n);
        assert!((eigs[0].abs() - 1.0).abs() < 1e-6);
        for e in &eigs {
            assert!(e.abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn single_entry_matrix() {
        let eigs = eigenvalues_real(&[vec![4.2]]);
        assert_eq!(eigs.len(), 1);
        assert!((eigs[0].re - 4.2).abs() < 1e-12);
    }
}
