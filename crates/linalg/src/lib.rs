//! Dense complex linear algebra for the MarQSim reproduction.
//!
//! The paper's evaluation relies on NumPy/PyTorch for all numerics (unitary
//! accumulation, matrix exponentials for the exact reference evolution, and
//! eigenvalue computations for the transition-matrix spectra analysis in
//! §5.4). This crate provides those facilities from scratch:
//!
//! * [`Complex`] — a `f64`-based complex scalar.
//! * [`Matrix`] — a dense, row-major complex matrix with the usual algebra
//!   (multiplication, adjoint, trace, Kronecker products, norms).
//! * [`expm`] — matrix exponential via scaling-and-squaring with a truncated
//!   Taylor series, accurate for the skew-Hermitian exponents `iHt` used in
//!   quantum simulation.
//! * [`hermitian_eig`] — a cyclic Jacobi eigensolver for complex Hermitian
//!   matrices (used for exact spectral decompositions in tests).
//! * [`general_eig`] — eigenvalues of general real matrices via Hessenberg
//!   reduction followed by shifted complex QR iteration (used for the Markov
//!   transition-matrix spectra of §5.4 / Fig. 11 / Fig. 15).
//! * [`solve`] — LU factorization with partial pivoting and linear solves
//!   (used for stationary-distribution computation).
//!
//! # Example
//!
//! ```
//! use marqsim_linalg::{Complex, Matrix};
//!
//! let x = Matrix::from_rows(&[
//!     vec![Complex::ZERO, Complex::ONE],
//!     vec![Complex::ONE, Complex::ZERO],
//! ]);
//! let id = &x * &x;
//! assert!((id.trace() - Complex::new(2.0, 0.0)).abs() < 1e-12);
//! ```

mod complex;
mod general_eig;
mod hermitian_eig;
mod matrix;
mod solve;
mod vector;

pub mod expm;

pub use complex::Complex;
pub use general_eig::{eigenvalues_general, eigenvalues_real};
pub use hermitian_eig::{hermitian_eigen, HermitianEigen};
pub use matrix::Matrix;
pub use solve::{lu_decompose, lu_solve, solve_linear, LuDecomposition, SolveError};
pub use vector::{axpy, dot, norm2, normalize, scale, CVector};
