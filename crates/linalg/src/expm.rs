//! Matrix exponential via scaling-and-squaring with a truncated Taylor series.
//!
//! The exact reference evolution `U = exp(iHt)` used to evaluate unitary
//! fidelity (§6.1 of the paper) requires a dense matrix exponential. The
//! exponent `iHt` is skew-Hermitian, so the exponential is unitary and the
//! scaling-and-squaring approach is numerically benign: we scale the exponent
//! by `2^{-s}` until its norm is below a threshold, evaluate a Taylor series
//! to machine precision, and square the result `s` times.

use crate::{Complex, Matrix};

/// Number of Taylor terms used after scaling. With `‖A‖ ≤ 0.5` this reaches
/// machine precision comfortably (0.5^20 / 20! ≈ 4e-25).
const TAYLOR_TERMS: usize = 20;

/// Target norm after scaling.
const SCALE_TARGET: f64 = 0.5;

/// Computes the matrix exponential `exp(A)` of a square complex matrix.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Example
///
/// ```
/// use marqsim_linalg::{expm, Complex, Matrix};
///
/// // exp(i theta Z) = diag(e^{i theta}, e^{-i theta})
/// let theta = 0.3_f64;
/// let a = Matrix::diagonal(&[Complex::new(0.0, theta), Complex::new(0.0, -theta)]);
/// let u = expm::expm(&a);
/// assert!((u[(0, 0)].re - theta.cos()).abs() < 1e-12);
/// assert!((u[(0, 0)].im - theta.sin()).abs() < 1e-12);
/// ```
pub fn expm(a: &Matrix) -> Matrix {
    assert!(a.is_square(), "matrix exponential requires a square matrix");
    let n = a.rows();
    let norm = a.one_norm();
    // Choose s so that ‖A / 2^s‖ <= SCALE_TARGET.
    let s = if norm <= SCALE_TARGET {
        0
    } else {
        (norm / SCALE_TARGET).log2().ceil() as u32
    };
    let scaled = a.scale_real(1.0 / (2f64.powi(s as i32)));

    // Taylor series: exp(B) = Σ B^k / k!
    let mut result = Matrix::identity(n);
    let mut term = Matrix::identity(n);
    for k in 1..=TAYLOR_TERMS {
        term = term.matmul(&scaled).scale_real(1.0 / k as f64);
        result = &result + &term;
        if term.max_abs() < 1e-18 {
            break;
        }
    }

    // Undo the scaling by repeated squaring.
    for _ in 0..s {
        result = result.matmul(&result);
    }
    result
}

/// Computes `exp(i * t * H)` for a Hermitian matrix `H`.
///
/// This is the exact target unitary of quantum Hamiltonian simulation.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn expm_i_hermitian(h: &Matrix, t: f64) -> Matrix {
    assert!(h.is_square(), "expected a square Hamiltonian matrix");
    let exponent = h.scale(Complex::new(0.0, t));
    expm(&exponent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> Matrix {
        Matrix::from_real_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]])
    }

    fn pauli_y() -> Matrix {
        Matrix::from_rows(&[
            vec![Complex::ZERO, Complex::new(0.0, -1.0)],
            vec![Complex::new(0.0, 1.0), Complex::ZERO],
        ])
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Matrix::zeros(4, 4);
        assert!(expm(&z).approx_eq(&Matrix::identity(4), 1e-14));
    }

    #[test]
    fn exp_of_diagonal_is_entrywise_exp() {
        let d = Matrix::diagonal(&[
            Complex::new(0.2, 0.0),
            Complex::new(-1.0, 0.5),
            Complex::new(0.0, 2.0),
        ]);
        let e = expm(&d);
        for i in 0..3 {
            assert!(e[(i, i)].approx_eq(d[(i, i)].exp(), 1e-12));
        }
        assert!(e[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn exp_i_theta_pauli_matches_euler_formula() {
        // exp(i theta P) = cos(theta) I + i sin(theta) P for P^2 = I
        for theta in [0.1, 0.7, 1.9, 3.5] {
            for p in [pauli_x(), pauli_y()] {
                let u = expm_i_hermitian(&p, theta);
                let expected = &Matrix::identity(2).scale_real(theta.cos())
                    + &p.scale(Complex::new(0.0, theta.sin()));
                assert!(u.approx_eq(&expected, 1e-10), "theta={theta}");
            }
        }
    }

    #[test]
    fn exponential_of_skew_hermitian_is_unitary() {
        // Random-ish Hermitian matrix.
        let h = Matrix::from_fn(4, 4, |i, j| {
            if i == j {
                Complex::real((i as f64) - 1.5)
            } else if i < j {
                Complex::new(0.3 * (i + j) as f64, 0.1 * (j as f64 - i as f64))
            } else {
                Complex::new(0.3 * (i + j) as f64, -0.1 * (i as f64 - j as f64))
            }
        });
        assert!(h.is_hermitian(1e-12));
        let u = expm_i_hermitian(&h, 0.9);
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn additivity_for_commuting_exponents() {
        // exp(A) exp(B) = exp(A + B) when [A, B] = 0 (both diagonal here).
        let a = Matrix::diagonal(&[Complex::new(0.0, 0.4), Complex::new(0.0, -0.2)]);
        let b = Matrix::diagonal(&[Complex::new(0.0, 1.1), Complex::new(0.0, 0.3)]);
        let lhs = expm(&a).matmul(&expm(&b));
        let rhs = expm(&(&a + &b));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn large_norm_exponent_is_handled_by_scaling() {
        let h = pauli_x().scale_real(25.0);
        let u = expm_i_hermitian(&h, 1.0);
        assert!(u.is_unitary(1e-8));
        // exp(25 i X) = cos(25) I + i sin(25) X
        assert!((u[(0, 0)].re - 25f64.cos()).abs() < 1e-8);
        assert!((u[(0, 1)].im - 25f64.sin()).abs() < 1e-8);
    }

    #[test]
    fn inverse_is_exponential_of_negation() {
        let h = pauli_y().scale_real(1.3);
        let u = expm_i_hermitian(&h, 1.0);
        let uinv = expm_i_hermitian(&h, -1.0);
        assert!(u.matmul(&uinv).approx_eq(&Matrix::identity(2), 1e-10));
    }
}
