//! Complex vector helpers.
//!
//! State vectors in the simulator and eigenvectors in the eigensolvers are
//! plain `Vec<Complex>`; this module provides the handful of BLAS-1 style
//! operations the workspace needs.

use crate::Complex;

/// A complex column vector, stored densely.
pub type CVector = Vec<Complex>;

/// Hermitian inner product `⟨a, b⟩ = Σ conj(a_i) b_i`.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Example
///
/// ```
/// use marqsim_linalg::{dot, Complex};
/// let a = vec![Complex::ONE, Complex::I];
/// let b = vec![Complex::ONE, Complex::I];
/// assert!((dot(&a, &b).re - 2.0).abs() < 1e-12);
/// ```
pub fn dot(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "dot product of mismatched lengths");
    a.iter()
        .zip(b.iter())
        .fold(Complex::ZERO, |acc, (&x, &y)| acc + x.conj() * y)
}

/// Euclidean (L2) norm of a complex vector.
pub fn norm2(a: &[Complex]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Normalizes `a` in place to unit L2 norm and returns the original norm.
///
/// If the vector has (near-)zero norm it is left untouched and `0.0` is
/// returned.
pub fn normalize(a: &mut [Complex]) -> f64 {
    let n = norm2(a);
    if n > 1e-300 {
        for z in a.iter_mut() {
            *z = *z / n;
        }
    }
    n
}

/// `y ← y + alpha * x` (complex axpy).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn axpy(alpha: Complex, x: &[Complex], y: &mut [Complex]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales every entry of `x` by `alpha` in place.
pub fn scale(alpha: Complex, x: &mut [Complex]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_is_conjugate_linear_in_first_argument() {
        let a = vec![Complex::new(1.0, 2.0), Complex::new(-0.5, 0.25)];
        let b = vec![Complex::new(0.3, -1.0), Complex::new(2.0, 2.0)];
        let alpha = Complex::new(0.0, 1.0);
        let scaled: Vec<Complex> = a.iter().map(|&z| alpha * z).collect();
        let lhs = dot(&scaled, &b);
        let rhs = alpha.conj() * dot(&a, &b);
        assert!(lhs.approx_eq(rhs, 1e-12));
    }

    #[test]
    fn norm_of_unit_basis_vector() {
        let mut e = vec![Complex::ZERO; 8];
        e[3] = Complex::new(0.0, 1.0);
        assert!((norm2(&e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec![Complex::new(3.0, 0.0), Complex::new(0.0, 4.0)];
        let original = normalize(&mut v);
        assert!((original - 5.0).abs() < 1e-12);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_leaves_zero_vector_alone() {
        let mut v = vec![Complex::ZERO; 4];
        assert_eq!(normalize(&mut v), 0.0);
        assert!(v.iter().all(|z| *z == Complex::ZERO));
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![Complex::ONE, Complex::I];
        let mut y = vec![Complex::new(1.0, 1.0), Complex::ZERO];
        axpy(Complex::new(2.0, 0.0), &x, &mut y);
        assert!(y[0].approx_eq(Complex::new(3.0, 1.0), 1e-12));
        assert!(y[1].approx_eq(Complex::new(0.0, 2.0), 1e-12));
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![Complex::ONE, Complex::new(2.0, -1.0)];
        scale(Complex::I, &mut x);
        assert!(x[0].approx_eq(Complex::I, 1e-12));
        assert!(x[1].approx_eq(Complex::new(1.0, 2.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&[Complex::ONE], &[Complex::ONE, Complex::ZERO]);
    }
}
