//! LU factorization with partial pivoting and linear solves.
//!
//! Used to compute stationary distributions of Markov transition matrices
//! (solving the singular-but-constrained system `π P = π`, `Σ π_i = 1`) and
//! as a building block in tests.

use std::fmt;

use crate::{Complex, Matrix};

/// Errors produced by the linear solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is (numerically) singular: no pivot larger than the
    /// tolerance could be found in some column.
    Singular {
        /// The elimination step at which the failure occurred.
        column: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    DimensionMismatch,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { column } => {
                write!(f, "matrix is singular at elimination column {column}")
            }
            SolveError::DimensionMismatch => write!(f, "dimension mismatch in linear solve"),
        }
    }
}

impl std::error::Error for SolveError {}

/// The result of an LU factorization with partial pivoting: `P A = L U`.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined storage: the strict lower triangle holds `L` (unit diagonal
    /// implied), the upper triangle holds `U`.
    lu: Matrix,
    /// Row permutation applied to `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1` or `-1`), used for determinants.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the precomputed factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, SolveError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveError::DimensionMismatch);
        }
        // Apply permutation.
        let mut y: Vec<Complex> = (0..n).map(|i| b[self.perm[i]]).collect();
        // Forward substitution with unit lower triangle.
        for i in 0..n {
            for j in 0..i {
                let lij = self.lu[(i, j)];
                let yj = y[j];
                y[i] -= lij * yj;
            }
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let uij = self.lu[(i, j)];
                let yj = y[j];
                y[i] -= uij * yj;
            }
            y[i] /= self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> Complex {
        let mut det = Complex::real(self.perm_sign);
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Computes the LU factorization of a square matrix with partial pivoting.
///
/// # Errors
///
/// Returns [`SolveError::Singular`] if no acceptable pivot exists at some
/// elimination step.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn lu_decompose(a: &Matrix) -> Result<LuDecomposition, SolveError> {
    assert!(a.is_square(), "LU factorization requires a square matrix");
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut perm_sign = 1.0;

    for k in 0..n {
        // Find pivot.
        let mut pivot_row = k;
        let mut pivot_val = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = i;
            }
        }
        if pivot_val < 1e-300 {
            return Err(SolveError::Singular { column: k });
        }
        if pivot_row != k {
            lu.swap_rows(pivot_row, k);
            perm.swap(pivot_row, k);
            perm_sign = -perm_sign;
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / pivot;
            lu[(i, k)] = factor;
            for j in (k + 1)..n {
                let ukj = lu[(k, j)];
                lu[(i, j)] -= factor * ukj;
            }
        }
    }

    Ok(LuDecomposition {
        lu,
        perm,
        perm_sign,
    })
}

/// Solves `A x = b` for a square complex matrix `A`.
///
/// Convenience wrapper around [`lu_decompose`] + [`LuDecomposition::solve`].
///
/// # Errors
///
/// Returns an error if `A` is singular or the dimensions do not match.
pub fn solve_linear(a: &Matrix, b: &[Complex]) -> Result<Vec<Complex>, SolveError> {
    lu_decompose(a)?.solve(b)
}

/// Solves `A x = b` reusing an existing factorization (alias for
/// [`LuDecomposition::solve`], provided for discoverability).
///
/// # Errors
///
/// Returns an error if the dimensions do not match.
pub fn lu_solve(lu: &LuDecomposition, b: &[Complex]) -> Result<Vec<Complex>, SolveError> {
    lu.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[Complex], b: &[Complex]) -> f64 {
        let ax = a.mul_vec(x);
        ax.iter()
            .zip(b.iter())
            .map(|(p, q)| (*p - *q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_small_real_system() {
        let a = Matrix::from_real_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let b = vec![Complex::real(1.0), Complex::real(2.0), Complex::real(3.0)];
        let x = solve_linear(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solves_complex_system() {
        let a = Matrix::from_rows(&[
            vec![Complex::new(2.0, 1.0), Complex::new(0.0, -1.0)],
            vec![Complex::new(1.0, 0.0), Complex::new(3.0, 2.0)],
        ]);
        let b = vec![Complex::new(1.0, 1.0), Complex::new(-2.0, 0.5)];
        let x = solve_linear(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_real_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = vec![Complex::real(5.0), Complex::real(7.0)];
        let x = solve_linear(&a, &b).unwrap();
        assert!(x[0].approx_eq(Complex::real(7.0), 1e-12));
        assert!(x[1].approx_eq(Complex::real(5.0), 1e-12));
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_real_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let err = lu_decompose(&a).unwrap_err();
        assert!(matches!(err, SolveError::Singular { .. }));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::identity(3);
        let lu = lu_decompose(&a).unwrap();
        assert_eq!(
            lu.solve(&[Complex::ONE]).unwrap_err(),
            SolveError::DimensionMismatch
        );
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Matrix::diagonal(&[Complex::real(2.0), Complex::real(3.0), Complex::I]);
        let lu = lu_decompose(&a).unwrap();
        assert!(lu.determinant().approx_eq(Complex::new(0.0, 6.0), 1e-12));
    }

    #[test]
    fn determinant_changes_sign_with_row_swap() {
        let a = Matrix::from_real_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = lu_decompose(&a).unwrap();
        assert!(lu.determinant().approx_eq(Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn reuse_factorization_for_multiple_right_hand_sides() {
        let a = Matrix::from_real_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let lu = lu_decompose(&a).unwrap();
        for rhs in [[1.0, 0.0], [0.0, 1.0], [2.5, -1.0]] {
            let b = vec![Complex::real(rhs[0]), Complex::real(rhs[1])];
            let x = lu_solve(&lu, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }
}
