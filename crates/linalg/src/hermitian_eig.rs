//! Cyclic Jacobi eigensolver for complex Hermitian matrices.
//!
//! Hermitian eigendecompositions are used in the test suite to cross-check
//! the matrix exponential (`exp(iHt) = V exp(i diag(λ) t) V†`) and to analyse
//! reversible Markov chains. The cyclic Jacobi method is simple, numerically
//! robust, and more than fast enough for the matrix sizes in this workspace
//! (up to a few hundred rows).

use crate::{Complex, Matrix};

/// The eigendecomposition of a Hermitian matrix `A = V diag(λ) V†`.
#[derive(Debug, Clone)]
pub struct HermitianEigen {
    /// Real eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: Matrix,
}

impl HermitianEigen {
    /// Reconstructs the original matrix `V diag(λ) V†` (useful in tests).
    pub fn reconstruct(&self) -> Matrix {
        let d = Matrix::diagonal(
            &self
                .eigenvalues
                .iter()
                .map(|&l| Complex::real(l))
                .collect::<Vec<_>>(),
        );
        self.eigenvectors
            .matmul(&d)
            .matmul(&self.eigenvectors.adjoint())
    }
}

/// Maximum number of Jacobi sweeps before giving up. Convergence is normally
/// reached in well under 15 sweeps.
const MAX_SWEEPS: usize = 100;

/// Computes the full eigendecomposition of a complex Hermitian matrix using
/// the cyclic Jacobi method.
///
/// # Panics
///
/// Panics if `a` is not square or not Hermitian (within `1e-8`).
///
/// # Example
///
/// ```
/// use marqsim_linalg::{hermitian_eigen, Matrix};
///
/// let a = Matrix::from_real_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = hermitian_eigen(&a);
/// assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-10);
/// assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-10);
/// ```
pub fn hermitian_eigen(a: &Matrix) -> HermitianEigen {
    assert!(a.is_square(), "eigendecomposition requires a square matrix");
    assert!(
        a.is_hermitian(1e-8),
        "hermitian_eigen requires a Hermitian matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let off_diag_norm = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[(i, j)].norm_sqr();
                }
            }
        }
        s.sqrt()
    };

    let scale = m.frobenius_norm().max(1e-300);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        if off_diag_norm(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                let r = apq.abs();
                if r <= tol / (n as f64) {
                    continue;
                }
                let phi = apq.arg();
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                // Angle that annihilates the (p, q) entry of the phase-rotated
                // 2x2 block.
                let theta = 0.5 * (2.0 * r).atan2(aqq - app);
                let c = theta.cos();
                let s = theta.sin();
                let e_m = Complex::cis(-phi);
                let e_p = Complex::cis(phi);

                // J has columns:
                //   col p: (…, J_pp = c, J_qp = -s e^{-i phi}, …)
                //   col q: (…, J_pq = s, J_qq =  c e^{-i phi}, …)
                // Update A <- J^H A J, applied as column then row updates.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = akp * c - akq * (s * e_m);
                    m[(k, q)] = akp * s + akq * (c * e_m);
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = apk * c - aqk * (s * e_p);
                    m[(q, k)] = apk * s + aqk * (c * e_p);
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * c - vkq * (s * e_m);
                    v[(k, q)] = vkp * s + vkq * (c * e_m);
                }
            }
        }
    }

    // Collect eigenvalues and sort ascending, permuting eigenvectors along.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("eigenvalues must be finite"));

    let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let eigenvectors = Matrix::from_fn(n, n, |i, j| v[(i, pairs[j].1)]);

    HermitianEigen {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_like_hermitian(n: usize, seed: u64) -> Matrix {
        // Deterministic pseudo-random Hermitian matrix without external deps.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::real(next() * 4.0);
            for j in (i + 1)..n {
                let z = Complex::new(next(), next());
                m[(i, j)] = z;
                m[(j, i)] = z.conj();
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal_entries() {
        let a = Matrix::diagonal(&[Complex::real(3.0), Complex::real(-1.0), Complex::real(0.5)]);
        let eig = hermitian_eigen(&a);
        assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 0.5).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_x_has_plus_minus_one() {
        let x = Matrix::from_real_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let eig = hermitian_eigen(&x);
        assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn complex_hermitian_reconstruction() {
        let a = random_like_hermitian(6, 42);
        let eig = hermitian_eigen(&a);
        assert!(eig.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn eigenvectors_are_unitary() {
        let a = random_like_hermitian(8, 7);
        let eig = hermitian_eigen(&a);
        assert!(eig.eigenvectors.is_unitary(1e-8));
    }

    #[test]
    fn eigenvalues_are_sorted_ascending() {
        let a = random_like_hermitian(10, 99);
        let eig = hermitian_eigen(&a);
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let a = random_like_hermitian(7, 3);
        let eig = hermitian_eigen(&a);
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((sum - a.trace().re).abs() < 1e-8);
    }

    #[test]
    fn pauli_y_eigenvalues() {
        let y = Matrix::from_rows(&[
            vec![Complex::ZERO, Complex::new(0.0, -1.0)],
            vec![Complex::new(0.0, 1.0), Complex::ZERO],
        ]);
        let eig = hermitian_eigen(&y);
        assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn rejects_non_hermitian_input() {
        let a = Matrix::from_real_rows(&[vec![0.0, 1.0], vec![0.0, 0.0]]);
        let _ = hermitian_eigen(&a);
    }
}
