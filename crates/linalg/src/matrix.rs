//! Dense, row-major complex matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{CVector, Complex};

/// A dense complex matrix stored in row-major order.
///
/// This is the workhorse type for unitary accumulation, exact evolution
/// references, and transition-matrix analysis. Dimensions are fixed at
/// construction time and every operation validates shape compatibility.
///
/// # Example
///
/// ```
/// use marqsim_linalg::{Complex, Matrix};
///
/// let h = Matrix::from_fn(2, 2, |i, j| {
///     let s = 1.0 / 2f64.sqrt();
///     if i == 1 && j == 1 { Complex::real(-s) } else { Complex::real(s) }
/// });
/// let hh = &h * &h;
/// assert!(hh.approx_eq(&Matrix::identity(2), 1e-12));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a zero matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for each entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length or if the input is
    /// empty.
    pub fn from_rows(rows: &[Vec<Complex>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from real-valued rows.
    pub fn from_real_rows(rows: &[Vec<f64>]) -> Self {
        let converted: Vec<Vec<Complex>> = rows
            .iter()
            .map(|r| r.iter().map(|&x| Complex::real(x)).collect())
            .collect();
        Matrix::from_rows(&converted)
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[Complex]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Borrow of a single row.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of a single row.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Complex] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies a column into a new vector.
    pub fn col(&self, j: usize) -> CVector {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Conjugate transpose (adjoint).
    pub fn adjoint(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z = z.conj();
        }
        out
    }

    /// Trace (sum of the diagonal). Requires a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry by a complex scalar, returning a new matrix.
    pub fn scale(&self, alpha: Complex) -> Matrix {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z *= alpha;
        }
        out
    }

    /// Scales every entry by a real scalar, returning a new matrix.
    pub fn scale_real(&self, alpha: f64) -> Matrix {
        self.scale(Complex::real(alpha))
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex]) -> CVector {
        assert_eq!(x.len(), self.cols, "matrix-vector shape mismatch");
        let mut y = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = Complex::ZERO;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex::ZERO {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, r) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += aik * *r;
                }
            }
        }
        out
    }

    /// Kronecker (tensor) product `A ⊗ B`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm `sqrt(Σ |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute column sum (induced 1-norm).
    pub fn one_norm(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Returns `true` if every entry of `self` is within `tol` of `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` if the matrix is Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// Returns `true` if the matrix is unitary within `tol` (`A† A ≈ I`).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.adjoint()
            .matmul(self)
            .approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let tmp = self[(a, j)];
            self[(a, j)] = self[(b, j)];
            self[(b, j)] = tmp;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matrix add: row mismatch");
        assert_eq!(self.cols, rhs.cols, "matrix add: col mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += *r;
        }
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matrix sub: row mismatch");
        assert_eq!(self.cols, rhs.cols, "matrix sub: col mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= *r;
        }
        out
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:.3}{:+.3}i  ", self[(i, j)].re, self[(i, j)].im)?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> Matrix {
        Matrix::from_real_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]])
    }

    fn pauli_y() -> Matrix {
        Matrix::from_rows(&[
            vec![Complex::ZERO, Complex::new(0.0, -1.0)],
            vec![Complex::new(0.0, 1.0), Complex::ZERO],
        ])
    }

    fn pauli_z() -> Matrix {
        Matrix::from_real_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]])
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_fn(3, 3, |i, j| {
            Complex::new((i + j) as f64, (i as f64) - (j as f64))
        });
        let id = Matrix::identity(3);
        assert!(a.matmul(&id).approx_eq(&a, 1e-12));
        assert!(id.matmul(&a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let lhs = pauli_x().matmul(&pauli_y());
        let rhs = pauli_z().scale(Complex::I);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn paulis_are_hermitian_and_unitary() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_hermitian(1e-12));
            assert!(p.is_unitary(1e-12));
            assert!(p.matmul(&p).approx_eq(&Matrix::identity(2), 1e-12));
        }
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = Matrix::from_fn(2, 3, |i, j| Complex::new(i as f64 + 0.5, j as f64 - 1.0));
        let b = Matrix::from_fn(3, 2, |i, j| Complex::new(j as f64, i as f64 * 0.25));
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = pauli_z();
        let b = pauli_x();
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        // Z ⊗ X has +X in the upper-left block and -X in the lower-right.
        assert!(k[(0, 1)].approx_eq(Complex::ONE, 1e-12));
        assert!(k[(3, 2)].approx_eq(Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = Matrix::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_of_pauli_is_zero() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.trace().abs() < 1e-12);
        }
        assert!((Matrix::identity(4).trace().re - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_fn(3, 3, |i, j| Complex::new((i * 3 + j) as f64, 0.5));
        let x = vec![Complex::ONE, Complex::I, Complex::new(2.0, -1.0)];
        let via_vec = a.mul_vec(&x);
        let xmat = Matrix::from_rows(&[vec![x[0]], vec![x[1]], vec![x[2]]]);
        let via_mat = a.matmul(&xmat);
        for i in 0..3 {
            assert!(via_vec[i].approx_eq(via_mat[(i, 0)], 1e-12));
        }
    }

    #[test]
    fn norms_are_consistent() {
        let a = Matrix::from_real_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.one_norm() - 4.0).abs() < 1e-12);
        assert!((a.max_abs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn swap_rows_exchanges_content() {
        let mut a = Matrix::from_real_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        a.swap_rows(0, 1);
        assert!((a[(0, 0)].re - 3.0).abs() < 1e-12);
        assert!((a[(1, 1)].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_constructor() {
        let d = Matrix::diagonal(&[Complex::ONE, Complex::I]);
        assert!(d[(0, 0)].approx_eq(Complex::ONE, 1e-15));
        assert!(d[(1, 1)].approx_eq(Complex::I, 1e-15));
        assert!(d[(0, 1)].approx_eq(Complex::ZERO, 1e-15));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_panics_on_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
