//! OpenQASM 2.0 export.
//!
//! Compiled circuits can be exported to an OpenQASM 2.0 program so they can
//! be inspected or handed to external toolchains. Global phases have no QASM
//! representation and are emitted as comments.

use std::fmt::Write as _;

use crate::{Circuit, Gate};

/// Renders the circuit as an OpenQASM 2.0 program.
///
/// # Example
///
/// ```
/// use marqsim_circuit::{qasm, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cnot { control: 0, target: 1 });
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("OPENQASM 2.0"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for gate in circuit.gates() {
        match gate {
            Gate::GlobalPhase(phi) => {
                let _ = writeln!(out, "// global phase: {phi}");
            }
            g => {
                let _ = writeln!(out, "{g};");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_register_are_emitted() {
        let c = Circuit::new(3);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
    }

    #[test]
    fn gates_are_emitted_in_order() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(1));
        c.push(Gate::Rz(0, 0.5));
        c.push(Gate::Cnot {
            control: 1,
            target: 0,
        });
        let q = to_qasm(&c);
        let h_pos = q.find("h q[1];").unwrap();
        let rz_pos = q.find("rz(0.5) q[0];").unwrap();
        let cx_pos = q.find("cx q[1],q[0];").unwrap();
        assert!(h_pos < rz_pos && rz_pos < cx_pos);
    }

    #[test]
    fn global_phase_becomes_comment() {
        let mut c = Circuit::new(1);
        c.push(Gate::GlobalPhase(1.25));
        let q = to_qasm(&c);
        assert!(q.contains("// global phase: 1.25"));
        assert!(!q.contains("1.25;"));
    }
}
