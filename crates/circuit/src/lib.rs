//! Quantum circuit intermediate representation.
//!
//! The MarQSim compiler ultimately emits quantum circuits built from
//! single-qubit gates, CNOTs, and `Rz` rotations (§2.2–2.3 of the paper).
//! This crate provides:
//!
//! * [`Gate`] — the gate set (`H`, `X`, `Y`, `Z`, `S`, `S†`, `Rx`, `Ry`,
//!   `Rz`, `CNOT`, global phase).
//! * [`Circuit`] — an ordered gate list with qubit bookkeeping, gate
//!   statistics and depth computation.
//! * [`synthesis`] — Pauli-rotation synthesis: `exp(iθP)` → basis changes +
//!   CNOT ladder + `Rz` (+ mirrored suffix), exactly as in Fig. 3.
//! * [`cancellation`] — a peephole gate-cancellation pass (adjacent inverse
//!   pairs, `Rz` merging) in the style of Gui et al. [22]; this is the
//!   post-pass the paper's baseline applies to the qDRIFT output.
//! * [`GateStats`] — gate-count/depth summary used by every experiment.
//! * [`qasm`] — OpenQASM 2.0 export of compiled circuits.
//!
//! # Example
//!
//! ```
//! use marqsim_circuit::{synthesis, Circuit};
//! use marqsim_pauli::PauliString;
//!
//! let p: PauliString = "XYZI".parse().unwrap();
//! let mut circuit = Circuit::new(4);
//! synthesis::append_pauli_rotation(&mut circuit, &p, 0.3);
//! assert_eq!(circuit.cnot_count(), 4);
//! ```

mod circuit;
mod gate;
mod stats;

pub mod cancellation;
pub mod qasm;
pub mod synthesis;

pub use circuit::Circuit;
pub use gate::Gate;
pub use stats::GateStats;
