//! Gate-count and depth statistics.

use std::fmt;
use std::ops::Add;

/// Summary statistics of a compiled circuit.
///
/// The evaluation of the paper reports CNOT counts (its primary metric),
/// single-qubit counts and total gate counts (Fig. 13, 14, 16); this struct
/// is what every experiment driver records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateStats {
    /// Number of CNOT gates.
    pub cnot: usize,
    /// Number of single-qubit gates.
    pub single_qubit: usize,
    /// Number of `Rz` rotations (a subset of `single_qubit`).
    pub rz: usize,
    /// Total gate count (CNOT + single-qubit).
    pub total: usize,
    /// Circuit depth.
    pub depth: usize,
}

impl GateStats {
    /// Relative reduction of the CNOT count compared to `baseline`, as a
    /// fraction in `[0, 1]` (negative if this circuit is worse).
    pub fn cnot_reduction_vs(&self, baseline: &GateStats) -> f64 {
        if baseline.cnot == 0 {
            return 0.0;
        }
        1.0 - self.cnot as f64 / baseline.cnot as f64
    }

    /// Relative reduction of the total gate count compared to `baseline`.
    pub fn total_reduction_vs(&self, baseline: &GateStats) -> f64 {
        if baseline.total == 0 {
            return 0.0;
        }
        1.0 - self.total as f64 / baseline.total as f64
    }
}

impl Add for GateStats {
    type Output = GateStats;
    fn add(self, rhs: GateStats) -> GateStats {
        GateStats {
            cnot: self.cnot + rhs.cnot,
            single_qubit: self.single_qubit + rhs.single_qubit,
            rz: self.rz + rhs.rz,
            total: self.total + rhs.total,
            // Depth of a concatenation is at most the sum.
            depth: self.depth + rhs.depth,
        }
    }
}

impl fmt::Display for GateStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cnot={} 1q={} rz={} total={} depth={}",
            self.cnot, self.single_qubit, self.rz, self.total, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions() {
        let baseline = GateStats {
            cnot: 100,
            single_qubit: 50,
            rz: 20,
            total: 150,
            depth: 80,
        };
        let optimized = GateStats {
            cnot: 75,
            single_qubit: 45,
            rz: 20,
            total: 120,
            depth: 70,
        };
        assert!((optimized.cnot_reduction_vs(&baseline) - 0.25).abs() < 1e-12);
        assert!((optimized.total_reduction_vs(&baseline) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn reduction_against_empty_baseline_is_zero() {
        let empty = GateStats::default();
        let other = GateStats {
            cnot: 5,
            ..Default::default()
        };
        assert_eq!(other.cnot_reduction_vs(&empty), 0.0);
        assert_eq!(other.total_reduction_vs(&empty), 0.0);
    }

    #[test]
    fn addition_sums_fields() {
        let a = GateStats {
            cnot: 1,
            single_qubit: 2,
            rz: 1,
            total: 3,
            depth: 2,
        };
        let b = GateStats {
            cnot: 10,
            single_qubit: 20,
            rz: 5,
            total: 30,
            depth: 7,
        };
        let c = a + b;
        assert_eq!(c.cnot, 11);
        assert_eq!(c.total, 33);
        assert_eq!(c.depth, 9);
    }

    #[test]
    fn display_contains_all_fields() {
        let s = GateStats {
            cnot: 3,
            single_qubit: 4,
            rz: 2,
            total: 7,
            depth: 5,
        }
        .to_string();
        assert!(s.contains("cnot=3"));
        assert!(s.contains("depth=5"));
    }
}
