//! The gate set.

use std::fmt;

use marqsim_linalg::{Complex, Matrix};

/// A quantum gate acting on one or two qubits (or a global phase).
///
/// Angles follow the standard convention `Rz(θ) = exp(-i θ Z / 2)`,
/// `Rx(θ) = exp(-i θ X / 2)`, `Ry(θ) = exp(-i θ Y / 2)`.
///
/// # Example
///
/// ```
/// use marqsim_circuit::Gate;
///
/// let g = Gate::Cnot { control: 0, target: 2 };
/// assert!(g.is_two_qubit());
/// assert_eq!(g.qubits(), vec![0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard gate.
    H(usize),
    /// Pauli-X gate.
    X(usize),
    /// Pauli-Y gate.
    Y(usize),
    /// Pauli-Z gate.
    Z(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg(usize),
    /// Rotation about X: `exp(-i θ X / 2)`.
    Rx(usize, f64),
    /// Rotation about Y: `exp(-i θ Y / 2)`.
    Ry(usize, f64),
    /// Rotation about Z: `exp(-i θ Z / 2)`.
    Rz(usize, f64),
    /// Controlled-NOT with the given control and target qubits.
    Cnot {
        /// Control qubit index.
        control: usize,
        /// Target qubit index.
        target: usize,
    },
    /// A global phase `exp(i φ)`. Emitted when simulating identity Pauli
    /// terms so that the circuit unitary matches `exp(iHt)` exactly (the
    /// fidelity metric is phase sensitive).
    GlobalPhase(f64),
}

impl Gate {
    /// The qubits this gate acts on, in ascending order for two-qubit gates'
    /// `qubits()` comparison purposes (control listed first for CNOT).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _) => vec![q],
            Gate::Cnot { control, target } => vec![control, target],
            Gate::GlobalPhase(_) => vec![],
        }
    }

    /// Returns `true` for the CNOT gate.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cnot { .. })
    }

    /// Returns `true` for single-qubit gates (global phases excluded).
    pub fn is_single_qubit(&self) -> bool {
        !self.is_two_qubit() && !matches!(self, Gate::GlobalPhase(_))
    }

    /// Returns `true` if this gate is its own inverse.
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            Gate::H(_) | Gate::X(_) | Gate::Y(_) | Gate::Z(_) | Gate::Cnot { .. }
        )
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::Rx(q, theta) => Gate::Rx(q, -theta),
            Gate::Ry(q, theta) => Gate::Ry(q, -theta),
            Gate::Rz(q, theta) => Gate::Rz(q, -theta),
            Gate::GlobalPhase(phi) => Gate::GlobalPhase(-phi),
            ref g => g.clone(),
        }
    }

    /// Returns `true` if `other` is the inverse of `self` (exactly, including
    /// rotation angles).
    pub fn cancels_with(&self, other: &Gate) -> bool {
        if self.is_self_inverse() {
            self == other
        } else {
            &self.inverse() == other
        }
    }

    /// The local unitary matrix of the gate: 2×2 for single-qubit gates,
    /// 4×4 for CNOT (qubit ordering `|control, target⟩` with the control as
    /// the most-significant bit), and 1×1 for a global phase.
    pub fn local_matrix(&self) -> Matrix {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        match *self {
            Gate::H(_) => {
                Matrix::from_real_rows(&[vec![inv_sqrt2, inv_sqrt2], vec![inv_sqrt2, -inv_sqrt2]])
            }
            Gate::X(_) => Matrix::from_real_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]),
            Gate::Y(_) => Matrix::from_rows(&[
                vec![Complex::ZERO, Complex::new(0.0, -1.0)],
                vec![Complex::new(0.0, 1.0), Complex::ZERO],
            ]),
            Gate::Z(_) => Matrix::from_real_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]]),
            Gate::S(_) => Matrix::diagonal(&[Complex::ONE, Complex::I]),
            Gate::Sdg(_) => Matrix::diagonal(&[Complex::ONE, -Complex::I]),
            Gate::Rx(_, theta) => {
                let c = Complex::real((theta / 2.0).cos());
                let s = Complex::new(0.0, -(theta / 2.0).sin());
                Matrix::from_rows(&[vec![c, s], vec![s, c]])
            }
            Gate::Ry(_, theta) => {
                let c = (theta / 2.0).cos();
                let s = (theta / 2.0).sin();
                Matrix::from_real_rows(&[vec![c, -s], vec![s, c]])
            }
            Gate::Rz(_, theta) => {
                Matrix::diagonal(&[Complex::cis(-theta / 2.0), Complex::cis(theta / 2.0)])
            }
            Gate::Cnot { .. } => Matrix::from_real_rows(&[
                vec![1.0, 0.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0, 0.0],
                vec![0.0, 0.0, 0.0, 1.0],
                vec![0.0, 0.0, 1.0, 0.0],
            ]),
            Gate::GlobalPhase(phi) => Matrix::diagonal(&[Complex::cis(phi)]),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h q[{q}]"),
            Gate::X(q) => write!(f, "x q[{q}]"),
            Gate::Y(q) => write!(f, "y q[{q}]"),
            Gate::Z(q) => write!(f, "z q[{q}]"),
            Gate::S(q) => write!(f, "s q[{q}]"),
            Gate::Sdg(q) => write!(f, "sdg q[{q}]"),
            Gate::Rx(q, theta) => write!(f, "rx({theta}) q[{q}]"),
            Gate::Ry(q, theta) => write!(f, "ry({theta}) q[{q}]"),
            Gate::Rz(q, theta) => write!(f, "rz({theta}) q[{q}]"),
            Gate::Cnot { control, target } => write!(f, "cx q[{control}],q[{target}]"),
            Gate::GlobalPhase(phi) => write!(f, "// global phase {phi}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_and_arity() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(
            Gate::Cnot {
                control: 1,
                target: 4
            }
            .qubits(),
            vec![1, 4]
        );
        assert!(Gate::Cnot {
            control: 0,
            target: 1
        }
        .is_two_qubit());
        assert!(Gate::Rz(0, 0.5).is_single_qubit());
        assert!(!Gate::GlobalPhase(0.1).is_single_qubit());
        assert!(Gate::GlobalPhase(0.1).qubits().is_empty());
    }

    #[test]
    fn local_matrices_are_unitary() {
        let gates = [
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::Rx(0, 0.7),
            Gate::Ry(0, -1.3),
            Gate::Rz(0, 2.2),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
        ];
        for g in gates {
            assert!(g.local_matrix().is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn inverses_multiply_to_identity() {
        let gates = [
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::Rx(0, 0.9),
            Gate::Ry(0, 0.4),
            Gate::Rz(0, -1.1),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
        ];
        for g in gates {
            let m = g.local_matrix();
            let minv = g.inverse().local_matrix();
            let dim = m.rows();
            assert!(
                m.matmul(&minv).approx_eq(&Matrix::identity(dim), 1e-12),
                "{g}"
            );
        }
    }

    #[test]
    fn cancellation_relation() {
        assert!(Gate::H(2).cancels_with(&Gate::H(2)));
        assert!(!Gate::H(2).cancels_with(&Gate::H(3)));
        assert!(Gate::S(1).cancels_with(&Gate::Sdg(1)));
        assert!(Gate::Rz(0, 0.4).cancels_with(&Gate::Rz(0, -0.4)));
        assert!(!Gate::Rz(0, 0.4).cancels_with(&Gate::Rz(0, 0.4)));
        let cx = Gate::Cnot {
            control: 0,
            target: 1,
        };
        assert!(cx.cancels_with(&cx.clone()));
        assert!(!cx.cancels_with(&Gate::Cnot {
            control: 1,
            target: 0
        }));
    }

    #[test]
    fn s_conjugation_maps_x_to_y() {
        // S X S† = Y, the identity used by the Y-basis change in synthesis.
        let s = Gate::S(0).local_matrix();
        let sdg = Gate::Sdg(0).local_matrix();
        let x = Gate::X(0).local_matrix();
        let y = Gate::Y(0).local_matrix();
        assert!(s.matmul(&x).matmul(&sdg).approx_eq(&y, 1e-12));
    }

    #[test]
    fn rz_matrix_matches_exponential_convention() {
        let theta = 0.83;
        let rz = Gate::Rz(0, theta).local_matrix();
        assert!(rz[(0, 0)].approx_eq(Complex::cis(-theta / 2.0), 1e-12));
        assert!(rz[(1, 1)].approx_eq(Complex::cis(theta / 2.0), 1e-12));
    }

    #[test]
    fn display_is_qasm_like() {
        assert_eq!(
            Gate::Cnot {
                control: 2,
                target: 0
            }
            .to_string(),
            "cx q[2],q[0]"
        );
        assert_eq!(Gate::H(1).to_string(), "h q[1]");
    }
}
