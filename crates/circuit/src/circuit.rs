//! The circuit container.

use std::fmt;

use crate::{Gate, GateStats};

/// An ordered list of gates acting on a fixed number of qubits.
///
/// Gates are applied in list order: `circuit.gates()[0]` is the first gate
/// applied to the initial state.
///
/// # Example
///
/// ```
/// use marqsim_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cnot { control: 0, target: 1 });
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.cnot_count(), 1);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of gates (global phases included).
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in application order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the register.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits() {
            assert!(
                q < self.num_qubits,
                "gate {gate} addresses qubit {q} but the circuit has {} qubits",
                self.num_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Appends every gate of `other` to this circuit.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit.
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.num_qubits,
            self.num_qubits
        );
        for g in &other.gates {
            self.gates.push(g.clone());
        }
    }

    /// Iterator over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Number of CNOT gates.
    pub fn cnot_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates (global phases excluded).
    pub fn single_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_single_qubit()).count()
    }

    /// Number of `Rz` rotations.
    pub fn rz_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Rz(_, _)))
            .count()
    }

    /// Total gate count excluding global phases.
    pub fn gate_count(&self) -> usize {
        self.cnot_count() + self.single_qubit_count()
    }

    /// Circuit depth: the length of the longest chain of gates where each
    /// pair shares a qubit (global phases contribute no depth).
    pub fn depth(&self) -> usize {
        let mut per_qubit = vec![0usize; self.num_qubits];
        for g in &self.gates {
            let qs = g.qubits();
            if qs.is_empty() {
                continue;
            }
            let level = qs.iter().map(|&q| per_qubit[q]).max().unwrap_or(0) + 1;
            for q in qs {
                per_qubit[q] = level;
            }
        }
        per_qubit.into_iter().max().unwrap_or(0)
    }

    /// Gate-count and depth statistics.
    pub fn stats(&self) -> GateStats {
        GateStats {
            cnot: self.cnot_count(),
            single_qubit: self.single_qubit_count(),
            rz: self.rz_count(),
            total: self.gate_count(),
            depth: self.depth(),
        }
    }

    /// Consumes the circuit and returns the gate list.
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }

    /// Rebuilds a circuit from a gate list (used by optimization passes).
    ///
    /// # Panics
    ///
    /// Panics if a gate addresses a qubit outside the register.
    pub fn from_gates(num_qubits: usize, gates: Vec<Gate>) -> Self {
        let mut c = Circuit::new(num_qubits);
        for g in gates {
            c.push(g);
        }
        c
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} gates:",
            self.num_qubits,
            self.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell_pair() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c
    }

    #[test]
    fn counts_and_stats() {
        let c = bell_pair();
        assert_eq!(c.len(), 2);
        assert_eq!(c.cnot_count(), 1);
        assert_eq!(c.single_qubit_count(), 1);
        assert_eq!(c.rz_count(), 0);
        assert_eq!(c.gate_count(), 2);
        let stats = c.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.depth, 2);
    }

    #[test]
    fn depth_accounts_for_parallel_gates() {
        let mut c = Circuit::new(4);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        c.push(Gate::H(2));
        c.push(Gate::H(3));
        assert_eq!(c.depth(), 1);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Cnot {
            control: 2,
            target: 3,
        });
        assert_eq!(c.depth(), 2);
        c.push(Gate::Cnot {
            control: 1,
            target: 2,
        });
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn global_phase_does_not_affect_depth_or_counts() {
        let mut c = bell_pair();
        c.push(Gate::GlobalPhase(0.3));
        assert_eq!(c.depth(), 2);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn append_concatenates() {
        let mut c = Circuit::new(3);
        c.append(&bell_pair());
        c.append(&bell_pair());
        assert_eq!(c.len(), 4);
        assert_eq!(c.cnot_count(), 2);
    }

    #[test]
    #[should_panic(expected = "addresses qubit")]
    fn push_rejects_out_of_range_qubits() {
        let mut c = Circuit::new(1);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
    }

    #[test]
    fn from_gates_round_trip() {
        let c = bell_pair();
        let rebuilt = Circuit::from_gates(2, c.clone().into_gates());
        assert_eq!(c, rebuilt);
    }

    #[test]
    fn empty_circuit_has_zero_depth() {
        let c = Circuit::new(5);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert_eq!(c.stats().total, 0);
    }
}
