//! Peephole gate cancellation.
//!
//! The paper's baseline is "qDRIFT followed by applying gate cancellation
//! [22] on the randomized sequence" (§6.1). This module implements that
//! post-pass at the gate level:
//!
//! * adjacent self-inverse pairs (`H·H`, `X·X`, `CNOT·CNOT`, …) are removed,
//! * adjacent `S·S†` / `Rz(θ)·Rz(-θ)` pairs are removed,
//! * adjacent `Rz` rotations on the same qubit are merged,
//! * global phases are folded together.
//!
//! "Adjacent" is understood up to commutation: when searching backwards for a
//! cancellation partner, the pass slides over gates that provably commute
//! with the current gate (diagonal gates past CNOT controls, CNOTs sharing a
//! target, disjoint gates, …). This is what lets the facing CNOT ladders of
//! consecutive Pauli rotations cancel even when unrelated basis-change gates
//! sit between them — the mechanism MarQSim's term ordering exploits.

use crate::{Circuit, Gate};

/// Result of a cancellation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CancellationReport {
    /// Number of gates removed by the pass.
    pub removed: usize,
    /// Number of `Rz` pairs merged into a single rotation.
    pub merged_rotations: usize,
    /// Number of fixed-point iterations performed.
    pub iterations: usize,
}

/// Runs the peephole cancellation pass until no more gates can be removed and
/// returns the optimized circuit together with a report.
pub fn cancel_gates(circuit: &Circuit) -> (Circuit, CancellationReport) {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    let mut report = CancellationReport::default();

    loop {
        report.iterations += 1;
        let mut slots: Vec<Option<Gate>> = gates.into_iter().map(Some).collect();
        let (removed, merged) = single_pass(&mut slots);
        report.removed += removed;
        report.merged_rotations += merged;
        gates = slots.into_iter().flatten().collect();
        if removed == 0 && merged == 0 {
            break;
        }
    }

    let optimized = Circuit::from_gates(circuit.num_qubits(), gates);
    (optimized, report)
}

/// Returns `true` when the two gates are known to commute. Conservative: a
/// `false` answer only means the pass will not slide one past the other.
fn commutes(a: &Gate, b: &Gate) -> bool {
    use Gate::*;
    if matches!(a, GlobalPhase(_)) || matches!(b, GlobalPhase(_)) {
        return true;
    }
    let qa = a.qubits();
    let qb = b.qubits();
    if qa.iter().all(|q| !qb.contains(q)) {
        return true;
    }
    let is_diagonal = |g: &Gate| matches!(g, Z(_) | S(_) | Sdg(_) | Rz(_, _));
    let is_x_type = |g: &Gate| matches!(g, X(_) | Rx(_, _));
    match (a, b) {
        (
            Cnot {
                control: c1,
                target: t1,
            },
            Cnot {
                control: c2,
                target: t2,
            },
        ) => {
            if a == b {
                return true;
            }
            // Shared control or shared target commute; control-target overlap
            // does not.
            (c1 == c2 || t1 == t2) && c1 != t2 && c2 != t1
        }
        (Cnot { control, target }, single) | (single, Cnot { control, target }) => {
            let q = single.qubits()[0];
            (q == *control && is_diagonal(single)) || (q == *target && is_x_type(single))
        }
        (x, y) => {
            // Same-qubit single-qubit gates.
            x == y || (is_diagonal(x) && is_diagonal(y)) || (is_x_type(x) && is_x_type(y))
        }
    }
}

/// One linear scan: for each gate, walk backwards over commuting gates looking
/// for a cancellation/merge partner; stop at the first blocking gate.
fn single_pass(gates: &mut [Option<Gate>]) -> (usize, usize) {
    let len = gates.len();
    let mut removed = 0usize;
    let mut merged = 0usize;
    let mut phase_slot: Option<usize> = None;

    for idx in 0..len {
        let Some(current) = gates[idx].clone() else {
            continue;
        };
        if let Gate::GlobalPhase(phi) = current {
            match phase_slot {
                None => phase_slot = Some(idx),
                Some(slot) => {
                    if let Some(Gate::GlobalPhase(prev)) = gates[slot].clone() {
                        gates[slot] = Some(Gate::GlobalPhase(prev + phi));
                        gates[idx] = None;
                        removed += 1;
                    }
                }
            }
            continue;
        }

        for j in (0..idx).rev() {
            let Some(prev) = gates[j].clone() else {
                continue;
            };
            // Merge adjacent Rz rotations on the same qubit.
            if let (Gate::Rz(q1, a), Gate::Rz(q2, b)) = (&prev, &current) {
                if q1 == q2 {
                    let sum = a + b;
                    if sum.abs() < 1e-15 {
                        gates[j] = None;
                        gates[idx] = None;
                        removed += 2;
                    } else {
                        gates[j] = None;
                        gates[idx] = Some(Gate::Rz(*q1, sum));
                        removed += 1;
                        merged += 1;
                    }
                    break;
                }
            }
            if prev.cancels_with(&current) {
                gates[j] = None;
                gates[idx] = None;
                removed += 2;
                break;
            }
            if !commutes(&prev, &current) {
                break;
            }
        }
    }
    (removed, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis;
    use marqsim_linalg::{Complex, Matrix};
    use marqsim_pauli::PauliString;

    fn unitary(circ: &Circuit) -> Matrix {
        let n = circ.num_qubits();
        let dim = 1usize << n;
        let mut u = Matrix::identity(dim);
        for gate in circ.gates() {
            let full = match gate {
                Gate::Cnot { control, target } => Matrix::from_fn(dim, dim, |i, j| {
                    let flipped = if (j >> control) & 1 == 1 {
                        j ^ (1 << target)
                    } else {
                        j
                    };
                    if i == flipped {
                        Complex::ONE
                    } else {
                        Complex::ZERO
                    }
                }),
                Gate::GlobalPhase(phi) => Matrix::identity(dim).scale(Complex::cis(*phi)),
                g => {
                    let qb = g.qubits()[0];
                    let local = g.local_matrix();
                    Matrix::from_fn(dim, dim, |i, j| {
                        if (i ^ j) & !(1usize << qb) != 0 {
                            Complex::ZERO
                        } else {
                            local[((i >> qb) & 1, (j >> qb) & 1)]
                        }
                    })
                }
            };
            u = full.matmul(&u);
        }
        u
    }

    #[test]
    fn adjacent_hadamards_cancel() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::H(0));
        let (opt, report) = cancel_gates(&c);
        assert!(opt.is_empty());
        assert_eq!(report.removed, 2);
    }

    #[test]
    fn blocked_gates_do_not_cancel() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::Rz(0, 0.5));
        c.push(Gate::H(0));
        let (opt, _) = cancel_gates(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn gates_on_other_qubits_do_not_block() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::X(1));
        c.push(Gate::H(0));
        let (opt, _) = cancel_gates(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.gates()[0], Gate::X(1));
    }

    #[test]
    fn cnot_pairs_cancel_when_nothing_blocks() {
        let cx = Gate::Cnot {
            control: 0,
            target: 1,
        };
        let mut c = Circuit::new(2);
        c.push(cx.clone());
        c.push(cx.clone());
        let (opt, _) = cancel_gates(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn cnot_pairs_blocked_by_rotation_on_target_do_not_cancel() {
        let cx = Gate::Cnot {
            control: 0,
            target: 1,
        };
        let mut c = Circuit::new(2);
        c.push(cx.clone());
        c.push(Gate::Rz(1, 0.3));
        c.push(cx.clone());
        let (opt, _) = cancel_gates(&c);
        assert_eq!(opt.cnot_count(), 2);
    }

    #[test]
    fn cnot_slides_past_diagonal_gate_on_control() {
        let cx = Gate::Cnot {
            control: 0,
            target: 1,
        };
        let mut c = Circuit::new(2);
        c.push(cx.clone());
        c.push(Gate::Rz(0, 0.3));
        c.push(cx.clone());
        let (opt, _) = cancel_gates(&c);
        assert_eq!(opt.cnot_count(), 0);
        assert_eq!(opt.len(), 1);
        // The optimized circuit must implement the same unitary.
        assert!(unitary(&opt).approx_eq(
            &unitary(&{
                let mut orig = Circuit::new(2);
                orig.push(cx.clone());
                orig.push(Gate::Rz(0, 0.3));
                orig.push(cx);
                orig
            }),
            1e-10
        ));
    }

    #[test]
    fn cnots_sharing_a_target_commute_and_cancel() {
        let a = Gate::Cnot {
            control: 1,
            target: 0,
        };
        let b = Gate::Cnot {
            control: 2,
            target: 0,
        };
        let mut c = Circuit::new(3);
        c.push(a.clone());
        c.push(b.clone());
        c.push(a.clone());
        let (opt, _) = cancel_gates(&c);
        assert_eq!(opt.cnot_count(), 1);
        assert_eq!(opt.gates()[0], b);
    }

    #[test]
    fn rz_rotations_merge() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.25));
        c.push(Gate::Rz(0, 0.5));
        let (opt, report) = cancel_gates(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(report.merged_rotations, 1);
        assert_eq!(opt.gates()[0], Gate::Rz(0, 0.75));
    }

    #[test]
    fn opposite_rz_rotations_cancel_entirely() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.25));
        c.push(Gate::Rz(0, -0.25));
        let (opt, _) = cancel_gates(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn s_and_sdg_cancel() {
        let mut c = Circuit::new(1);
        c.push(Gate::S(0));
        c.push(Gate::Sdg(0));
        let (opt, _) = cancel_gates(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn global_phases_fold_together() {
        let mut c = Circuit::new(1);
        c.push(Gate::GlobalPhase(0.25));
        c.push(Gate::H(0));
        c.push(Gate::GlobalPhase(0.5));
        let (opt, _) = cancel_gates(&c);
        assert_eq!(opt.len(), 2);
        assert!(matches!(opt.gates()[0], Gate::GlobalPhase(p) if (p - 0.75).abs() < 1e-12));
    }

    #[test]
    fn consecutive_identical_pauli_rotations_share_their_ladders() {
        // Two back-to-back exp(i θ ZZZZ) rotations: the facing CNOT ladders and
        // the Rz merge, leaving a single rotation worth of gates.
        let p: PauliString = "ZZZZ".parse().unwrap();
        let mut c = Circuit::new(4);
        synthesis::append_pauli_rotation(&mut c, &p, 0.3);
        synthesis::append_pauli_rotation(&mut c, &p, 0.3);
        assert_eq!(c.cnot_count(), 12);
        let (opt, _) = cancel_gates(&c);
        assert_eq!(opt.cnot_count(), 6);
        assert_eq!(opt.rz_count(), 1);
        assert!(unitary(&opt).approx_eq(&unitary(&c), 1e-10));
    }

    #[test]
    fn matched_operators_between_different_strings_cancel_cnots() {
        // ZZZZ followed by XZXZ (Fig. 6 of the paper): the CNOTs of the shared
        // Z qubit cancel at the junction even though the strings differ.
        let a: PauliString = "ZZZZ".parse().unwrap();
        let b: PauliString = "XZXZ".parse().unwrap();
        let mut c = Circuit::new(4);
        synthesis::append_pauli_rotation(&mut c, &a, 0.3);
        synthesis::append_pauli_rotation(&mut c, &b, 0.3);
        let before = c.cnot_count();
        let (opt, _) = cancel_gates(&c);
        assert!(
            opt.cnot_count() < before,
            "expected junction CNOT cancellation ({} -> {})",
            before,
            opt.cnot_count()
        );
        assert!(unitary(&opt).approx_eq(&unitary(&c), 1e-10));
    }

    #[test]
    fn optimized_circuit_preserves_the_unitary() {
        let p: PauliString = "XY".parse().unwrap();
        let mut c = Circuit::new(2);
        synthesis::append_pauli_rotation(&mut c, &p, 0.4);
        synthesis::append_pauli_rotation(&mut c, &p, -0.1);
        let (opt, _) = cancel_gates(&c);
        assert!(unitary(&c).approx_eq(&unitary(&opt), 1e-10));
        assert!(opt.gate_count() < c.gate_count());
    }

    #[test]
    fn commutation_relation_is_sound() {
        // Every pair the pass considers commuting must actually commute as
        // matrices on a 3-qubit register.
        let gates = vec![
            Gate::H(0),
            Gate::X(1),
            Gate::Z(0),
            Gate::S(2),
            Gate::Rz(1, 0.3),
            Gate::Rx(2, 0.7),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::Cnot {
                control: 2,
                target: 1,
            },
            Gate::Cnot {
                control: 0,
                target: 2,
            },
        ];
        for a in &gates {
            for b in &gates {
                if commutes(a, b) {
                    let mut ab = Circuit::new(3);
                    ab.push(a.clone());
                    ab.push(b.clone());
                    let mut ba = Circuit::new(3);
                    ba.push(b.clone());
                    ba.push(a.clone());
                    assert!(
                        unitary(&ab).approx_eq(&unitary(&ba), 1e-10),
                        "{a} and {b} flagged as commuting but do not commute"
                    );
                }
            }
        }
    }
}
