//! Pauli-rotation synthesis (Fig. 3 of the paper).
//!
//! A Pauli-string exponential `exp(iθP)` is implemented with two identical
//! layers of basis-change gates, a CNOT ladder that accumulates the parity of
//! the string's support onto a *root* qubit, a single `Rz` rotation on the
//! root, and the mirrored CNOT ladder. The CNOT-ladder shape is the one that
//! exposes the gate-cancellation opportunities exploited by Gui et al. [22]
//! and by MarQSim's min-cost-flow objective.
//!
//! The synthesized circuit reproduces `exp(iθP)` *exactly*, including global
//! phase, so that the unitary-fidelity metric of §6.1 is meaningful.

use marqsim_pauli::{PauliOp, PauliString};

use crate::{Circuit, Gate};

/// Appends the circuit for `exp(i · angle · P)` to `circuit`.
///
/// The root qubit is the lowest-index qubit in the support of `P`. Identity
/// strings contribute only a global phase.
///
/// # Panics
///
/// Panics if `P` acts on more qubits than `circuit` has.
///
/// # Example
///
/// ```
/// use marqsim_circuit::{synthesis, Circuit};
/// use marqsim_pauli::PauliString;
///
/// let p: PauliString = "ZZ".parse().unwrap();
/// let mut c = Circuit::new(2);
/// synthesis::append_pauli_rotation(&mut c, &p, 0.25);
/// assert_eq!(c.cnot_count(), 2);
/// assert_eq!(c.rz_count(), 1);
/// ```
pub fn append_pauli_rotation(circuit: &mut Circuit, pauli: &PauliString, angle: f64) {
    assert!(
        pauli.num_qubits() <= circuit.num_qubits(),
        "Pauli string acts on {} qubits but the circuit has {}",
        pauli.num_qubits(),
        circuit.num_qubits()
    );
    let support: Vec<(usize, PauliOp)> = pauli.support().collect();
    if support.is_empty() {
        // exp(i angle I) is a global phase.
        circuit.push(Gate::GlobalPhase(angle));
        return;
    }
    let root = support[0].0;

    // Leading basis changes: map X -> Z via H, Y -> Z via (S H)† = H S†
    // applied in time order S† then H... more precisely we need W† first
    // where W Z W† = σ. For X, W = H; for Y, W = S·H.
    for &(q, op) in &support {
        match op {
            PauliOp::X => circuit.push(Gate::H(q)),
            PauliOp::Y => {
                circuit.push(Gate::Sdg(q));
                circuit.push(Gate::H(q));
            }
            PauliOp::Z => {}
            PauliOp::I => unreachable!("support excludes identities"),
        }
    }

    // CNOT ladder: parity of every support qubit accumulated onto the root.
    for &(q, _) in support.iter().skip(1) {
        circuit.push(Gate::Cnot {
            control: q,
            target: root,
        });
    }

    // exp(i angle Z_root) = Rz(-2 angle) exactly (no global phase).
    circuit.push(Gate::Rz(root, -2.0 * angle));

    // Mirrored CNOT ladder.
    for &(q, _) in support.iter().skip(1).rev() {
        circuit.push(Gate::Cnot {
            control: q,
            target: root,
        });
    }

    // Trailing basis changes (the W layer).
    for &(q, op) in &support {
        match op {
            PauliOp::X => circuit.push(Gate::H(q)),
            PauliOp::Y => {
                circuit.push(Gate::H(q));
                circuit.push(Gate::S(q));
            }
            PauliOp::Z => {}
            PauliOp::I => unreachable!("support excludes identities"),
        }
    }
}

/// Builds a standalone circuit for `exp(i · angle · P)`.
pub fn pauli_rotation_circuit(pauli: &PauliString, angle: f64) -> Circuit {
    let mut c = Circuit::new(pauli.num_qubits());
    append_pauli_rotation(&mut c, pauli, angle);
    c
}

/// Synthesizes the circuit for a whole term sequence: each entry is a Pauli
/// string and the rotation angle to apply, concatenated in order.
pub fn sequence_circuit(num_qubits: usize, sequence: &[(PauliString, f64)]) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for (p, angle) in sequence {
        append_pauli_rotation(&mut c, p, *angle);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use marqsim_linalg::{expm, Complex, Matrix};

    /// Builds the full 2^n unitary of a circuit (test-only; the production
    /// path lives in `marqsim-sim`).
    fn circuit_unitary(circuit: &Circuit) -> Matrix {
        let n = circuit.num_qubits();
        let dim = 1usize << n;
        let mut u = Matrix::identity(dim);
        for gate in circuit.gates() {
            let g = full_matrix(gate, n);
            u = g.matmul(&u);
        }
        u
    }

    fn full_matrix(gate: &Gate, n: usize) -> Matrix {
        let dim = 1usize << n;
        match gate {
            Gate::Cnot { control, target } => Matrix::from_fn(dim, dim, |i, j| {
                let flipped = if (j >> control) & 1 == 1 {
                    j ^ (1 << target)
                } else {
                    j
                };
                if i == flipped {
                    Complex::ONE
                } else {
                    Complex::ZERO
                }
            }),
            Gate::GlobalPhase(phi) => Matrix::identity(dim).scale(Complex::cis(*phi)),
            single => {
                let q = single.qubits()[0];
                let local = single.local_matrix();
                Matrix::from_fn(dim, dim, |i, j| {
                    // All bits other than q must agree.
                    if (i ^ j) & !(1usize << q) != 0 {
                        Complex::ZERO
                    } else {
                        local[((i >> q) & 1, (j >> q) & 1)]
                    }
                })
            }
        }
    }

    fn exact_rotation(p: &PauliString, angle: f64) -> Matrix {
        expm::expm(&p.to_matrix().scale(Complex::new(0.0, angle)))
    }

    #[test]
    fn single_qubit_rotations_match_exact_exponential() {
        for s in ["X", "Y", "Z"] {
            for angle in [0.0, 0.3, -0.9, 1.7] {
                let p: PauliString = s.parse().unwrap();
                let c = pauli_rotation_circuit(&p, angle);
                let u = circuit_unitary(&c);
                let exact = exact_rotation(&p, angle);
                assert!(u.approx_eq(&exact, 1e-10), "P={s} angle={angle}");
            }
        }
    }

    #[test]
    fn multi_qubit_rotations_match_exact_exponential() {
        for s in ["ZZ", "XZ", "XY", "XYZ", "ZIZ", "XYZI", "IYIX"] {
            let angle = 0.47;
            let p: PauliString = s.parse().unwrap();
            let c = pauli_rotation_circuit(&p, angle);
            let u = circuit_unitary(&c);
            let exact = exact_rotation(&p, angle);
            assert!(u.approx_eq(&exact, 1e-10), "P={s}");
        }
    }

    #[test]
    fn identity_string_becomes_global_phase() {
        let p = PauliString::identity(3);
        let c = pauli_rotation_circuit(&p, 0.8);
        assert_eq!(c.gate_count(), 0);
        assert_eq!(c.len(), 1);
        let u = circuit_unitary(&c);
        let exact = exact_rotation(&p, 0.8);
        assert!(u.approx_eq(&exact, 1e-12));
    }

    #[test]
    fn gate_counts_follow_figure_3() {
        // exp(i X4 Y3 Z2 I1 θ/2): 3 support qubits, 2 CNOTs per ladder, one Rz,
        // basis changes on X and Y qubits.
        let p: PauliString = "XYZI".parse().unwrap();
        let c = pauli_rotation_circuit(&p, 0.5);
        assert_eq!(c.cnot_count(), 4);
        assert_eq!(c.rz_count(), 1);
        // H on the X qubit twice, (Sdg,H) + (H,S) on the Y qubit.
        assert_eq!(c.single_qubit_count(), 2 + 4 + 1);
    }

    #[test]
    fn zero_angle_rotation_is_identity_unitary() {
        let p: PauliString = "XYZ".parse().unwrap();
        let c = pauli_rotation_circuit(&p, 0.0);
        let u = circuit_unitary(&c);
        assert!(u.approx_eq(&Matrix::identity(8), 1e-12));
    }

    #[test]
    fn sequence_circuit_composes_in_order() {
        let a: PauliString = "ZZ".parse().unwrap();
        let b: PauliString = "XI".parse().unwrap();
        let seq = vec![(a.clone(), 0.3), (b.clone(), -0.4)];
        let c = sequence_circuit(2, &seq);
        let u = circuit_unitary(&c);
        let exact = exact_rotation(&b, -0.4).matmul(&exact_rotation(&a, 0.3));
        assert!(u.approx_eq(&exact, 1e-10));
    }

    #[test]
    fn rotation_circuit_is_unitary() {
        let p: PauliString = "XXYYZ".parse().unwrap();
        let c = pauli_rotation_circuit(&p, 1.234);
        let u = circuit_unitary(&c);
        assert!(u.is_unitary(1e-9));
    }
}
