//! # marqsim-cluster — fleet-building primitives under the router
//!
//! One daemon is a ceiling; production scale means a fleet. This crate is
//! the dependency-free policy layer the `marqsim-served` router mode is
//! built on — the parts of clustering that are pure data structures and
//! therefore property-testable without sockets:
//!
//! * [`HashRing`] — a consistent-hash ring keyed by Hamiltonian
//!   fingerprint. Each node contributes virtual points; placement is a
//!   pure function of the member set, and a membership change moves only
//!   the departing/arriving node's share (≈ `1/n` of the keyspace), so
//!   every node's in-memory transition-matrix cache stays hot for its
//!   shard.
//! * [`Membership`] — the per-node health table: probe scheduling with
//!   timeout, exponential backoff and deterministic jitter, the
//!   `Up → Suspect → Down` escalation, and the `Draining` state for
//!   planned removal (stop routing new work, let in-flight jobs finish,
//!   drop the node).
//!
//! The router itself (connection handling, job-id translation, event
//! relay) lives in `marqsim-serve`; this crate performs no I/O and never
//! reads the clock — the router passes its own `Instant`s in, which keeps
//! every health transition replayable in tests.
//!
//! The router's fleet instruments are registered here (see
//! [`instruments`]): `marqsim_cluster_routed_total{node}`,
//! `marqsim_cluster_node_up{node}`,
//! `marqsim_cluster_probe_failures_total`, and
//! `marqsim_cluster_drains_total`, all in the global `marqsim-obs`
//! registry and cataloged in `docs/observability.md`.

pub mod membership;
pub mod ring;

pub use membership::{Health, Membership, MembershipConfig};
pub use ring::{HashRing, DEFAULT_REPLICAS};

/// Fleet instruments in the global metrics registry. Per-node instruments
/// are label-keyed; callers cache the returned `Arc` per node rather than
/// re-resolving on every event.
pub mod instruments {
    use std::sync::Arc;

    use marqsim_obs::metrics;

    /// Jobs the router forwarded to `node` (counter, labeled by node).
    pub fn routed(node: &str) -> Arc<metrics::Counter> {
        metrics::global().counter_with("marqsim_cluster_routed_total", &[("node", node)])
    }

    /// Whether `node` is currently routable (gauge: 1 up/suspect, 0
    /// down/draining; labeled by node).
    pub fn node_up(node: &str) -> Arc<metrics::Gauge> {
        metrics::global().gauge_with("marqsim_cluster_node_up", &[("node", node)])
    }

    /// Health probes that failed, fleet-wide.
    pub fn probe_failures() -> Arc<metrics::Counter> {
        metrics::global().counter("marqsim_cluster_probe_failures_total")
    }

    /// Drains initiated on fleet nodes.
    pub fn drains() -> Arc<metrics::Counter> {
        metrics::global().counter("marqsim_cluster_drains_total")
    }
}
