//! Consistent hashing for the fleet: which node owns a fingerprint.
//!
//! A [`HashRing`] maps Hamiltonian fingerprints (or any `u64` shard key)
//! to node names so that each node's in-memory cache stays hot for its
//! shard. Every node contributes [`HashRing::replicas`] *virtual* points
//! on a `u64` ring; a key is owned by the first point clockwise from the
//! key's own ring position. Placement is a pure function of the member
//! set — two routers that agree on membership agree on every placement —
//! and membership changes move only the keys adjacent to the added or
//! removed node's points (≈ `1/n` of the keyspace), which is the whole
//! reason to prefer a ring over `fingerprint % n`.

use std::collections::{BTreeMap, BTreeSet};

/// Virtual points each node contributes when none is specified. 64 points
/// per node keeps the max/mean shard imbalance under ~2x for small fleets
/// while the ring stays a few hundred entries.
pub const DEFAULT_REPLICAS: usize = 64;

/// A consistent-hash ring over node names.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: usize,
    /// Ring points: `(point, node)` — keying by the pair keeps the ring
    /// deterministic even if two virtual points collide on a hash value.
    points: BTreeSet<(u64, String)>,
    nodes: BTreeMap<String, ()>,
}

impl Default for HashRing {
    fn default() -> Self {
        HashRing::new(DEFAULT_REPLICAS)
    }
}

impl HashRing {
    /// An empty ring placing `replicas` virtual points per node.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero — a node with no points is
    /// indistinguishable from an absent node.
    pub fn new(replicas: usize) -> HashRing {
        assert!(replicas > 0, "a ring needs at least one point per node");
        HashRing {
            replicas,
            points: BTreeSet::new(),
            nodes: BTreeMap::new(),
        }
    }

    /// Virtual points contributed per node.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Adds a node; a no-op if it is already a member. Returns whether the
    /// member set changed.
    pub fn add(&mut self, node: &str) -> bool {
        if self.nodes.contains_key(node) {
            return false;
        }
        for replica in 0..self.replicas {
            self.points
                .insert((point_hash(node, replica), node.to_string()));
        }
        self.nodes.insert(node.to_string(), ());
        true
    }

    /// Removes a node; a no-op if it is not a member. Returns whether the
    /// member set changed.
    pub fn remove(&mut self, node: &str) -> bool {
        if self.nodes.remove(node).is_none() {
            return false;
        }
        for replica in 0..self.replicas {
            self.points
                .remove(&(point_hash(node, replica), node.to_string()));
        }
        true
    }

    /// The node owning `fingerprint`: the first ring point clockwise from
    /// the key's position, wrapping at the top. `None` on an empty ring.
    pub fn owner(&self, fingerprint: u64) -> Option<&str> {
        let key = mix(fingerprint);
        self.points
            .range((key, String::new())..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, node)| node.as_str())
    }

    /// Member node names in sorted order.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.keys().map(String::as_str)
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.contains_key(node)
    }

    /// How many nodes are members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// FNV-1a over the node name and replica index: the ring position of one
/// virtual point. FNV matches the engine's fingerprint hash in spirit —
/// deterministic, dependency-free, and stable across processes.
fn point_hash(node: &str, replica: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in node.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    // Separate the replicas of one node across the ring.
    for byte in (replica as u64).to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    mix(hash)
}

/// SplitMix64 finalizer. Fingerprints arrive as FNV outputs whose low bits
/// correlate with the hashed suffix; the finalizer spreads them uniformly
/// over the ring so shard sizes stay balanced.
fn mix(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quickprop::{check, Config};

    fn ring_of(nodes: &[String]) -> HashRing {
        let mut ring = HashRing::default();
        for node in nodes {
            ring.add(node);
        }
        ring
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::default();
        assert!(ring.owner(42).is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn single_node_owns_everything() {
        let mut ring = HashRing::default();
        ring.add("a:1");
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(ring.owner(key), Some("a:1"));
        }
    }

    #[test]
    fn add_and_remove_round_trip() {
        let mut ring = HashRing::default();
        assert!(ring.add("a:1"));
        assert!(!ring.add("a:1"), "double add is a no-op");
        assert!(ring.add("b:2"));
        assert_eq!(ring.len(), 2);
        assert!(ring.remove("a:1"));
        assert!(!ring.remove("a:1"), "double remove is a no-op");
        assert_eq!(ring.nodes().collect::<Vec<_>>(), ["b:2"]);
    }

    /// Placement is a pure function of the member set: insertion order
    /// must not matter, and two independently built rings must agree.
    #[test]
    fn placement_is_deterministic_and_order_independent() {
        check(
            "ring placement is order-independent",
            Config::default().with_cases(32).with_seed(0x51A6),
            |g| {
                let n = g.usize_in(1..8);
                let nodes: Vec<String> = (0..n).map(|i| format!("node{i}:7{i}00")).collect();
                let keys = g.vec_of(1..64, quickprop::Gen::u64);
                let mut shuffled = nodes.clone();
                // Fisher–Yates with generator-driven indices.
                for i in (1..shuffled.len()).rev() {
                    let j = g.usize_in(0..i + 1);
                    shuffled.swap(i, j);
                }
                (nodes, shuffled, keys)
            },
            |(nodes, shuffled, keys)| {
                let forward = ring_of(nodes);
                let reordered = ring_of(shuffled);
                for key in keys {
                    let a = forward.owner(*key);
                    let b = reordered.owner(*key);
                    if a != b {
                        return Err(format!("key {key:#x}: {a:?} vs {b:?} across orders"));
                    }
                }
                Ok(())
            },
        );
    }

    /// Adding one node steals keys only *for* that node; removing one node
    /// reassigns only the keys it owned. Everything else stays put — the
    /// minimal-movement property that keeps per-node caches hot across
    /// membership changes.
    #[test]
    fn membership_changes_move_only_the_affected_share() {
        check(
            "ring movement is minimal on add/remove",
            Config::default().with_cases(32).with_seed(0xC0DE),
            |g| {
                let n = g.usize_in(2..7);
                let nodes: Vec<String> = (0..n).map(|i| format!("node{i}:7{i}00")).collect();
                let keys = g.vec_of(16..128, quickprop::Gen::u64);
                let victim = g.usize_in(0..n);
                (nodes, keys, victim)
            },
            |(nodes, keys, victim)| {
                let base = ring_of(nodes);
                let newcomer = "fresh:7999".to_string();

                let mut grown = base.clone();
                grown.add(&newcomer);
                for key in keys {
                    let before = base.owner(*key).unwrap();
                    let after = grown.owner(*key).unwrap();
                    if after != before && after != newcomer {
                        return Err(format!(
                            "key {key:#x} moved {before} -> {after}, not to the new node"
                        ));
                    }
                }

                let mut shrunk = base.clone();
                shrunk.remove(&nodes[*victim]);
                for key in keys {
                    let before = base.owner(*key).unwrap();
                    let after = shrunk.owner(*key).unwrap();
                    if before != nodes[*victim] && after != before {
                        return Err(format!(
                            "key {key:#x} moved {before} -> {after} though its owner stayed"
                        ));
                    }
                }
                Ok(())
            },
        );
    }

    /// With enough virtual points, no node's shard collapses to nothing on
    /// a small fleet — the balance rationale behind [`DEFAULT_REPLICAS`].
    #[test]
    fn every_node_owns_some_share_of_a_dense_keyspace() {
        let nodes: Vec<String> = (0..3).map(|i| format!("node{i}:7{i}31")).collect();
        let ring = ring_of(&nodes);
        let mut counts = BTreeMap::new();
        for key in 0..4096u64 {
            *counts
                .entry(ring.owner(key).unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3, "all three nodes own keys: {counts:?}");
        for (node, count) in &counts {
            assert!(
                *count > 256,
                "node {node} owns a vanishing share: {counts:?}"
            );
        }
    }
}
