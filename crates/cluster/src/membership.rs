//! Fleet membership: who is healthy, and when to probe next.
//!
//! [`Membership`] is a pure policy table — it decides *when* each node is
//! due a health probe and *what* its health is after each outcome, but
//! performs no I/O and never reads the clock. The router owns the sockets
//! and the event loop; it feeds observed outcomes in via
//! [`record_success`](Membership::record_success) /
//! [`record_failure`](Membership::record_failure) with its own `now`, and
//! arms its deadline wheel from [`next_deadline`](Membership::next_deadline).
//! Keeping the clock out of the table makes every transition unit-testable
//! with synthetic instants.
//!
//! Health follows probe outcomes: a node is [`Health::Up`] while probes
//! succeed, degrades to [`Health::Suspect`] on the first failure, and is
//! marked [`Health::Down`] only after [`MembershipConfig::down_after`]
//! consecutive failures — each retry backed off exponentially and jittered
//! so a fleet of routers does not synchronize its probe storms. A planned
//! removal goes through [`Health::Draining`] instead: no new work routes
//! to the node, in-flight jobs finish, then the router drops it.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Health of one fleet node, as judged by probe outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Probes are succeeding; the node receives new work.
    Up,
    /// At least one probe failed; retries are in flight, routing
    /// continues until the node is declared down.
    Suspect,
    /// `down_after` consecutive probes failed; no new work, in-flight
    /// jobs fail with `node_lost`. Probes continue for reconnection.
    Down,
    /// Planned removal: no new work, in-flight jobs run to completion,
    /// then the node is dropped. Not probed.
    Draining,
}

/// Probe cadence and failure policy.
#[derive(Debug, Clone, Copy)]
pub struct MembershipConfig {
    /// Gap between probes while a node is healthy.
    pub probe_interval: Duration,
    /// Delay before the first retry after a failure; doubles per
    /// consecutive failure.
    pub backoff_base: Duration,
    /// Ceiling on the retry delay, reached after a few doublings and held
    /// while a down node awaits reconnection.
    pub backoff_cap: Duration,
    /// Consecutive failures before a node is declared [`Health::Down`].
    pub down_after: u32,
    /// Jitter applied to every scheduled delay, as a fraction of the
    /// delay (`0.25` → ±25%). Deterministic per (node, probe count).
    pub jitter: f64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            probe_interval: Duration::from_secs(2),
            backoff_base: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(5),
            down_after: 3,
            jitter: 0.25,
        }
    }
}

#[derive(Debug, Clone)]
struct NodeState {
    health: Health,
    /// Consecutive probe failures since the last success.
    failures: u32,
    /// When the next probe is due; `None` while draining.
    next_probe: Option<Instant>,
    /// Monotonic count of scheduling decisions, fed to the jitter hash so
    /// consecutive delays for one node land on different offsets.
    schedules: u64,
}

/// The per-node health table and probe scheduler.
#[derive(Debug, Clone, Default)]
pub struct Membership {
    config: MembershipConfig,
    nodes: BTreeMap<String, NodeState>,
}

impl Membership {
    /// An empty table with the given policy.
    pub fn new(config: MembershipConfig) -> Membership {
        Membership {
            config,
            nodes: BTreeMap::new(),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &MembershipConfig {
        &self.config
    }

    /// Adds a node as [`Health::Up`] with an immediate probe due; a no-op
    /// if already present. Returns whether the member set changed.
    pub fn insert(&mut self, node: &str, now: Instant) -> bool {
        if self.nodes.contains_key(node) {
            return false;
        }
        self.nodes.insert(
            node.to_string(),
            NodeState {
                health: Health::Up,
                failures: 0,
                next_probe: Some(now),
                schedules: 0,
            },
        );
        true
    }

    /// Drops a node entirely. Returns whether it was present.
    pub fn remove(&mut self, node: &str) -> bool {
        self.nodes.remove(node).is_some()
    }

    /// A probe (or any request) to `node` succeeded: the node is
    /// [`Health::Up`] again (draining nodes stay draining), the failure
    /// streak resets, and the next probe lands one jittered
    /// [`MembershipConfig::probe_interval`] out. Returns the new health,
    /// or `None` for an unknown node.
    pub fn record_success(&mut self, node: &str, now: Instant) -> Option<Health> {
        let config = self.config;
        let state = self.nodes.get_mut(node)?;
        state.failures = 0;
        if state.health != Health::Draining {
            state.health = Health::Up;
            state.next_probe = Some(now + jittered(config.probe_interval, &config, node, state));
        }
        Some(state.health)
    }

    /// A probe (or request) to `node` failed: the streak grows, health
    /// degrades to [`Health::Suspect`] and then [`Health::Down`] at
    /// [`MembershipConfig::down_after`], and the retry backs off
    /// exponentially (jittered, capped). Returns the new health, or
    /// `None` for an unknown node.
    pub fn record_failure(&mut self, node: &str, now: Instant) -> Option<Health> {
        let config = self.config;
        let state = self.nodes.get_mut(node)?;
        state.failures = state.failures.saturating_add(1);
        if state.health != Health::Draining {
            state.health = if state.failures >= config.down_after {
                Health::Down
            } else {
                Health::Suspect
            };
            let exponent = state.failures.saturating_sub(1).min(16);
            let delay = config
                .backoff_base
                .saturating_mul(1u32 << exponent)
                .min(config.backoff_cap);
            state.next_probe = Some(now + jittered(delay, &config, node, state));
        }
        Some(state.health)
    }

    /// Marks a probe as *started*: the node's deadline moves one jittered
    /// [`MembershipConfig::probe_interval`] out so the scheduler does not
    /// re-fire while the outcome is pending — the caller's own probe
    /// timeout is expected to resolve first and record an outcome, which
    /// reschedules again. Returns whether the node was probeable (present
    /// and not draining).
    pub fn begin_probe(&mut self, node: &str, now: Instant) -> bool {
        let config = self.config;
        match self.nodes.get_mut(node) {
            Some(state) if state.health != Health::Draining => {
                state.next_probe =
                    Some(now + jittered(config.probe_interval, &config, node, state));
                true
            }
            _ => false,
        }
    }

    /// Marks a node [`Health::Draining`]: no new work, no further probes.
    /// Returns whether the node was present (draining is idempotent).
    pub fn begin_drain(&mut self, node: &str) -> bool {
        match self.nodes.get_mut(node) {
            Some(state) => {
                state.health = Health::Draining;
                state.next_probe = None;
                true
            }
            None => false,
        }
    }

    /// The node's current health, or `None` if unknown.
    pub fn health(&self, node: &str) -> Option<Health> {
        self.nodes.get(node).map(|state| state.health)
    }

    /// Whether new work may route to `node` (up or suspect — a suspect
    /// node keeps serving until it is declared down).
    pub fn is_routable(&self, node: &str) -> bool {
        matches!(self.health(node), Some(Health::Up | Health::Suspect))
    }

    /// Nodes whose probe deadline has arrived, in name order.
    pub fn due_probes(&self, now: Instant) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, state)| state.next_probe.is_some_and(|at| at <= now))
            .map(|(node, _)| node.clone())
            .collect()
    }

    /// The earliest probe deadline across all nodes, for bounding the
    /// event loop's poll wait.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.nodes
            .values()
            .filter_map(|state| state.next_probe)
            .min()
    }

    /// `(node, health)` for every member, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Health)> {
        self.nodes
            .iter()
            .map(|(node, state)| (node.as_str(), state.health))
    }

    /// How many nodes are tracked.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Applies deterministic jitter to a delay: the (node, schedule count)
/// pair hashes to a factor in `[1 - jitter, 1 + jitter]`, so a fleet of
/// routers probing the same nodes never locks onto one phase, yet every
/// transition is replayable in tests.
fn jittered(
    delay: Duration,
    config: &MembershipConfig,
    node: &str,
    state: &mut NodeState,
) -> Duration {
    state.schedules = state.schedules.wrapping_add(1);
    if config.jitter <= 0.0 {
        return delay;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in node.as_bytes() {
        hash = (hash ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash = hash.wrapping_add(state.schedules);
    let mut z = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Uniform in [-1, 1], scaled by the jitter fraction.
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    let factor = 1.0 + config.jitter * (2.0 * unit - 1.0);
    delay.mul_f64(factor.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (Membership, Instant) {
        let mut membership = Membership::default();
        let now = Instant::now();
        membership.insert("a:7100", now);
        (membership, now)
    }

    #[test]
    fn new_nodes_are_up_and_immediately_due() {
        let (membership, now) = table();
        assert_eq!(membership.health("a:7100"), Some(Health::Up));
        assert_eq!(membership.due_probes(now), ["a:7100"]);
        assert!(membership.is_routable("a:7100"));
    }

    #[test]
    fn failures_escalate_suspect_then_down() {
        let (mut membership, now) = table();
        assert_eq!(
            membership.record_failure("a:7100", now),
            Some(Health::Suspect)
        );
        assert!(
            membership.is_routable("a:7100"),
            "one failure does not stop routing"
        );
        assert_eq!(
            membership.record_failure("a:7100", now),
            Some(Health::Suspect)
        );
        assert_eq!(membership.record_failure("a:7100", now), Some(Health::Down));
        assert!(!membership.is_routable("a:7100"));
    }

    #[test]
    fn retry_delays_double_and_cap() {
        let config = MembershipConfig {
            jitter: 0.0,
            ..MembershipConfig::default()
        };
        let mut membership = Membership::new(config);
        let now = Instant::now();
        membership.insert("a:7100", now);
        let mut delays = Vec::new();
        for _ in 0..7 {
            membership.record_failure("a:7100", now);
            let due = membership.next_deadline().unwrap();
            delays.push(due - now);
        }
        assert_eq!(delays[0], config.backoff_base);
        assert_eq!(delays[1], config.backoff_base * 2);
        assert_eq!(delays[2], config.backoff_base * 4);
        assert_eq!(
            *delays.last().unwrap(),
            config.backoff_cap,
            "the exponential series caps: {delays:?}"
        );
    }

    #[test]
    fn success_resets_the_streak_and_health() {
        let (mut membership, now) = table();
        membership.record_failure("a:7100", now);
        membership.record_failure("a:7100", now);
        assert_eq!(membership.record_success("a:7100", now), Some(Health::Up));
        // The streak reset: the next failure is the *first* again.
        assert_eq!(
            membership.record_failure("a:7100", now),
            Some(Health::Suspect)
        );
    }

    #[test]
    fn jitter_stays_bounded_and_is_deterministic() {
        let config = MembershipConfig::default();
        let base = config.probe_interval;
        let run = || {
            let mut membership = Membership::new(config);
            let now = Instant::now();
            membership.insert("a:7100", now);
            let mut delays = Vec::new();
            for _ in 0..32 {
                membership.record_success("a:7100", now);
                delays.push(membership.next_deadline().unwrap() - now);
            }
            delays
        };
        let first = run();
        let lo = base.mul_f64(1.0 - config.jitter);
        let hi = base.mul_f64(1.0 + config.jitter);
        for delay in &first {
            assert!(
                (lo..=hi).contains(delay),
                "jittered delay {delay:?} outside [{lo:?}, {hi:?}]"
            );
        }
        let spread: std::collections::BTreeSet<_> = first.iter().collect();
        assert!(spread.len() > 1, "jitter actually varies across schedules");
        assert_eq!(first, run(), "jitter is deterministic per schedule index");
    }

    #[test]
    fn begin_probe_defers_the_deadline_until_an_outcome() {
        let config = MembershipConfig {
            jitter: 0.0,
            ..MembershipConfig::default()
        };
        let mut membership = Membership::new(config);
        let now = Instant::now();
        membership.insert("a:7100", now);
        assert_eq!(membership.due_probes(now), ["a:7100"]);
        assert!(membership.begin_probe("a:7100", now));
        // The started probe is no longer due — the scheduler cannot spin
        // re-firing it while its outcome is pending.
        assert!(membership.due_probes(now).is_empty());
        assert_eq!(
            membership.next_deadline(),
            Some(now + config.probe_interval)
        );
    }

    #[test]
    fn draining_nodes_stop_probing_and_routing() {
        let (mut membership, now) = table();
        assert!(membership.begin_drain("a:7100"));
        assert_eq!(membership.health("a:7100"), Some(Health::Draining));
        assert!(!membership.is_routable("a:7100"));
        assert!(membership
            .due_probes(now + Duration::from_secs(60))
            .is_empty());
        assert_eq!(membership.next_deadline(), None);
        // Probe outcomes arriving late do not resurrect a draining node.
        assert_eq!(
            membership.record_success("a:7100", now),
            Some(Health::Draining)
        );
        assert_eq!(
            membership.record_failure("a:7100", now),
            Some(Health::Draining)
        );
    }

    #[test]
    fn next_deadline_is_the_minimum_across_nodes() {
        let config = MembershipConfig {
            jitter: 0.0,
            ..MembershipConfig::default()
        };
        let mut membership = Membership::new(config);
        let now = Instant::now();
        membership.insert("a:7100", now);
        membership.insert("b:7200", now);
        membership.record_success("a:7100", now);
        membership.record_failure("b:7200", now);
        // b's first retry (backoff_base) lands before a's probe_interval.
        assert_eq!(membership.next_deadline(), Some(now + config.backoff_base));
        assert_eq!(membership.due_probes(now + config.backoff_base), ["b:7200"]);
    }
}
