//! Deterministic Hamiltonian-term orderings.
//!
//! The deterministic compilation approaches of §3.1 fix one order of the
//! Hamiltonian terms inside a Trotter step and repeat it. This module
//! provides the orderings used by the baselines in the evaluation:
//!
//! * [`lexicographic`] — the lexical ordering explored by Hastings et al. and
//!   Gui et al. for gate cancellation.
//! * [`by_magnitude`] — terms sorted by descending `|h_j|`.
//! * [`greedy_cancellation`] — a nearest-neighbour ordering that greedily
//!   maximizes CNOT cancellation between consecutive terms (a
//!   travelling-salesperson-style heuristic as in Gui et al. [22]).
//! * [`commuting_groups_first`] — groups mutually commutative terms and
//!   concatenates the groups.

use crate::algebra::{cnot_count_between, commuting_groups};
use crate::Hamiltonian;

/// Lexicographic ordering of the Pauli-string text (ties broken by
/// descending coefficient magnitude).
pub fn lexicographic(ham: &Hamiltonian) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ham.num_terms()).collect();
    order.sort_by(|&a, &b| {
        let sa = ham.term(a).string.to_string();
        let sb = ham.term(b).string.to_string();
        sa.cmp(&sb).then_with(|| {
            ham.term(b)
                .coefficient
                .abs()
                .partial_cmp(&ham.term(a).coefficient.abs())
                .expect("coefficients are finite")
        })
    });
    order
}

/// Terms ordered by descending coefficient magnitude.
pub fn by_magnitude(ham: &Hamiltonian) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ham.num_terms()).collect();
    order.sort_by(|&a, &b| {
        ham.term(b)
            .coefficient
            .abs()
            .partial_cmp(&ham.term(a).coefficient.abs())
            .expect("coefficients are finite")
    });
    order
}

/// Greedy nearest-neighbour ordering minimizing the CNOT count between
/// consecutive terms. Starts from the term with the largest coefficient.
pub fn greedy_cancellation(ham: &Hamiltonian) -> Vec<usize> {
    let n = ham.num_terms();
    if n == 0 {
        return Vec::new();
    }
    let start = by_magnitude(ham)[0];
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    order.push(start);
    used[start] = true;
    while order.len() < n {
        let last = *order.last().expect("order is non-empty");
        let mut best: Option<(usize, usize)> = None;
        for j in 0..n {
            if used[j] {
                continue;
            }
            let cost = cnot_count_between(&ham.term(last).string, &ham.term(j).string);
            match best {
                None => best = Some((j, cost)),
                Some((_, best_cost)) if cost < best_cost => best = Some((j, cost)),
                _ => {}
            }
        }
        let (next, _) = best.expect("there is at least one unused term");
        order.push(next);
        used[next] = true;
    }
    order
}

/// Orders terms so that mutually commutative groups appear contiguously
/// (groups themselves ordered by total coefficient weight, descending).
pub fn commuting_groups_first(ham: &Hamiltonian) -> Vec<usize> {
    let mut groups = commuting_groups(ham);
    groups.sort_by(|a, b| {
        let wa: f64 = a.iter().map(|&i| ham.term(i).coefficient.abs()).sum();
        let wb: f64 = b.iter().map(|&i| ham.term(i).coefficient.abs()).sum();
        wb.partial_cmp(&wa).expect("weights are finite")
    });
    groups.into_iter().flatten().collect()
}

/// Total CNOT count between consecutive terms when the given order is
/// traversed once (the quantity the greedy ordering minimizes).
pub fn order_cnot_cost(ham: &Hamiltonian, order: &[usize]) -> usize {
    order
        .windows(2)
        .map(|w| cnot_count_between(&ham.term(w[0]).string, &ham.term(w[1]).string))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY + 0.3 ZZII + 0.2 XXII")
            .unwrap()
    }

    fn assert_permutation(order: &[usize], n: usize) {
        let mut seen = vec![false; n];
        for &i in order {
            assert!(i < n);
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_orderings_are_permutations() {
        let h = ham();
        for order in [
            lexicographic(&h),
            by_magnitude(&h),
            greedy_cancellation(&h),
            commuting_groups_first(&h),
        ] {
            assert_permutation(&order, h.num_terms());
        }
    }

    #[test]
    fn lexicographic_sorts_by_string() {
        let h = ham();
        let order = lexicographic(&h);
        let strings: Vec<String> = order
            .iter()
            .map(|&i| h.term(i).string.to_string())
            .collect();
        let mut sorted = strings.clone();
        sorted.sort();
        assert_eq!(strings, sorted);
    }

    #[test]
    fn by_magnitude_is_descending() {
        let h = ham();
        let order = by_magnitude(&h);
        let mags: Vec<f64> = order.iter().map(|&i| h.term(i).coefficient.abs()).collect();
        for w in mags.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(order[0], 0, "largest coefficient term first");
    }

    #[test]
    fn greedy_is_no_worse_than_original_order_here() {
        let h = ham();
        let greedy = greedy_cancellation(&h);
        let original: Vec<usize> = (0..h.num_terms()).collect();
        assert!(order_cnot_cost(&h, &greedy) <= order_cnot_cost(&h, &original));
    }

    #[test]
    fn commuting_groups_first_keeps_groups_contiguous() {
        let h = ham();
        let order = commuting_groups_first(&h);
        assert_permutation(&order, h.num_terms());
    }

    #[test]
    fn order_cost_of_single_term_is_zero() {
        let h = Hamiltonian::parse("1.0 XX").unwrap();
        assert_eq!(order_cnot_cost(&h, &[0]), 0);
    }
}
