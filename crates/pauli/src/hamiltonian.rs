//! Hamiltonians as weighted sums of Pauli strings.

use std::fmt;
use std::str::FromStr;

use marqsim_linalg::{Complex, Matrix};

use crate::parse::ParseError;
use crate::PauliString;

/// One weighted term `h_j · P_j` of a Hamiltonian decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// The real coefficient `h_j`.
    pub coefficient: f64,
    /// The Pauli string `P_j`.
    pub string: PauliString,
}

impl Term {
    /// Creates a new term.
    pub fn new(coefficient: f64, string: PauliString) -> Self {
        Term {
            coefficient,
            string,
        }
    }
}

/// A Hamiltonian `H = Σ_j h_j P_j` decomposed into Pauli strings.
///
/// This is the input language of the MarQSim compiler (§2.3). The type keeps
/// terms in insertion order, exposes the quantities Algorithm 1 needs
/// (`λ = Σ_j |h_j|`, the normalized distribution `π_j = |h_j| / λ`), and can
/// round-trip through a simple text format.
///
/// # Text format
///
/// ```text
/// 1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY
/// ```
///
/// Terms are separated by `+`; negative coefficients are written as part of
/// the coefficient (`+ -0.25 XY`). Lines starting with `#` are ignored when
/// parsing multi-line input.
///
/// # Example
///
/// ```
/// use marqsim_pauli::Hamiltonian;
///
/// # fn main() -> Result<(), marqsim_pauli::ParseError> {
/// let ham = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY")?;
/// let pi = ham.stationary_distribution();
/// assert!((pi[0] - 0.5).abs() < 1e-12);
/// assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hamiltonian {
    num_qubits: usize,
    terms: Vec<Term>,
}

impl Hamiltonian {
    /// Creates a Hamiltonian from a list of terms.
    ///
    /// Terms with zero coefficient are dropped; duplicate Pauli strings are
    /// merged by summing their coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::EmptyHamiltonian`] if no non-zero term remains,
    /// or [`ParseError::InconsistentQubitCount`] if the terms act on
    /// different numbers of qubits.
    pub fn new(terms: Vec<Term>) -> Result<Self, ParseError> {
        let mut merged: Vec<Term> = Vec::with_capacity(terms.len());
        let mut num_qubits = None;
        for term in terms {
            let n = term.string.num_qubits();
            match num_qubits {
                None => num_qubits = Some(n),
                Some(expected) if expected != n => {
                    return Err(ParseError::InconsistentQubitCount { expected, found: n })
                }
                _ => {}
            }
            if term.coefficient == 0.0 {
                continue;
            }
            if let Some(existing) = merged.iter_mut().find(|t| t.string == term.string) {
                existing.coefficient += term.coefficient;
            } else {
                merged.push(term);
            }
        }
        merged.retain(|t| t.coefficient.abs() > 0.0);
        let num_qubits = num_qubits.ok_or(ParseError::EmptyHamiltonian)?;
        if merged.is_empty() {
            return Err(ParseError::EmptyHamiltonian);
        }
        Ok(Hamiltonian {
            num_qubits,
            terms: merged,
        })
    }

    /// Parses a Hamiltonian from the textual format described in the type
    /// documentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed term.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let cleaned: String = text
            .lines()
            .filter(|line| !line.trim_start().starts_with('#'))
            .collect::<Vec<_>>()
            .join(" ");
        let mut terms = Vec::new();
        for raw in cleaned.split('+') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let mut parts = raw.split_whitespace();
            let coeff_text = parts.next().ok_or_else(|| ParseError::MalformedTerm {
                term: raw.to_string(),
            })?;
            let string_text = parts.next().ok_or_else(|| ParseError::MalformedTerm {
                term: raw.to_string(),
            })?;
            if parts.next().is_some() {
                return Err(ParseError::MalformedTerm {
                    term: raw.to_string(),
                });
            }
            let coefficient: f64 =
                coeff_text
                    .parse()
                    .map_err(|_| ParseError::InvalidCoefficient {
                        text: coeff_text.to_string(),
                    })?;
            let string = PauliString::from_str(string_text)?;
            terms.push(Term::new(coefficient, string));
        }
        Hamiltonian::new(terms)
    }

    /// Number of qubits the Hamiltonian acts on.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of Pauli-string terms.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The terms in insertion order.
    #[inline]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// A single term by index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_terms()`.
    #[inline]
    pub fn term(&self, index: usize) -> &Term {
        &self.terms[index]
    }

    /// `λ = Σ_j |h_j|`, the 1-norm of the coefficients. This determines the
    /// qDRIFT sampling count `N = ⌈2 λ² t² / ε⌉` in Algorithm 1.
    pub fn lambda(&self) -> f64 {
        self.terms.iter().map(|t| t.coefficient.abs()).sum()
    }

    /// The distribution `π_j = |h_j| / λ` used as both the initial
    /// distribution and the stationary distribution in Theorem 4.1.
    pub fn stationary_distribution(&self) -> Vec<f64> {
        let lambda = self.lambda();
        self.terms
            .iter()
            .map(|t| t.coefficient.abs() / lambda)
            .collect()
    }

    /// Splits any term whose stationary probability exceeds `0.5` into two
    /// identical terms with half the coefficient, as prescribed in the proof
    /// of Theorem 5.1 (Appendix A.3). Without this, the min-cost-flow model
    /// with self-loops removed has no feasible solution.
    pub fn split_dominant_terms(&self) -> Hamiltonian {
        let lambda = self.lambda();
        let mut terms = Vec::with_capacity(self.terms.len() + 2);
        for t in &self.terms {
            if t.coefficient.abs() / lambda > 0.5 {
                terms.push(Term::new(t.coefficient / 2.0, t.string.clone()));
                terms.push(Term::new(t.coefficient / 2.0, t.string.clone()));
            } else {
                terms.push(t.clone());
            }
        }
        // Bypass `new` so the two half terms are not re-merged.
        Hamiltonian {
            num_qubits: self.num_qubits,
            terms,
        }
    }

    /// [`Self::split_dominant_terms`] when a dominant term exists, a plain
    /// clone otherwise — the canonical pre-compilation normalization every
    /// transition-matrix construction path applies.
    pub fn split_if_dominant(&self) -> Hamiltonian {
        if self.has_dominant_term() {
            self.split_dominant_terms()
        } else {
            self.clone()
        }
    }

    /// Returns `true` if any term carries more than half of the total weight
    /// (the special case handled by [`Self::split_dominant_terms`]).
    pub fn has_dominant_term(&self) -> bool {
        let lambda = self.lambda();
        self.terms
            .iter()
            .any(|t| t.coefficient.abs() / lambda > 0.5)
    }

    /// Dense `2^n × 2^n` matrix representation `Σ_j h_j P_j`.
    ///
    /// Exponential in the qubit count; intended for exact references on small
    /// systems.
    pub fn to_matrix(&self) -> Matrix {
        let dim = 1usize << self.num_qubits;
        let mut m = Matrix::zeros(dim, dim);
        for term in &self.terms {
            m = &m
                + &term
                    .string
                    .to_matrix()
                    .scale(Complex::real(term.coefficient));
        }
        m
    }

    /// Returns a new Hamiltonian with terms sorted by a caller-provided
    /// permutation (used by the deterministic-ordering baselines).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..num_terms()`.
    pub fn reordered(&self, order: &[usize]) -> Hamiltonian {
        assert_eq!(order.len(), self.terms.len(), "order must cover every term");
        let mut seen = vec![false; self.terms.len()];
        let terms = order
            .iter()
            .map(|&i| {
                assert!(!seen[i], "order must be a permutation (duplicate {i})");
                seen[i] = true;
                self.terms[i].clone()
            })
            .collect();
        Hamiltonian {
            num_qubits: self.num_qubits,
            terms,
        }
    }
}

impl fmt::Display for Hamiltonian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{} {}", t.coefficient, t.string)?;
        }
        Ok(())
    }
}

impl FromStr for Hamiltonian {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Hamiltonian::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_4_1() -> Hamiltonian {
        Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY").unwrap()
    }

    #[test]
    fn parse_example_4_1() {
        let h = example_4_1();
        assert_eq!(h.num_qubits(), 4);
        assert_eq!(h.num_terms(), 4);
        assert!((h.lambda() - 2.0).abs() < 1e-12);
        let pi = h.stationary_distribution();
        assert!((pi[0] - 0.5).abs() < 1e-12);
        assert!((pi[1] - 0.25).abs() < 1e-12);
        assert!((pi[2] - 0.2).abs() < 1e-12);
        assert!((pi[3] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn display_round_trip() {
        let h = example_4_1();
        let reparsed = Hamiltonian::parse(&h.to_string()).unwrap();
        assert_eq!(h, reparsed);
    }

    #[test]
    fn parse_with_comments_and_negative_coefficients() {
        let text = "# a comment line\n0.5 XX + -0.25 ZZ\n# another\n+ 0.125 XY";
        let h = Hamiltonian::parse(text).unwrap();
        assert_eq!(h.num_terms(), 3);
        assert!((h.term(1).coefficient + 0.25).abs() < 1e-12);
        assert!((h.lambda() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let h = Hamiltonian::parse("0.5 XX + 0.25 XX + 1.0 ZZ").unwrap();
        assert_eq!(h.num_terms(), 2);
        assert!((h.term(0).coefficient - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_terms_are_dropped() {
        let h = Hamiltonian::parse("0.0 XX + 1.0 ZZ").unwrap();
        assert_eq!(h.num_terms(), 1);
        assert_eq!(h.term(0).string.to_string(), "ZZ");
    }

    #[test]
    fn cancelling_terms_yield_error() {
        let err = Hamiltonian::parse("0.5 XX + -0.5 XX").unwrap_err();
        assert_eq!(err, ParseError::EmptyHamiltonian);
    }

    #[test]
    fn inconsistent_qubit_counts_rejected() {
        let err = Hamiltonian::parse("0.5 XX + 0.5 XXX").unwrap_err();
        assert!(matches!(err, ParseError::InconsistentQubitCount { .. }));
    }

    #[test]
    fn malformed_terms_rejected() {
        assert!(matches!(
            Hamiltonian::parse("0.5").unwrap_err(),
            ParseError::MalformedTerm { .. }
        ));
        assert!(matches!(
            Hamiltonian::parse("abc XX").unwrap_err(),
            ParseError::InvalidCoefficient { .. }
        ));
        assert!(matches!(
            Hamiltonian::parse("0.5 XX extra").unwrap_err(),
            ParseError::MalformedTerm { .. }
        ));
    }

    #[test]
    fn to_matrix_is_hermitian_and_matches_manual_sum() {
        let h = Hamiltonian::parse("0.7 XZ + -0.3 ZY").unwrap();
        let m = h.to_matrix();
        assert!(m.is_hermitian(1e-12));
        let manual = &"XZ"
            .parse::<PauliString>()
            .unwrap()
            .to_matrix()
            .scale_real(0.7)
            + &"ZY"
                .parse::<PauliString>()
                .unwrap()
                .to_matrix()
                .scale_real(-0.3);
        assert!(m.approx_eq(&manual, 1e-12));
    }

    #[test]
    fn dominant_term_splitting() {
        let h = Hamiltonian::parse("3.0 XX + 0.5 ZZ + 0.5 XY").unwrap();
        assert!(h.has_dominant_term());
        let split = h.split_dominant_terms();
        assert_eq!(split.num_terms(), 4);
        assert!(!split.has_dominant_term());
        assert!((split.lambda() - h.lambda()).abs() < 1e-12);
        // The split Hamiltonian represents the same operator.
        assert!(split.to_matrix().approx_eq(&h.to_matrix(), 1e-12));
    }

    #[test]
    fn reordered_permutes_terms() {
        let h = example_4_1();
        let r = h.reordered(&[3, 2, 1, 0]);
        assert_eq!(r.term(0).string.to_string(), "ZXZY");
        assert_eq!(r.term(3).string.to_string(), "IIIZ");
        assert!((r.lambda() - h.lambda()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reordered_rejects_duplicates() {
        let h = example_4_1();
        let _ = h.reordered(&[0, 0, 1, 2]);
    }
}
