//! Errors for parsing Pauli strings and Hamiltonians from text.

use std::fmt;

/// Errors produced when parsing [`crate::PauliString`] or
/// [`crate::Hamiltonian`] values from text.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A Pauli string contained a character other than `I`, `X`, `Y`, `Z`.
    InvalidPauliChar {
        /// The offending character.
        character: char,
        /// Zero-based position within the Pauli string.
        position: usize,
    },
    /// An empty Pauli string was supplied.
    EmptyPauliString,
    /// A Hamiltonian term was missing either the coefficient or the string.
    MalformedTerm {
        /// The raw text of the term that failed to parse.
        term: String,
    },
    /// The coefficient of a term could not be parsed as a float.
    InvalidCoefficient {
        /// The raw coefficient text.
        text: String,
    },
    /// Terms in one Hamiltonian act on different numbers of qubits.
    InconsistentQubitCount {
        /// Qubit count of the first term.
        expected: usize,
        /// Qubit count of the offending term.
        found: usize,
    },
    /// The Hamiltonian contained no terms.
    EmptyHamiltonian,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::InvalidPauliChar {
                character,
                position,
            } => write!(
                f,
                "invalid Pauli character '{character}' at position {position}"
            ),
            ParseError::EmptyPauliString => write!(f, "empty Pauli string"),
            ParseError::MalformedTerm { term } => {
                write!(f, "malformed Hamiltonian term '{term}'")
            }
            ParseError::InvalidCoefficient { text } => {
                write!(f, "invalid coefficient '{text}'")
            }
            ParseError::InconsistentQubitCount { expected, found } => write!(
                f,
                "inconsistent qubit count: expected {expected}, found {found}"
            ),
            ParseError::EmptyHamiltonian => write!(f, "hamiltonian has no terms"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(ParseError, &str)> = vec![
            (
                ParseError::InvalidPauliChar {
                    character: 'Q',
                    position: 3,
                },
                "invalid Pauli character",
            ),
            (ParseError::EmptyPauliString, "empty"),
            (
                ParseError::MalformedTerm {
                    term: "0.5".to_string(),
                },
                "malformed",
            ),
            (
                ParseError::InvalidCoefficient {
                    text: "abc".to_string(),
                },
                "invalid coefficient",
            ),
            (
                ParseError::InconsistentQubitCount {
                    expected: 4,
                    found: 3,
                },
                "inconsistent",
            ),
            (ParseError::EmptyHamiltonian, "no terms"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
