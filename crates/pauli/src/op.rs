//! Single-qubit Pauli operators.

use std::fmt;

use marqsim_linalg::{Complex, Matrix};

/// A single-qubit Pauli operator.
///
/// The discriminants are chosen so that the operator can be encoded in two
/// bits as `(x, z)`: `I = 00`, `Z = 01`, `X = 10`, `Y = 11`. This symplectic
/// encoding makes Pauli-string products and commutation checks cheap bitwise
/// operations (see [`crate::PauliString`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[derive(Default)]
pub enum PauliOp {
    /// The identity operator.
    #[default]
    I = 0b00,
    /// Pauli `Z` (phase flip).
    Z = 0b01,
    /// Pauli `X` (bit flip).
    X = 0b10,
    /// Pauli `Y = iXZ`.
    Y = 0b11,
}

impl PauliOp {
    /// All four operators in canonical `I, X, Y, Z` order.
    pub const ALL: [PauliOp; 4] = [PauliOp::I, PauliOp::X, PauliOp::Y, PauliOp::Z];

    /// Returns the `x` component of the symplectic encoding.
    #[inline]
    pub fn x_bit(self) -> bool {
        (self as u8) & 0b10 != 0
    }

    /// Returns the `z` component of the symplectic encoding.
    #[inline]
    pub fn z_bit(self) -> bool {
        (self as u8) & 0b01 != 0
    }

    /// Builds an operator from its symplectic `(x, z)` bits.
    #[inline]
    pub fn from_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => PauliOp::I,
            (false, true) => PauliOp::Z,
            (true, false) => PauliOp::X,
            (true, true) => PauliOp::Y,
        }
    }

    /// Returns `true` for the identity operator.
    #[inline]
    pub fn is_identity(self) -> bool {
        self == PauliOp::I
    }

    /// Single-character representation (`I`, `X`, `Y`, `Z`).
    pub fn to_char(self) -> char {
        match self {
            PauliOp::I => 'I',
            PauliOp::X => 'X',
            PauliOp::Y => 'Y',
            PauliOp::Z => 'Z',
        }
    }

    /// Parses a single character; returns `None` for anything other than
    /// `I`, `X`, `Y`, `Z` (case-insensitive).
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'I' => Some(PauliOp::I),
            'X' => Some(PauliOp::X),
            'Y' => Some(PauliOp::Y),
            'Z' => Some(PauliOp::Z),
            _ => None,
        }
    }

    /// Product of two single-qubit Paulis, returned as `(phase, operator)`
    /// where the full product is `phase * operator` and `phase` is one of
    /// `±1, ±i`.
    pub fn mul(self, other: PauliOp) -> (Complex, PauliOp) {
        use PauliOp::*;
        if self == I {
            return (Complex::ONE, other);
        }
        if other == I {
            return (Complex::ONE, self);
        }
        if self == other {
            return (Complex::ONE, I);
        }
        // Cyclic: XY = iZ, YZ = iX, ZX = iY; reversed order picks up -i.
        let (phase, result) = match (self, other) {
            (X, Y) => (Complex::I, Z),
            (Y, Z) => (Complex::I, X),
            (Z, X) => (Complex::I, Y),
            (Y, X) => (-Complex::I, Z),
            (Z, Y) => (-Complex::I, X),
            (X, Z) => (-Complex::I, Y),
            _ => unreachable!("identity and equal cases already handled"),
        };
        (phase, result)
    }

    /// Returns `true` if the two operators commute.
    #[inline]
    pub fn commutes_with(self, other: PauliOp) -> bool {
        self == PauliOp::I || other == PauliOp::I || self == other
    }

    /// The 2×2 matrix representation of the operator.
    pub fn matrix(self) -> Matrix {
        match self {
            PauliOp::I => Matrix::identity(2),
            PauliOp::X => Matrix::from_real_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]),
            PauliOp::Y => Matrix::from_rows(&[
                vec![Complex::ZERO, Complex::new(0.0, -1.0)],
                vec![Complex::new(0.0, 1.0), Complex::ZERO],
            ]),
            PauliOp::Z => Matrix::from_real_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]]),
        }
    }
}

impl fmt::Display for PauliOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symplectic_round_trip() {
        for op in PauliOp::ALL {
            assert_eq!(PauliOp::from_bits(op.x_bit(), op.z_bit()), op);
        }
    }

    #[test]
    fn char_round_trip() {
        for op in PauliOp::ALL {
            assert_eq!(PauliOp::from_char(op.to_char()), Some(op));
            assert_eq!(
                PauliOp::from_char(op.to_char().to_ascii_lowercase()),
                Some(op)
            );
        }
        assert_eq!(PauliOp::from_char('Q'), None);
    }

    #[test]
    fn products_match_matrix_products() {
        for a in PauliOp::ALL {
            for b in PauliOp::ALL {
                let (phase, c) = a.mul(b);
                let lhs = a.matrix().matmul(&b.matrix());
                let rhs = c.matrix().scale(phase);
                assert!(
                    lhs.approx_eq(&rhs, 1e-12),
                    "product mismatch for {a}{b} -> {phase} {c}"
                );
            }
        }
    }

    #[test]
    fn squares_are_identity() {
        for op in PauliOp::ALL {
            let (phase, result) = op.mul(op);
            assert_eq!(result, PauliOp::I);
            assert!(phase.approx_eq(Complex::ONE, 1e-15));
        }
    }

    #[test]
    fn commutation_matches_matrices() {
        for a in PauliOp::ALL {
            for b in PauliOp::ALL {
                let ab = a.matrix().matmul(&b.matrix());
                let ba = b.matrix().matmul(&a.matrix());
                let commutes = ab.approx_eq(&ba, 1e-12);
                assert_eq!(a.commutes_with(b), commutes, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn xy_equals_i_z() {
        let (phase, op) = PauliOp::X.mul(PauliOp::Y);
        assert_eq!(op, PauliOp::Z);
        assert!(phase.approx_eq(Complex::I, 1e-15));
    }

    #[test]
    fn matrices_are_hermitian_unitary_involutions() {
        for op in PauliOp::ALL {
            let m = op.matrix();
            assert!(m.is_hermitian(1e-15));
            assert!(m.is_unitary(1e-15));
        }
    }
}
