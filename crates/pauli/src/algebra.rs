//! Pauli-algebra utilities above the level of single strings.
//!
//! Deterministic compilation approaches (§3.1) group mutually commutative
//! Pauli strings to reduce Trotter error or enable simultaneous
//! diagonalization. This module provides the commutation analysis those
//! orderings build on, plus the CNOT-count oracle shared by the MarQSim
//! min-cost-flow model and the gate-cancellation post-pass.

use crate::{Hamiltonian, PauliString};

/// Number of CNOT gates between the two `Rz` rotations when the circuit for
/// `exp(iθ P_next)` directly follows the circuit for `exp(iθ P_prev)` and the
/// CNOT-tree cancellation of Gui et al. (Fig. 6 of the paper) is applied.
///
/// Each Pauli-rotation circuit uses a CNOT ladder touching every qubit in the
/// string's support. When both strings apply the *same non-identity operator*
/// on a qubit, the trailing CNOT of the first circuit cancels with the
/// leading CNOT of the second on that qubit. Two identical strings therefore
/// cost `0` CNOTs between their rotations.
///
/// # Panics
///
/// Panics if the strings act on different numbers of qubits.
///
/// # Example
///
/// ```
/// use marqsim_pauli::algebra::cnot_count_between;
/// use marqsim_pauli::PauliString;
///
/// let zzzz: PauliString = "ZZZZ".parse().unwrap();
/// let xzxz: PauliString = "XZXZ".parse().unwrap();
/// // 3 CNOTs close the ZZZZ ladder + 3 open the XZXZ ladder, minus 2·2 cancelled.
/// assert_eq!(cnot_count_between(&zzzz, &xzxz), 2);
/// ```
pub fn cnot_count_between(prev: &PauliString, next: &PauliString) -> usize {
    assert_eq!(
        prev.num_qubits(),
        next.num_qubits(),
        "CNOT count requires equal qubit counts"
    );
    if prev == next {
        // Identical terms merge into a single rotation with doubled angle.
        return 0;
    }
    let ladder = |p: &PauliString| p.weight().saturating_sub(1);
    let matched = prev.matching_support(next);
    // Every qubit where the two strings apply the same non-identity operator
    // has its pair of facing CNOTs cancelled (Fig. 6), bounded by each
    // ladder's size.
    ladder(prev).saturating_sub(matched) + ladder(next).saturating_sub(matched)
}

/// Number of CNOT gates in a standalone Pauli-rotation circuit (both ladders,
/// no neighbour to cancel against).
pub fn cnot_count_standalone(p: &PauliString) -> usize {
    2 * p.weight().saturating_sub(1)
}

/// The symmetric commutation matrix of a Hamiltonian: entry `(i, j)` is
/// `true` iff terms `i` and `j` commute.
pub fn commutation_matrix(ham: &Hamiltonian) -> Vec<Vec<bool>> {
    let n = ham.num_terms();
    let mut m = vec![vec![false; n]; n];
    for i in 0..n {
        m[i][i] = true;
        for j in (i + 1)..n {
            let c = ham.term(i).string.commutes_with(&ham.term(j).string);
            m[i][j] = c;
            m[j][i] = c;
        }
    }
    m
}

/// Greedily partitions the Hamiltonian terms into groups of mutually
/// commutative strings (the grouping used by the "commuting groups" ordering
/// of Gui et al. [22] and van den Berg & Temme [66]).
///
/// Returns the groups as lists of term indices; every index appears in
/// exactly one group.
pub fn commuting_groups(ham: &Hamiltonian) -> Vec<Vec<usize>> {
    let comm = commutation_matrix(ham);
    let n = ham.num_terms();
    let mut assigned = vec![false; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        let mut group = vec![i];
        assigned[i] = true;
        for j in (i + 1)..n {
            if assigned[j] {
                continue;
            }
            if group.iter().all(|&g| comm[g][j]) {
                group.push(j);
                assigned[j] = true;
            }
        }
        groups.push(group);
    }
    groups
}

/// Fraction of term pairs that commute — a rough indicator of how much the
/// commuting-group optimizations can help on a given Hamiltonian.
pub fn commuting_fraction(ham: &Hamiltonian) -> f64 {
    let n = ham.num_terms();
    if n < 2 {
        return 1.0;
    }
    let comm = commutation_matrix(ham);
    let mut commuting = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if comm[i][j] {
                commuting += 1;
            }
        }
    }
    commuting as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham(text: &str) -> Hamiltonian {
        Hamiltonian::parse(text).unwrap()
    }

    #[test]
    fn cnot_count_identical_terms_is_zero() {
        let p: PauliString = "XYZZ".parse().unwrap();
        assert_eq!(cnot_count_between(&p, &p), 0);
    }

    #[test]
    fn cnot_count_disjoint_support_has_no_cancellation() {
        let a: PauliString = "XXII".parse().unwrap();
        let b: PauliString = "IIZZ".parse().unwrap();
        assert_eq!(cnot_count_between(&a, &b), 2);
        assert_eq!(cnot_count_standalone(&a), 2);
    }

    #[test]
    fn cnot_count_paper_figure_6_example() {
        // ZZZZ followed by XZXZ share Z on two qubits.
        let a: PauliString = "ZZZZ".parse().unwrap();
        let b: PauliString = "XZXZ".parse().unwrap();
        let full = cnot_count_between(&a, &b);
        assert!(full < cnot_count_standalone(&a) / 2 + cnot_count_standalone(&b) / 2 + 1);
        assert_eq!(full, 2);
    }

    #[test]
    fn cnot_count_is_symmetric() {
        let strings = ["ZZZZ", "XZXZ", "XXYY", "IIIZ", "ZXZY"];
        for a in strings {
            for b in strings {
                let pa: PauliString = a.parse().unwrap();
                let pb: PauliString = b.parse().unwrap();
                assert_eq!(
                    cnot_count_between(&pa, &pb),
                    cnot_count_between(&pb, &pa),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn single_qubit_strings_need_no_cnots() {
        let a: PauliString = "IIXI".parse().unwrap();
        let b: PauliString = "IZII".parse().unwrap();
        assert_eq!(cnot_count_between(&a, &b), 0);
        assert_eq!(cnot_count_standalone(&a), 0);
    }

    #[test]
    fn commutation_matrix_is_symmetric_with_true_diagonal() {
        let h = ham("1.0 XX + 0.5 ZZ + 0.2 XZ + 0.1 ZX");
        let m = commutation_matrix(&h);
        for i in 0..h.num_terms() {
            assert!(m[i][i]);
            for j in 0..h.num_terms() {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        // XX and ZZ commute; XZ and ZX commute; XX and XZ anticommute.
        assert!(m[0][1]);
        assert!(m[2][3]);
        assert!(!m[0][2]);
    }

    #[test]
    fn commuting_groups_cover_all_terms_exactly_once() {
        let h = ham("1.0 XXI + 0.5 ZZI + 0.2 IXZ + 0.1 ZIX + 0.3 YYY");
        let groups = commuting_groups(&h);
        let mut seen = vec![false; h.num_terms()];
        for g in &groups {
            for &i in g {
                assert!(!seen[i], "term {i} appears twice");
                seen[i] = true;
            }
            // Every pair inside a group commutes.
            for (a_idx, &a) in g.iter().enumerate() {
                for &b in &g[a_idx + 1..] {
                    assert!(h.term(a).string.commutes_with(&h.term(b).string));
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn commuting_fraction_bounds() {
        let all_commute = ham("1.0 ZZ + 0.5 ZI + 0.2 IZ");
        assert!((commuting_fraction(&all_commute) - 1.0).abs() < 1e-12);
        let single = ham("1.0 ZZ");
        assert_eq!(commuting_fraction(&single), 1.0);
        let mixed = ham("1.0 XX + 0.5 ZZ + 0.2 XZ");
        let f = commuting_fraction(&mixed);
        assert!(f > 0.0 && f < 1.0);
    }
}
