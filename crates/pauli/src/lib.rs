//! Pauli operators, Pauli strings, and Hamiltonians.
//!
//! Quantum Hamiltonian simulation starts from a Hamiltonian decomposed into a
//! weighted sum of Pauli strings, `H = Σ_j h_j P_j` (§2.3 of the MarQSim
//! paper). This crate is the workspace's representation of that input
//! language:
//!
//! * [`PauliOp`] — the single-qubit operators `I`, `X`, `Y`, `Z`.
//! * [`PauliString`] — an `n`-qubit tensor product of Pauli operators with
//!   full multiplication/commutation algebra and dense-matrix export.
//! * [`Hamiltonian`] — a list of weighted Pauli strings with the bookkeeping
//!   the compiler needs (`λ = Σ|h_j|`, normalization, term merging) plus a
//!   human-readable text format (`"1.0 IIIZ + 0.5 IIZZ"`).
//! * [`ordering`] — deterministic term orderings (lexicographic, magnitude,
//!   greedy matched-suffix) used by the Trotter-style baselines of §3.1.
//!
//! # Example
//!
//! ```
//! use marqsim_pauli::{Hamiltonian, PauliString};
//!
//! # fn main() -> Result<(), marqsim_pauli::ParseError> {
//! let ham = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY")?;
//! assert_eq!(ham.num_qubits(), 4);
//! assert_eq!(ham.num_terms(), 4);
//! assert!((ham.lambda() - 2.0).abs() < 1e-12);
//!
//! let zz: PauliString = "IIZZ".parse()?;
//! assert_eq!(zz.support().count(), 2);
//! # Ok(())
//! # }
//! ```

mod hamiltonian;
mod op;
mod parse;
mod string;

pub mod algebra;
pub mod ordering;

pub use hamiltonian::{Hamiltonian, Term};
pub use op::PauliOp;
pub use parse::ParseError;
pub use string::PauliString;
