//! Multi-qubit Pauli strings.

use std::fmt;
use std::str::FromStr;

use marqsim_linalg::{Complex, Matrix};

use crate::parse::ParseError;
use crate::PauliOp;

/// An `n`-qubit Pauli string `σ_{n-1} ⊗ … ⊗ σ_1 ⊗ σ_0`.
///
/// Qubit `0` is the **rightmost** character of the textual representation,
/// matching the convention in §2.3 of the paper (`P = σ_n σ_{n-1} … σ_1`).
/// Internally the operators are stored indexed by qubit, so `op(0)` is the
/// operator acting on qubit 0.
///
/// # Example
///
/// ```
/// use marqsim_pauli::{PauliOp, PauliString};
///
/// let p: PauliString = "XYZI".parse().unwrap();
/// assert_eq!(p.num_qubits(), 4);
/// assert_eq!(p.op(0), PauliOp::I); // rightmost character
/// assert_eq!(p.op(3), PauliOp::X); // leftmost character
/// assert_eq!(p.weight(), 3);
/// assert_eq!(p.to_string(), "XYZI");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PauliString {
    /// Operators indexed by qubit (qubit 0 first).
    ops: Vec<PauliOp>,
}

impl PauliString {
    /// Creates the all-identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            ops: vec![PauliOp::I; n],
        }
    }

    /// Creates a string from operators indexed by qubit (qubit 0 first).
    pub fn from_ops(ops: Vec<PauliOp>) -> Self {
        PauliString { ops }
    }

    /// Creates a string with a single non-identity operator at `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, op: PauliOp) -> Self {
        assert!(qubit < n, "qubit index {qubit} out of range for {n} qubits");
        let mut ops = vec![PauliOp::I; n];
        ops[qubit] = op;
        PauliString { ops }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.ops.len()
    }

    /// The operator acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[inline]
    pub fn op(&self, qubit: usize) -> PauliOp {
        self.ops[qubit]
    }

    /// Operators indexed by qubit (qubit 0 first).
    #[inline]
    pub fn ops(&self) -> &[PauliOp] {
        &self.ops
    }

    /// Returns `true` if every operator is the identity.
    pub fn is_identity(&self) -> bool {
        self.ops.iter().all(|op| op.is_identity())
    }

    /// Number of non-identity operators (the Pauli weight).
    pub fn weight(&self) -> usize {
        self.ops.iter().filter(|op| !op.is_identity()).count()
    }

    /// Iterator over `(qubit, op)` pairs with non-identity operators.
    pub fn support(&self) -> impl Iterator<Item = (usize, PauliOp)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| !op.is_identity())
            .map(|(q, &op)| (q, op))
    }

    /// Bitmask of qubits on which the string applies `X` or `Y` (bit-flip
    /// component of the symplectic representation).
    ///
    /// # Panics
    ///
    /// Panics if the string has more than 64 qubits.
    pub fn x_mask(&self) -> u64 {
        assert!(
            self.num_qubits() <= 64,
            "bitmask only supports up to 64 qubits"
        );
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.x_bit())
            .fold(0u64, |m, (q, _)| m | (1u64 << q))
    }

    /// Bitmask of qubits on which the string applies `Z` or `Y` (phase-flip
    /// component of the symplectic representation).
    ///
    /// # Panics
    ///
    /// Panics if the string has more than 64 qubits.
    pub fn z_mask(&self) -> u64 {
        assert!(
            self.num_qubits() <= 64,
            "bitmask only supports up to 64 qubits"
        );
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.z_bit())
            .fold(0u64, |m, (q, _)| m | (1u64 << q))
    }

    /// Returns `true` if the two strings commute as operators.
    ///
    /// Two Pauli strings commute iff they anticommute on an even number of
    /// qubit positions.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on different numbers of qubits.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(
            self.num_qubits(),
            other.num_qubits(),
            "commutation check requires equal qubit counts"
        );
        let anticommuting = self
            .ops
            .iter()
            .zip(other.ops.iter())
            .filter(|(a, b)| !a.commutes_with(**b))
            .count();
        anticommuting % 2 == 0
    }

    /// Product of two Pauli strings, returned as `(phase, string)` with
    /// `phase ∈ {±1, ±i}` so that `self · other = phase · string`.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on different numbers of qubits.
    pub fn mul(&self, other: &PauliString) -> (Complex, PauliString) {
        assert_eq!(
            self.num_qubits(),
            other.num_qubits(),
            "product requires equal qubit counts"
        );
        let mut phase = Complex::ONE;
        let ops = self
            .ops
            .iter()
            .zip(other.ops.iter())
            .map(|(&a, &b)| {
                let (p, c) = a.mul(b);
                phase *= p;
                c
            })
            .collect();
        (phase, PauliString { ops })
    }

    /// Number of qubits where both strings apply the **same non-identity**
    /// operator. This is the quantity that drives CNOT cancellation between
    /// consecutive Pauli-rotation circuits (§5.2, Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if the strings act on different numbers of qubits.
    pub fn matching_support(&self, other: &PauliString) -> usize {
        assert_eq!(
            self.num_qubits(),
            other.num_qubits(),
            "matching_support requires equal qubit counts"
        );
        self.ops
            .iter()
            .zip(other.ops.iter())
            .filter(|(a, b)| !a.is_identity() && a == b)
            .count()
    }

    /// Dense `2^n × 2^n` matrix representation (leftmost character of the
    /// display form is the most-significant tensor factor).
    ///
    /// Intended for testing and small-system exact references; the cost is
    /// exponential in the number of qubits.
    pub fn to_matrix(&self) -> Matrix {
        let mut m = Matrix::identity(1);
        // Highest qubit index is the leftmost (most significant) factor.
        for q in (0..self.num_qubits()).rev() {
            m = m.kron(&self.ops[q].matrix());
        }
        m
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display leftmost = highest qubit index.
        for q in (0..self.num_qubits()).rev() {
            write!(f, "{}", self.ops[q].to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliString({self})")
    }
}

impl FromStr for PauliString {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseError::EmptyPauliString);
        }
        let mut ops = Vec::with_capacity(s.len());
        for (pos, c) in s.chars().enumerate() {
            match PauliOp::from_char(c) {
                Some(op) => ops.push(op),
                None => {
                    return Err(ParseError::InvalidPauliChar {
                        character: c,
                        position: pos,
                    })
                }
            }
        }
        // The textual form lists the highest qubit first; reverse into
        // qubit-indexed order.
        ops.reverse();
        Ok(PauliString { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["XYZI", "IIII", "Z", "XXYYZZ", "IZXY"] {
            let p: PauliString = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_characters() {
        let err = "XQZ".parse::<PauliString>().unwrap_err();
        assert!(matches!(
            err,
            ParseError::InvalidPauliChar {
                character: 'Q',
                position: 1
            }
        ));
        assert!("".parse::<PauliString>().is_err());
    }

    #[test]
    fn qubit_indexing_convention() {
        let p: PauliString = "XYZ".parse().unwrap();
        assert_eq!(p.op(0), PauliOp::Z);
        assert_eq!(p.op(1), PauliOp::Y);
        assert_eq!(p.op(2), PauliOp::X);
    }

    #[test]
    fn weight_and_support() {
        let p: PauliString = "XIZI".parse().unwrap();
        assert_eq!(p.weight(), 2);
        let support: Vec<(usize, PauliOp)> = p.support().collect();
        assert_eq!(support, vec![(1, PauliOp::Z), (3, PauliOp::X)]);
        assert!(!p.is_identity());
        assert!(PauliString::identity(4).is_identity());
    }

    #[test]
    fn masks_follow_symplectic_encoding() {
        let p: PauliString = "XYZI".parse().unwrap();
        // qubit 0 = I, 1 = Z, 2 = Y, 3 = X
        assert_eq!(p.x_mask(), 0b1100);
        assert_eq!(p.z_mask(), 0b0110);
    }

    #[test]
    fn commutation_matches_matrix_commutation() {
        let strings = ["XXI", "ZZI", "XYZ", "IYZ", "YIX", "ZIZ"];
        for a in strings {
            for b in strings {
                let pa: PauliString = a.parse().unwrap();
                let pb: PauliString = b.parse().unwrap();
                let ma = pa.to_matrix();
                let mb = pb.to_matrix();
                let commutes_matrix = ma.matmul(&mb).approx_eq(&mb.matmul(&ma), 1e-12);
                assert_eq!(pa.commutes_with(&pb), commutes_matrix, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn product_matches_matrix_product() {
        let cases = [
            ("XY", "YX"),
            ("XZ", "ZY"),
            ("XX", "YY"),
            ("IZ", "XI"),
            ("YZ", "YZ"),
        ];
        for (a, b) in cases {
            let pa: PauliString = a.parse().unwrap();
            let pb: PauliString = b.parse().unwrap();
            let (phase, prod) = pa.mul(&pb);
            let lhs = pa.to_matrix().matmul(&pb.to_matrix());
            let rhs = prod.to_matrix().scale(phase);
            assert!(lhs.approx_eq(&rhs, 1e-12), "{a} * {b}");
        }
    }

    #[test]
    fn matching_support_counts_equal_non_identity() {
        let a: PauliString = "ZZZZ".parse().unwrap();
        let b: PauliString = "XZXZ".parse().unwrap();
        assert_eq!(a.matching_support(&b), 2);
        assert_eq!(b.matching_support(&a), 2);
        let c: PauliString = "IIII".parse().unwrap();
        assert_eq!(a.matching_support(&c), 0);
    }

    #[test]
    fn to_matrix_ordering_matches_kron_convention() {
        // "XZ" = X ⊗ Z: qubit 1 (leftmost) is X, qubit 0 is Z.
        let p: PauliString = "XZ".parse().unwrap();
        let expected = PauliOp::X.matrix().kron(&PauliOp::Z.matrix());
        assert!(p.to_matrix().approx_eq(&expected, 1e-15));
    }

    #[test]
    fn single_constructor_places_operator() {
        let p = PauliString::single(4, 2, PauliOp::Y);
        assert_eq!(p.to_string(), "IYII");
    }

    #[test]
    fn pauli_strings_are_traceless_unless_identity() {
        let p: PauliString = "XZY".parse().unwrap();
        assert!(p.to_matrix().trace().abs() < 1e-12);
        let id = PauliString::identity(3);
        assert!((id.to_matrix().trace().re - 8.0).abs() < 1e-12);
    }
}
