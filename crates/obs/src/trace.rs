//! Structured span tracing with a JSONL sink.
//!
//! A [`Span`] measures one named region of work. Spans nest: a span
//! created on a thread becomes the child of that thread's innermost open
//! span, and cross-thread work (a pool task belonging to a coordinator's
//! job) links explicitly via [`Span::child_of`]. When a span closes (on
//! drop), one JSON object is appended to the trace sink:
//!
//! ```json
//! {"span":"flow_solve","id":7,"parent":3,"start_us":15233,"dur_us":812,"backend":"ssp"}
//! ```
//!
//! `start_us` is microseconds since process start (monotonic, so child
//! intervals nest arithmetically inside their parent's — the invariant
//! the property suite checks); `dur_us` is the span's wall duration.
//! Extra fields added with [`Span::field`] are emitted as string values.
//!
//! # The sink
//!
//! `MARQSIM_TRACE=<path>` appends JSONL to a file (`stderr` writes to
//! stderr instead). Unset — the default — tracing is disabled and a span
//! costs one relaxed atomic load; no timestamps are taken, nothing is
//! allocated. Tests install an in-memory sink with
//! [`install_memory_sink`] to assert on emitted records without touching
//! the filesystem.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// The identity of an open (or closed) span, for explicit cross-thread
/// parent links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// Sink state: 0 = uninitialized, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

enum SinkTarget {
    File(std::fs::File),
    Stderr,
    Memory(Arc<Mutex<Vec<String>>>),
}

static SINK: Mutex<Option<SinkTarget>> = Mutex::new(None);

thread_local! {
    /// Ids of the open spans on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Microsecond-resolution process epoch; every `start_us` is relative to
/// this, so records from every thread share one monotonic timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether the trace sink is active (env checked once, then one relaxed
/// load per call — the disabled-path cost of a span).
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => init_from_env(),
    }
}

fn init_from_env() -> bool {
    let _witness = crate::lockcheck::acquire("obs.trace.sink");
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    // Double-checked: another thread may have initialized while we waited.
    match STATE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    let target = std::env::var("MARQSIM_TRACE")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty());
    let enabled = match target.as_deref() {
        None => false,
        Some("stderr") => {
            *sink = Some(SinkTarget::Stderr);
            true
        }
        Some(path) => match OpenOptions::new().create(true).append(true).open(path) {
            Ok(file) => {
                *sink = Some(SinkTarget::File(file));
                true
            }
            Err(error) => {
                eprintln!("[obs] msg=\"MARQSIM_TRACE sink unavailable, tracing disabled\" path={path} error=\"{error}\"");
                false
            }
        },
    };
    epoch(); // Pin the timeline before the first span reads it.
    STATE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
    enabled
}

/// Replaces the sink with an in-memory buffer and enables tracing;
/// returns the buffer. For tests (process-global: affects every thread).
pub fn install_memory_sink() -> Arc<Mutex<Vec<String>>> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    let _witness = crate::lockcheck::acquire("obs.trace.sink");
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    epoch();
    *sink = Some(SinkTarget::Memory(Arc::clone(&buffer)));
    STATE.store(2, Ordering::Relaxed);
    buffer
}

fn write_line(line: String) {
    let _witness = crate::lockcheck::acquire("obs.trace.sink");
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    match sink.as_mut() {
        Some(SinkTarget::File(file)) => {
            let _ = writeln!(file, "{line}");
        }
        Some(SinkTarget::Stderr) => {
            eprintln!("{line}");
        }
        Some(SinkTarget::Memory(buffer)) => {
            // The one deliberate nesting in the workspace lock graph:
            // obs.trace.sink -> obs.trace.memory (test-only sink target).
            let _inner = crate::lockcheck::acquire("obs.trace.memory");
            buffer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(line);
        }
        None => {}
    }
}

/// The innermost open span on this thread, if any — what a cross-thread
/// task should capture as its [`Span::child_of`] parent.
pub fn current_span() -> Option<SpanId> {
    if !enabled() {
        return None;
    }
    STACK.with(|stack| stack.borrow().last().copied().map(SpanId))
}

/// An open span. Close it by dropping (or just let it fall out of
/// scope); the JSONL record is emitted at that point.
///
/// A span is a no-op shell when tracing is disabled.
pub struct Span(Option<SpanInner>);

struct SpanInner {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, String)>,
    /// Whether this span was pushed on the creating thread's stack (and
    /// must be popped on drop). Explicitly-parented spans still push, so
    /// same-thread children nest under them.
    on_stack: bool,
}

impl Span {
    /// Opens a span named `name` as a child of this thread's innermost
    /// open span.
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span(None);
        }
        let parent = STACK.with(|stack| stack.borrow().last().copied());
        Span::open(name, parent)
    }

    /// Opens a span with an explicit parent (e.g. a pool task whose
    /// logical parent span lives on the submitting thread). `None`
    /// parents the span at the root.
    pub fn child_of(name: &'static str, parent: Option<SpanId>) -> Span {
        if !enabled() {
            return Span(None);
        }
        Span::open(name, parent.map(|p| p.0))
    }

    fn open(name: &'static str, parent: Option<u64>) -> Span {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        STACK.with(|stack| stack.borrow_mut().push(id));
        Span(Some(SpanInner {
            id,
            parent,
            name,
            start: Instant::now(),
            fields: Vec::new(),
            on_stack: true,
        }))
    }

    /// Attaches a `key=value` field, emitted as a string on close.
    /// No-op (and no allocation) when tracing is disabled.
    pub fn field(mut self, key: &'static str, value: impl std::fmt::Display) -> Span {
        if let Some(inner) = self.0.as_mut() {
            inner.fields.push((key, value.to_string()));
        }
        self
    }

    /// This span's id (`None` when tracing is disabled).
    pub fn id(&self) -> Option<SpanId> {
        self.0.as_ref().map(|inner| SpanId(inner.id))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else {
            return;
        };
        let end = Instant::now();
        if inner.on_stack {
            STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Usually the top; a span moved across threads (or dropped
                // out of order) is removed wherever it sits — on *this*
                // thread it may be absent entirely, which is fine.
                if let Some(position) = stack.iter().rposition(|&id| id == inner.id) {
                    stack.remove(position);
                }
            });
        }
        let start_us = inner.start.saturating_duration_since(epoch()).as_micros() as u64;
        let dur_us = end.saturating_duration_since(inner.start).as_micros() as u64;
        emit(
            inner.name,
            inner.id,
            inner.parent,
            start_us,
            dur_us,
            &inner.fields,
        );
    }
}

/// Emits one span record directly — for intervals measured without an
/// open [`Span`] (the pool's queue-wait is timed from enqueue to
/// dequeue across threads). `start` must be an [`Instant`] taken while
/// the process was running; `dur_us` is the interval length.
pub fn emit_interval(
    name: &'static str,
    parent: Option<SpanId>,
    start: Instant,
    dur_us: u64,
    fields: &[(&'static str, String)],
) {
    if !enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let start_us = start.saturating_duration_since(epoch()).as_micros() as u64;
    emit(name, id, parent.map(|p| p.0), start_us, dur_us, fields);
}

fn emit(
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start_us: u64,
    dur_us: u64,
    fields: &[(&'static str, String)],
) {
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{{\"span\":\"{}\",\"id\":{id}", escape(name));
    if let Some(parent) = parent {
        let _ = write!(line, ",\"parent\":{parent}");
    }
    let _ = write!(line, ",\"start_us\":{start_us},\"dur_us\":{dur_us}");
    for (key, value) in fields {
        let _ = write!(line, ",\"{}\":\"{}\"", escape(key), escape(value));
    }
    line.push('}');
    write_line(line);
}

/// JSON string escaping (the subset that can appear in span names and
/// field values).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole module shares process-global sink state, so the tests
    /// run under one lock to avoid cross-talk.
    fn with_memory_sink(f: impl FnOnce(&Arc<Mutex<Vec<String>>>)) {
        static GUARD: Mutex<()> = Mutex::new(());
        let _guard = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let buffer = install_memory_sink();
        f(&buffer);
    }

    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tagged = format!("\"{key}\":");
        let rest = &line[line.find(&tagged)? + tagged.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim_matches('"'))
    }

    #[test]
    fn spans_nest_and_emit_parent_links() {
        with_memory_sink(|buffer| {
            {
                let outer = Span::enter("outer").field("job", "j1");
                let outer_id = outer.id().unwrap();
                {
                    let inner = Span::enter("inner");
                    assert_eq!(current_span(), inner.id());
                }
                assert_eq!(current_span(), Some(outer_id));
            }
            let lines = buffer.lock().unwrap();
            assert_eq!(lines.len(), 2, "inner closes first, then outer");
            let inner = &lines[0];
            let outer = &lines[1];
            assert_eq!(field(inner, "span"), Some("inner"));
            assert_eq!(field(outer, "span"), Some("outer"));
            assert_eq!(field(outer, "job"), Some("j1"));
            assert_eq!(
                field(inner, "parent"),
                field(outer, "id"),
                "inner is parented under outer"
            );
            // Child interval nests inside the parent interval (up to the
            // independent whole-microsecond truncation of each number).
            let start = |l: &str| field(l, "start_us").unwrap().parse::<u64>().unwrap();
            let dur = |l: &str| field(l, "dur_us").unwrap().parse::<u64>().unwrap();
            assert!(start(inner) + 2 >= start(outer));
            assert!(start(inner) + dur(inner) <= start(outer) + dur(outer) + 2);
        });
    }

    #[test]
    fn explicit_parents_cross_threads() {
        with_memory_sink(|buffer| {
            let parent_id = {
                let parent = Span::enter("job");
                let id = parent.id();
                std::thread::spawn(move || {
                    let _task = Span::child_of("pool_task", id);
                })
                .join()
                .unwrap();
                id.unwrap()
            };
            let lines = buffer.lock().unwrap();
            let task = lines.iter().find(|l| l.contains("pool_task")).unwrap();
            assert_eq!(
                field(task, "parent").unwrap().parse::<u64>().unwrap(),
                parent_id.0
            );
        });
    }

    #[test]
    fn emitted_records_are_valid_json_objects() {
        with_memory_sink(|buffer| {
            {
                let _span = Span::enter("weird\"name").field("note", "line\nbreak\t\"quote\"");
            }
            emit_interval("queue_wait", None, Instant::now(), 42, &[]);
            let lines = buffer.lock().unwrap();
            for line in lines.iter() {
                // Minimal JSON sanity: balanced object, no raw newlines,
                // every quote escaped (the serve wire parser gives this a
                // full check in the integration suite).
                assert!(line.starts_with('{') && line.ends_with('}'));
                assert!(!line.contains('\n'));
            }
        });
    }

    #[test]
    fn disabled_spans_have_no_identity() {
        // Cannot force-disable the global state from here without racing
        // other tests; assert the shell behavior through the type.
        let span = Span(None);
        assert_eq!(span.id(), None);
        drop(span);
    }
}
