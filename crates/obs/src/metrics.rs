//! The metrics registry: named counters, gauges, and fixed-bucket latency
//! histograms with a lock-free record path.
//!
//! Instruments are registered by name (plus optional `key="value"` labels,
//! Prometheus-style) and handed back as `Arc` handles around plain
//! atomics; recording is `fetch_add`/CAS only. Registration takes the
//! registry lock once per instrument — callers cache the handle (usually
//! in a `OnceLock`), so steady-state hot paths never touch the lock.
//! Registering the same `(name, labels)` again returns the existing
//! handle, so independent subsystems can share an instrument safely.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous up/down value (queue depths, active jobs).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: cumulative-on-read bucket counts over a set
/// of strictly increasing upper edges, plus an implicit `+Inf` overflow
/// bucket, a running sum, and a total count. Records are two relaxed
/// `fetch_add`s and one CAS loop on the sum bits — no lock.
#[derive(Debug)]
pub struct Histogram {
    /// Strictly increasing upper bucket edges; a value `v` lands in the
    /// first bucket with `v <= edge`, or the overflow bucket.
    edges: Vec<f64>,
    /// Per-bucket counts, `edges.len() + 1` long (last = overflow).
    counts: Vec<AtomicU64>,
    /// Running sum of recorded values, stored as `f64` bits.
    sum_bits: AtomicU64,
    /// Total number of recorded values.
    count: AtomicU64,
}

/// A point-in-time copy of a [`Histogram`], for exposition and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The bucket upper edges (same meaning as [`Histogram`]'s).
    pub edges: Vec<f64>,
    /// Per-bucket counts, `edges.len() + 1` long (last = overflow).
    pub counts: Vec<u64>,
    /// Sum of recorded values.
    pub sum: f64,
    /// Total recorded values.
    pub count: u64,
}

/// The default latency edges (seconds): ~1µs to 60s, roughly
/// logarithmic. Chosen so both a sub-millisecond cached lookup and a
/// multi-second 1000-string flow solve land in interior buckets.
pub const LATENCY_EDGES_SECONDS: [f64; 20] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.5, 2.5, 10.0, 60.0,
];

impl Histogram {
    /// A histogram over the given strictly increasing upper edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty, non-finite, or not strictly increasing.
    pub fn new(edges: &[f64]) -> Histogram {
        assert!(!edges.is_empty(), "a histogram needs at least one edge");
        for pair in edges.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram edges must be strictly increasing"
            );
        }
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "histogram edges must be finite"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// A histogram with the default latency edges.
    pub fn latency() -> Histogram {
        Histogram::new(&LATENCY_EDGES_SECONDS)
    }

    /// The index of the bucket `v` lands in (the first edge `>= v`, or
    /// the overflow bucket).
    pub fn bucket_index(&self, v: f64) -> usize {
        self.edges
            .iter()
            .position(|&edge| v <= edge)
            .unwrap_or(self.edges.len())
    }

    /// Records one value (NaN is counted in the overflow bucket with a
    /// zero sum contribution rather than poisoning the sum).
    pub fn record(&self, v: f64) {
        let index = if v.is_nan() {
            self.edges.len()
        } else {
            self.bucket_index(v)
        };
        self.counts[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_nan() {
            let mut current = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) as the **upper edge** of
    /// the bucket containing the `ceil(q·count)`-th observation — an
    /// upper bound on the true quantile for interior buckets. Returns
    /// `None` when the histogram is empty; observations in the overflow
    /// bucket estimate as `f64::INFINITY` (no finite upper edge exists).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let snapshot = self.snapshot();
        snapshot.quantile(q)
    }

    /// A point-in-time copy. Concurrent records may tear between buckets
    /// and the total — fine for exposition, which is advisory by nature.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }

    /// Adds every bucket of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the edge sets differ — merging histograms is only
    /// meaningful over identical buckets.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "merge requires identical edges");
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = other.sum();
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return Some(if index < self.edges.len() {
                    self.edges[index]
                } else {
                    f64::INFINITY
                });
            }
        }
        Some(f64::INFINITY)
    }
}

/// One registered instrument.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A namespace of instruments, renderable as one text exposition.
///
/// Most callers use the process-global [`global`] registry; a fresh
/// `Registry::new()` is available for tests that need isolation.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// The process-global registry — what engine/cache/flow/serve register
/// their instruments in and what the serve `metrics` verb exposes.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        as_existing: impl Fn(&Instrument) -> Option<Arc<T>>,
        create: impl FnOnce() -> (Arc<T>, Instrument),
    ) -> Arc<T> {
        let _witness = crate::lockcheck::acquire("obs.metrics.registry");
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
        {
            return as_existing(&entry.instrument).unwrap_or_else(|| {
                panic!(
                    "instrument '{name}' already registered as a {}",
                    entry.instrument.kind()
                )
            });
        }
        let (handle, instrument) = create();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            instrument,
        });
        handle
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Registers (or retrieves) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            labels,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::default());
                (Arc::clone(&c), Instrument::Counter(c))
            },
        )
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Registers (or retrieves) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            labels,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::default());
                (Arc::clone(&g), Instrument::Gauge(g))
            },
        )
    }

    /// Registers (or retrieves) a histogram with the default latency
    /// edges.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Registers (or retrieves) a labeled histogram with the default
    /// latency edges. (An already-registered instrument keeps its
    /// original edges.)
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with_edges(name, labels, &LATENCY_EDGES_SECONDS)
    }

    /// Registers (or retrieves) a labeled histogram with explicit edges.
    pub fn histogram_with_edges(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        edges: &[f64],
    ) -> Arc<Histogram> {
        self.register(
            name,
            labels,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new(edges));
                (Arc::clone(&h), Instrument::Histogram(h))
            },
        )
    }

    /// Renders every instrument as a Prometheus-style text exposition:
    /// one `# TYPE` comment per metric name, `name{labels} value` sample
    /// lines, and for histograms the conventional cumulative
    /// `_bucket{le=…}` / `_sum` / `_count` series. Output is sorted by
    /// name then labels, so two snapshots diff cleanly.
    pub fn expose(&self) -> String {
        let _witness = crate::lockcheck::acquire("obs.metrics.registry");
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut sorted: Vec<&Entry> = entries.iter().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for entry in sorted {
            if last_name != Some(entry.name.as_str()) {
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    entry.name,
                    entry.instrument.kind()
                ));
                last_name = Some(entry.name.as_str());
            }
            match &entry.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&sample(
                        &entry.name,
                        &entry.labels,
                        None,
                        &c.get().to_string(),
                    ));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&sample(
                        &entry.name,
                        &entry.labels,
                        None,
                        &g.get().to_string(),
                    ));
                }
                Instrument::Histogram(h) => {
                    let snapshot = h.snapshot();
                    let bucket_name = format!("{}_bucket", entry.name);
                    let mut cumulative = 0u64;
                    for (index, count) in snapshot.counts.iter().enumerate() {
                        cumulative += count;
                        let le = if index < snapshot.edges.len() {
                            format_float(snapshot.edges[index])
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&sample(
                            &bucket_name,
                            &entry.labels,
                            Some(("le", &le)),
                            &cumulative.to_string(),
                        ));
                    }
                    out.push_str(&sample(
                        &format!("{}_sum", entry.name),
                        &entry.labels,
                        None,
                        &format_float(snapshot.sum),
                    ));
                    out.push_str(&sample(
                        &format!("{}_count", entry.name),
                        &entry.labels,
                        None,
                        &snapshot.count.to_string(),
                    ));
                }
            }
        }
        out
    }
}

fn labels_eq(registered: &[(String, String)], requested: &[(&str, &str)]) -> bool {
    registered.len() == requested.len()
        && registered
            .iter()
            .zip(requested.iter())
            .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
}

/// One exposition sample line: `name{labels} value`.
fn sample(
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) -> String {
    let mut rendered = Vec::new();
    for (k, v) in labels {
        rendered.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some((k, v)) = extra {
        rendered.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if rendered.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{}}} {value}\n", rendered.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // "0.25" stays "0.25"; "5" becomes "5.0"
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let registry = Registry::new();
        let a = registry.counter("marqsim_test_total");
        let b = registry.counter("marqsim_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit the same instrument");

        let g = registry.gauge("marqsim_test_depth");
        g.set(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        registry.gauge("marqsim_test_depth").add(1);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn labeled_instruments_are_distinct() {
        let registry = Registry::new();
        let ssp = registry.counter_with("marqsim_solves_total", &[("backend", "ssp")]);
        let simplex =
            registry.counter_with("marqsim_solves_total", &[("backend", "network_simplex")]);
        ssp.inc();
        assert_eq!(ssp.get(), 1);
        assert_eq!(simplex.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("marqsim_mismatch");
        registry.gauge("marqsim_mismatch");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        for v in [0.05, 0.5, 0.5, 5.0] {
            h.record(v);
        }
        let snapshot = h.snapshot();
        assert_eq!(snapshot.counts, vec![1, 2, 1, 0]);
        assert_eq!(snapshot.count, 4);
        assert!((snapshot.sum - 6.05).abs() < 1e-12);
        // Rank 2 of 4 sits in the (0.1, 1.0] bucket.
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        // Values beyond the last edge land in the overflow bucket.
        h.record(1e9);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn histogram_merge_equals_recording_the_union() {
        let a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 2.0]);
        let union = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.5] {
            a.record(v);
            union.record(v);
        }
        for v in [1.7, 9.0] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), union.snapshot());
    }

    #[test]
    fn exposition_renders_all_kinds_sorted() {
        let registry = Registry::new();
        registry.counter("marqsim_b_total").add(7);
        registry.gauge("marqsim_a_depth").set(-2);
        let h = registry.histogram_with_edges("marqsim_c_seconds", &[("backend", "ssp")], &[1.0]);
        h.record(0.5);
        h.record(3.0);
        let text = registry.expose();
        let expected = "\
# TYPE marqsim_a_depth gauge
marqsim_a_depth -2
# TYPE marqsim_b_total counter
marqsim_b_total 7
# TYPE marqsim_c_seconds histogram
marqsim_c_seconds_bucket{backend=\"ssp\",le=\"1.0\"} 1
marqsim_c_seconds_bucket{backend=\"ssp\",le=\"+Inf\"} 2
marqsim_c_seconds_sum{backend=\"ssp\"} 3.5
marqsim_c_seconds_count{backend=\"ssp\"} 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("marqsim_obs_selftest_total");
        let before = c.get();
        global().counter("marqsim_obs_selftest_total").inc();
        assert_eq!(c.get(), before + 1);
    }
}
