//! The leveled structured logger: `[target] key=value …` lines on stderr.
//!
//! `MARQSIM_LOG=error|warn|info|debug` sets the maximum emitted level
//! (default `info`). The line format is `[{target}] {message}` where the
//! message is key=value pairs by convention — the format the pre-existing
//! `[cache]`/`[flow]` bench lines already used, so migrating them onto
//! the logger changes nothing CI greps for. An unknown `MARQSIM_LOG`
//! value logs one warning and falls back to the default rather than
//! aborting: losing telemetry must never take the engine down.
//!
//! Use through the [`error!`](crate::error), [`warn!`](crate::warn),
//! [`info!`](crate::info), and [`debug!`](crate::debug) macros, which
//! skip all formatting when the level is filtered:
//!
//! ```
//! marqsim_obs::info!("cache", "hits={} misses={}", 3, 1);
//! ```

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures that lose work or data.
    Error,
    /// Degraded-but-continuing conditions.
    Warn,
    /// Normal operational lines (the default level; includes the
    /// grep-able bench report lines).
    Info,
    /// High-volume diagnostics (per-job, per-connection detail).
    Debug,
}

impl Level {
    /// The spelling accepted by `MARQSIM_LOG` and shown in diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `MARQSIM_LOG` spelling.
    pub fn parse(spelling: &str) -> Option<Level> {
        match spelling.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// The active maximum level (from `MARQSIM_LOG`, read once).
pub fn max_level() -> Level {
    static MAX: OnceLock<Level> = OnceLock::new();
    *MAX.get_or_init(|| match std::env::var("MARQSIM_LOG") {
        Err(_) => Level::Info,
        Ok(raw) if raw.trim().is_empty() => Level::Info,
        Ok(raw) => Level::parse(&raw).unwrap_or_else(|| {
            eprintln!(
                "[obs] level=warn msg=\"unknown MARQSIM_LOG value, using info\" value={raw:?}"
            );
            Level::Info
        }),
    })
}

/// Whether `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// Emits one line (already level-checked by the macros): `[target] args`.
pub fn write(target: &str, args: std::fmt::Arguments<'_>) {
    eprintln!("[{target}] {args}");
}

/// Logs at [`Level::Error`]: `marqsim_obs::error!("serve", "msg=\"…\"")`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write($target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::write($target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] — the level of the grep-able bench lines.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("trace"), None);
    }

    #[test]
    fn default_level_admits_info_but_not_debug() {
        // The test process does not set MARQSIM_LOG (the harness would
        // have to leak it); with the default, info passes and debug not.
        if std::env::var("MARQSIM_LOG").is_err() {
            assert!(enabled(Level::Error));
            assert!(enabled(Level::Info));
            assert!(!enabled(Level::Debug));
        }
    }

    #[test]
    fn macros_compile_for_every_level() {
        // Emission goes to stderr; this only pins the macro surface.
        crate::error!("obs-test", "k={}", 1);
        crate::warn!("obs-test", "k={}", 2);
        crate::info!("obs-test", "k={}", 3);
        crate::debug!("obs-test", "k={}", 4);
    }
}
