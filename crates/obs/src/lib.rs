//! Telemetry for the MarQSim workspace: metrics, traces, and logs — with
//! zero dependencies (the build environment has no registry access) and a
//! lock-free record path.
//!
//! Three pillars, each usable on its own:
//!
//! * [`metrics`] — a process-global [`metrics::Registry`] of named
//!   instruments: monotonic [`metrics::Counter`]s, up/down
//!   [`metrics::Gauge`]s, and fixed-bucket [`metrics::Histogram`]s with
//!   p50/p90/p99 estimation. Handles are `Arc`s around atomics; recording
//!   never takes a lock. [`metrics::Registry::expose`] renders the whole
//!   registry as a Prometheus-style text exposition (what the serve
//!   protocol's `metrics` verb returns).
//! * [`trace`] — structured span tracing. A [`trace::Span`] measures a
//!   named region, nests under the enclosing span of its thread (or an
//!   explicit cross-thread parent), and on drop emits one JSONL record to
//!   the `MARQSIM_TRACE` sink (a file path, or `stderr`). When the sink is
//!   not configured, spans are a single relaxed atomic load — the
//!   zero-overhead guarantee BENCH.md pins.
//! * [`log`] — a leveled structured logger: `MARQSIM_LOG=error|warn|info|
//!   debug` (default `info`) gates `[target] key=value …` lines on stderr.
//!   The `[cache]`/`[flow]` bench lines CI greps for are `info`-level
//!   emissions through this logger, format-stable by construction.
//!
//! The instrument catalog, environment variables, and the exposition
//! format are documented in `docs/observability.md`.
//!
//! A fourth, debug-only pillar: [`lockcheck`] — a runtime lock-order
//! witness (thread-local held-lock set, global order table learned at
//! first acquisition, panic on inversion) wired into the workspace's
//! hand-rolled locks. It dynamically validates the lock graph that the
//! static `marqsim-lint` lock-order pass reconstructs; release builds
//! compile it away entirely.

pub mod lockcheck;
pub mod log;
pub mod metrics;
pub mod trace;

pub use log::Level;
pub use metrics::{global, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{current_span, Span, SpanId};
