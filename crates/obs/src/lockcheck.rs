//! A debug-assertions-only runtime lock-order witness.
//!
//! The static lock-order lint (`cargo run -p marqsim-analysis`)
//! reconstructs the workspace lock graph from source; this module is its
//! dynamic counterpart, wired into the same locks (pool injector, cache
//! shards, trace sink, metrics registry, serve gates) so the stress
//! suites *execute* the ordering claims the lint makes. Every
//! instrumented acquisition:
//!
//! 1. checks the thread-local held-lock set for a same-family re-entry
//!    (self-deadlock) or a descending same-family index (the shard
//!    convention is ascending — see `docs/analysis.md`),
//! 2. consults the global order table — a directed graph over lock
//!    families learned at first acquisition — and panics if acquiring
//!    `B` while holding `A` when `B → … → A` is already on record (an
//!    inversion: some other thread nests the other way), and
//! 3. otherwise records `A → B` and pushes onto the held set.
//!
//! Release builds compile all of it to nothing: [`acquire`] returns an
//! inert zero-sized token and the order table does not exist. The `cargo
//! test` profile has `debug_assertions` on, so the whole test suite runs
//! witnessed without any feature flag.
//!
//! The witness's own state lock is a leaf: the witness never calls user
//! code while holding it, so it cannot participate in the graphs it
//! checks.

/// A token proving the holder appears in the thread's held-lock set.
/// Drop it when the guard it shadows is released (bind it *before* the
/// guard so scope-end drops release the lock first, or drop both
/// explicitly for early releases like the pool's `drop(state)`).
#[must_use = "the witness token must live exactly as long as the lock guard it shadows"]
#[derive(Debug)]
pub struct Held {
    #[cfg(debug_assertions)]
    token: u64,
}

/// Registers an acquisition of the named (non-indexed) lock family.
/// Panics — in debug builds only — on recursive acquisition or on an
/// ordering inversion against the learned global order.
#[inline]
pub fn acquire(name: &'static str) -> Held {
    acquire_indexed(name, usize::MAX)
}

/// Registers an acquisition of one member of an indexed lock family
/// (e.g. cache shard `index`). Members of the same family must be
/// acquired in ascending index order; `usize::MAX` marks a non-indexed
/// family (same-family re-entry is then always a violation).
#[inline]
pub fn acquire_indexed(name: &'static str, index: usize) -> Held {
    #[cfg(debug_assertions)]
    {
        imp::acquire(name, index)
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (name, index);
        Held {}
    }
}

#[cfg(debug_assertions)]
impl Drop for Held {
    fn drop(&mut self) {
        imp::release(self.token);
    }
}

#[cfg(debug_assertions)]
mod imp {
    use super::Held;
    use std::cell::RefCell;
    use std::collections::{BTreeSet, HashMap};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError};

    struct OrderState {
        /// Family name -> dense id.
        families: HashMap<&'static str, usize>,
        names: Vec<&'static str>,
        /// Learned order: `edges[a]` contains `b` when some thread held
        /// `a` while acquiring `b`.
        edges: Vec<BTreeSet<usize>>,
    }

    static ORDER: Mutex<Option<OrderState>> = Mutex::new(None);
    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    #[derive(Clone, Copy)]
    struct HeldEntry {
        index: usize,
        token: u64,
        name: &'static str,
    }

    thread_local! {
        static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
    }

    /// `from` reaches `to` in the learned order graph?
    fn reaches(edges: &[BTreeSet<usize>], from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; edges.len()];
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if seen[node] {
                continue;
            }
            seen[node] = true;
            stack.extend(edges[node].iter().copied());
        }
        false
    }

    pub(super) fn acquire(name: &'static str, index: usize) -> Held {
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        // TLS teardown (locks taken from destructors of other
        // thread-locals) degrades to an unwitnessed acquisition.
        let held_snapshot: Option<Vec<HeldEntry>> =
            HELD.try_with(|held| held.borrow().clone()).ok();
        let Some(snapshot) = held_snapshot else {
            return Held { token: 0 };
        };

        // Same-family checks need no global state.
        for entry in &snapshot {
            if entry.name == name {
                if index == usize::MAX || entry.index == usize::MAX {
                    panic!(
                        "lock witness: recursive acquisition of `{name}` \
                         (already held by this thread) — self-deadlock"
                    );
                }
                if entry.index >= index {
                    panic!(
                        "lock witness: `{name}[{}]` held while acquiring `{name}[{index}]` — \
                         indexed families must be acquired in ascending order",
                        entry.index
                    );
                }
            }
        }

        {
            let mut order = ORDER.lock().unwrap_or_else(PoisonError::into_inner);
            let state = order.get_or_insert_with(|| OrderState {
                families: HashMap::new(),
                names: Vec::new(),
                edges: Vec::new(),
            });
            let family = intern(state, name);
            for entry in &snapshot {
                if entry.name == name {
                    continue;
                }
                let held_family = intern(state, entry.name);
                if reaches(&state.edges, family, held_family) {
                    panic!(
                        "lock witness: ordering inversion — acquiring `{name}` while \
                         holding `{}`, but the learned order already requires \
                         `{name}` before `{}`",
                        entry.name, entry.name
                    );
                }
                state.edges[held_family].insert(family);
            }
            // Push while the order lock serializes us against concurrent
            // learners; the entry itself is thread-local.
            let _ = HELD.try_with(|held| held.borrow_mut().push(HeldEntry { index, token, name }));
        }
        Held { token }
    }

    fn intern(state: &mut OrderState, name: &'static str) -> usize {
        if let Some(&id) = state.families.get(name) {
            return id;
        }
        let id = state.names.len();
        state.families.insert(name, id);
        state.names.push(name);
        state.edges.push(BTreeSet::new());
        id
    }

    pub(super) fn release(token: u64) {
        if token == 0 {
            return;
        }
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(position) = held.iter().position(|e| e.token == token) {
                held.swap_remove(position);
            }
        });
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Runs `f` on a fresh thread and reports whether it panicked —
    /// violations must not poison this test thread's held set.
    fn panics(f: impl FnOnce() + Send + 'static) -> bool {
        std::thread::spawn(f).join().is_err()
    }

    // Distinct family names per test: the order table is process-global
    // and these tests run concurrently with each other.

    #[test]
    fn recursive_acquisition_panics() {
        assert!(panics(|| {
            let _a = acquire("test.recursive");
            let _b = acquire("test.recursive");
        }));
    }

    #[test]
    fn descending_indexed_acquisition_panics() {
        assert!(panics(|| {
            let _a = acquire_indexed("test.shard_desc", 3);
            let _b = acquire_indexed("test.shard_desc", 1);
        }));
        assert!(!panics(|| {
            let _a = acquire_indexed("test.shard_asc", 1);
            let _b = acquire_indexed("test.shard_asc", 3);
        }));
    }

    #[test]
    fn ordering_inversion_panics_even_without_a_real_deadlock() {
        // Learn a -> b on one thread…
        assert!(!panics(|| {
            let _a = acquire("test.inv_a");
            let _b = acquire("test.inv_b");
        }));
        // …then b -> a is an inversion, no matter the thread.
        assert!(panics(|| {
            let _b = acquire("test.inv_b");
            let _a = acquire("test.inv_a");
        }));
    }

    #[test]
    fn consistent_nesting_is_quiet_and_release_unwinds() {
        static ROUNDS: AtomicUsize = AtomicUsize::new(0);
        assert!(!panics(|| {
            for _ in 0..100 {
                let _outer = acquire("test.nest_outer");
                {
                    let _inner = acquire("test.nest_inner");
                    ROUNDS.fetch_add(1, Ordering::Relaxed);
                }
                // Inner released: re-acquiring it is fine.
                let _again = acquire("test.nest_inner");
            }
        }));
        assert_eq!(ROUNDS.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn out_of_order_release_is_supported() {
        assert!(!panics(|| {
            let a = acquire("test.rel_a");
            let b = acquire("test.rel_b");
            drop(a); // release the outer token first
            let _c = acquire("test.rel_c");
            drop(b);
        }));
    }
}
