//! # MarQSim
//!
//! A Rust reproduction of *MarQSim: Reconciling Determinism and Randomness in
//! Compiler Optimization for Quantum Simulation* (PLDI 2025).
//!
//! MarQSim compiles a quantum Hamiltonian `H = Σ_j h_j H_j` (a weighted sum of
//! Pauli strings) into a quantum circuit approximating `exp(iHt)`. Instead of
//! a fixed Trotter ordering or purely i.i.d. qDRIFT sampling, MarQSim samples
//! the term sequence from a Markov chain over the Hamiltonian terms (the
//! *Hamiltonian Term Transition Graph*). The transition matrix is tuned with a
//! min-cost-flow model so that consecutive samples share Pauli support and
//! cancel CNOT gates, while preserving the qDRIFT stationary distribution and
//! therefore the qDRIFT error bound.
//!
//! This facade crate re-exports all workspace crates under stable module
//! names. See the individual crates for the detailed APIs:
//!
//! * [`pauli`] — Pauli strings and Hamiltonians.
//! * [`circuit`] — quantum circuit IR, Pauli-rotation synthesis, CNOT
//!   cancellation.
//! * [`sim`] — state-vector / unitary simulation and fidelity evaluation.
//! * [`markov`] — stochastic matrices, stationary distributions, spectra.
//! * [`flow`] — min-cost flow solver.
//! * [`fermion`] — second-quantized operators, Jordan–Wigner, molecular / SYK
//!   Hamiltonian generators.
//! * [`hamlib`] — the benchmark suite used by the evaluation.
//! * [`core`] — the MarQSim compiler itself (HTT graph, Algorithm 1 and 2,
//!   transition-matrix optimization, baselines, experiment drivers).
//! * [`engine`] — the parallel compilation engine: a deterministic
//!   priority-aware thread-pool executor, transition-matrix caching, and
//!   the open `Workload` job API (typed `SubmitOptions`, cooperative
//!   cancellation, throttled progress) the evaluation binaries run on.
//! * [`net`] — the dependency-free readiness reactor: a level-triggered
//!   epoll [`Poller`](net::Poller), nonblocking listener/stream wrappers,
//!   a cross-thread [`Wakeup`](net::Wakeup) channel, bounded line framing,
//!   and a [`DeadlineWheel`](net::DeadlineWheel) for connection timeouts.
//! * [`serve`] — the TCP job-submission front-end over the engine: the
//!   `marqsim-served` daemon, its line-delimited JSON wire protocol with a
//!   string-keyed workload registry and per-connection admission control,
//!   an event-loop server built on [`net`], a poll-based blocking client,
//!   and the fleet router that shards jobs across daemons.
//! * [`cluster`] — fleet-building primitives under the router: the
//!   [`HashRing`](cluster::HashRing) consistent-hash ring keyed by
//!   Hamiltonian fingerprint and the [`Membership`](cluster::Membership)
//!   health table with probe scheduling and backoff policy.
//! * [`obs`] — the telemetry subsystem: the process-wide metrics registry
//!   (counters, gauges, latency histograms), structured span tracing with
//!   a `MARQSIM_TRACE` JSONL sink, and the `MARQSIM_LOG` leveled logger.
//! * [`analysis`] — workspace-specific static analysis: the span-aware
//!   lexer, the pluggable lint registry behind the `marqsim-lint` CLI
//!   (lock-order deadlock detection, panic hygiene, env/telemetry/protocol
//!   consistency), and the allowlist machinery.
//! * [`linalg`] — dense complex linear algebra used throughout.
//!
//! # Quick start
//!
//! ```
//! use marqsim::core::{Compiler, CompilerConfig, TransitionStrategy};
//! use marqsim::pauli::Hamiltonian;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // H = 1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY   (Example 4.1 of the paper)
//! let ham = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY")?;
//! let config = CompilerConfig::new(std::f64::consts::FRAC_PI_4, 0.05)
//!     .with_strategy(TransitionStrategy::GateCancellation { qdrift_weight: 0.4 })
//!     .with_seed(7);
//! let compiler = Compiler::new(config);
//! let result = compiler.compile(&ham)?;
//! assert!(result.circuit.cnot_count() > 0);
//! # Ok(())
//! # }
//! ```

pub use marqsim_analysis as analysis;
pub use marqsim_circuit as circuit;
pub use marqsim_cluster as cluster;
pub use marqsim_core as core;
pub use marqsim_engine as engine;
pub use marqsim_fermion as fermion;
pub use marqsim_flow as flow;
pub use marqsim_hamlib as hamlib;
pub use marqsim_linalg as linalg;
pub use marqsim_markov as markov;
pub use marqsim_net as net;
pub use marqsim_obs as obs;
pub use marqsim_pauli as pauli;
pub use marqsim_serve as serve;
pub use marqsim_sim as sim;
