//! The parallel compilation engine on a Fig. 12-style sweep: compiles the
//! BeH2 (froze) benchmark over the paper's ε sweep three ways —
//!
//! 1. the pre-engine loop (the transition matrix, including its
//!    min-cost-flow solve, is rebuilt for every sweep point),
//! 2. the serial driver (`run_sweep`, one build per sweep), and
//! 3. the engine (`Engine::run_sweep`: cached build + worker pool,
//!    `MARQSIM_THREADS` applies)
//!
//! — verifies all three produce identical data, and prints the wall-clock
//! times.
//!
//! ```sh
//! cargo run --release --example engine_sweep
//! ```

use std::time::Instant;

use marqsim::core::experiment::{
    compile_point, point_seed, run_sweep, ExperimentPoint, SweepConfig, SweepResult,
    DEFAULT_EPSILONS,
};
use marqsim::core::{Compiler, CompilerConfig, HttGraph, TransitionStrategy};
use marqsim::engine::Engine;
use marqsim::hamlib::suite::{benchmark_by_name, SuiteScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmark_by_name("BeH2 (froze)", SuiteScale::Reduced).expect("benchmark");
    let strategy = TransitionStrategy::marqsim_gc();
    let config = SweepConfig {
        time: bench.time,
        epsilons: DEFAULT_EPSILONS.to_vec(),
        repeats: 5,
        base_seed: 12,
        evaluate_fidelity: false,
    };
    let points = config.epsilons.len() * config.repeats;
    println!(
        "benchmark: {} ({} qubits, {} Pauli strings), {} sweep points",
        bench.name, bench.qubits, bench.pauli_strings, points
    );

    // 1. Pre-engine behaviour: every point rebuilds the transition matrix.
    let start = Instant::now();
    let mut rebuilt_points: Vec<ExperimentPoint> = Vec::new();
    for (eps_idx, &epsilon) in config.epsilons.iter().enumerate() {
        for rep in 0..config.repeats {
            let seed = point_seed(&config, eps_idx, rep);
            let compiler_config = CompilerConfig::new(config.time, epsilon)
                .with_strategy(strategy.clone())
                .with_seed(seed)
                .without_circuit();
            let result = Compiler::new(compiler_config).compile(&bench.hamiltonian)?;
            rebuilt_points.push(ExperimentPoint {
                epsilon,
                seed,
                num_samples: result.num_samples,
                stats: result.stats,
                fidelity: None,
            });
        }
    }
    let rebuilt = SweepResult {
        label: strategy.label(),
        points: rebuilt_points,
    };
    let t_rebuild = start.elapsed().as_secs_f64();

    // Sanity: the per-point rebuild is the same computation compile_point
    // performs against a shared graph.
    let htt = HttGraph::build(&bench.hamiltonian, &strategy)?;
    let check = compile_point(&htt, &config, config.epsilons[0], point_seed(&config, 0, 0))?;
    assert_eq!(check.stats, rebuilt.points[0].stats);

    // 2. Serial driver: one transition-matrix build per sweep.
    let start = Instant::now();
    let serial = run_sweep(&bench.hamiltonian, &strategy, &config)?;
    let t_serial = start.elapsed().as_secs_f64();

    // 3. The engine: cached build + worker pool.
    let engine = Engine::from_env()?;
    let start = Instant::now();
    let engine_sweep = engine.run_sweep(&bench.hamiltonian, &strategy, &config)?;
    let t_engine = start.elapsed().as_secs_f64();

    for (a, b) in serial.points.iter().zip(&engine_sweep.points) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.num_samples, b.num_samples);
        assert_eq!(a.stats, b.stats);
    }
    for (a, b) in serial.points.iter().zip(&rebuilt.points) {
        assert_eq!(a.stats, b.stats);
    }
    println!("all three paths produce identical sweep data");
    println!();
    println!(
        "per-point matrix rebuild (seed behaviour): {t_rebuild:>7.2} s  ({} flow solves)",
        points
    );
    println!("serial run_sweep (shared graph):           {t_serial:>7.2} s  (1 flow solve)");
    println!(
        "engine ({} threads, warm-capable cache):    {t_engine:>7.2} s  (1 flow solve, pooled points)",
        engine.threads()
    );
    println!();
    println!(
        "speedup vs per-point rebuild: {:.1}x (serial), {:.1}x (engine)",
        t_rebuild / t_serial,
        t_rebuild / t_engine
    );
    let stats = engine.cache().stats();
    println!(
        "engine cache: {} shard(s) x cap {}, hits={} misses={} flow_solves={}",
        engine.cache().shard_count(),
        engine.cache().cap_per_shard(),
        stats.hits,
        stats.misses,
        stats.flow_solves
    );
    Ok(())
}
