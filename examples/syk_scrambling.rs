//! Compiling an SYK-model evolution — the quantum-field-theory benchmark
//! family of Table 1 — and comparing MarQSim against first-order Trotter and
//! randomized-order Trotter baselines at matched rotation counts.
//!
//! ```sh
//! cargo run --release --example syk_scrambling
//! ```

use marqsim::core::{baselines, metrics, Compiler, CompilerConfig, TransitionStrategy};
use marqsim::fermion::syk::{syk_hamiltonian, SykParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ham = syk_hamiltonian(
        &SykParams {
            majoranas: 12,
            coupling: 1.0,
            seed: 7,
        },
        None,
    );
    let time = 0.15;
    println!(
        "SYK model: {} qubits, {} four-Majorana couplings, lambda = {:.3}",
        ham.num_qubits(),
        ham.num_terms(),
        ham.lambda()
    );

    // MarQSim-GC-RP compilation.
    let config = CompilerConfig::new(time, 0.01)
        .with_strategy(TransitionStrategy::marqsim_gc_rp())
        .with_seed(3)
        .without_circuit();
    let marqsim = Compiler::new(config).compile(&ham)?;
    let f_marqsim = metrics::evaluate_fidelity(&marqsim.hamiltonian, time, &marqsim.sequence);

    // First-order Trotter with the same total number of rotations.
    let steps = (marqsim.num_samples / ham.num_terms()).max(1);
    let trotter = baselines::trotter_sequence_natural(&ham, time, steps);
    let f_trotter = baselines::evaluate_baseline_fidelity(&ham, time, &trotter);
    let trotter_stats = metrics::sequence_stats(&ham, &trotter.sequence);

    // Randomized-order Trotter (Childs et al.).
    let random = baselines::random_order_trotter_sequence(&ham, time, steps, 11);
    let f_random = baselines::evaluate_baseline_fidelity(&ham, time, &random);
    let random_stats = metrics::sequence_stats(&ham, &random.sequence);

    println!();
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "method", "rotations", "CNOTs", "accuracy"
    );
    println!(
        "{:<28} {:>10} {:>12} {:>10.5}",
        "first-order Trotter",
        trotter.sequence.len(),
        trotter_stats.cnot,
        f_trotter
    );
    println!(
        "{:<28} {:>10} {:>12} {:>10.5}",
        "random-order Trotter",
        random.sequence.len(),
        random_stats.cnot,
        f_random
    );
    println!(
        "{:<28} {:>10} {:>12} {:>10.5}",
        "MarQSim-GC-RP", marqsim.num_samples, marqsim.stats.cnot, f_marqsim
    );
    println!();
    println!(
        "(the SYK Hamiltonian has dense all-to-all couplings, so term ordering matters: MarQSim \
         trades a tiny amount of sampling randomness for CNOT cancellation)"
    );
    Ok(())
}
