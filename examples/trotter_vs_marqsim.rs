//! Deterministic vs randomized vs MarQSim compilation on a spin chain:
//! reproduces the §3 motivation by comparing first-order Trotter (fixed
//! order), randomized-order Trotter, qDRIFT, and MarQSim-GC on the
//! transverse-field Ising model at equal gate budgets.
//!
//! ```sh
//! cargo run --release --example trotter_vs_marqsim
//! ```

use marqsim::core::{baselines, metrics, Compiler, CompilerConfig, TransitionStrategy};
use marqsim::hamlib::spin::transverse_field_ising;
use marqsim::pauli::ordering;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ham = transverse_field_ising(6, 1.0, 0.7, false);
    let time = 0.6;
    println!(
        "transverse-field Ising chain: {} qubits, {} terms, lambda = {:.2}",
        ham.num_qubits(),
        ham.num_terms(),
        ham.lambda()
    );

    // Budget: the qDRIFT sample count at epsilon = 0.02.
    let epsilon = 0.02;
    let budget = ((2.0 * ham.lambda() * ham.lambda() * time * time) / epsilon).ceil() as usize;
    let steps = (budget / ham.num_terms()).max(1);
    println!("rotation budget: {budget} sampled rotations ≈ {steps} Trotter steps");
    println!();

    println!(
        "{:<32} {:>10} {:>12} {:>10}",
        "method", "rotations", "CNOTs", "accuracy"
    );

    // Deterministic Trotter, natural and cancellation-greedy orders.
    for (label, order) in [
        (
            "Trotter (natural order)",
            (0..ham.num_terms()).collect::<Vec<_>>(),
        ),
        (
            "Trotter (greedy-cancel order)",
            ordering::greedy_cancellation(&ham),
        ),
    ] {
        let result = baselines::trotter_sequence(&ham, time, steps, &order);
        let stats = metrics::sequence_stats(&ham, &result.sequence);
        let f = baselines::evaluate_baseline_fidelity(&ham, time, &result);
        println!(
            "{:<32} {:>10} {:>12} {:>10.5}",
            label,
            result.sequence.len(),
            stats.cnot,
            f
        );
    }

    // Randomized-order Trotter.
    let random = baselines::random_order_trotter_sequence(&ham, time, steps, 5);
    let stats = metrics::sequence_stats(&ham, &random.sequence);
    let f = baselines::evaluate_baseline_fidelity(&ham, time, &random);
    println!(
        "{:<32} {:>10} {:>12} {:>10.5}",
        "Trotter (random order / step)",
        random.sequence.len(),
        stats.cnot,
        f
    );

    // qDRIFT and MarQSim at the same budget.
    for (label, strategy) in [
        ("qDRIFT (baseline)", TransitionStrategy::baseline()),
        ("MarQSim-GC", TransitionStrategy::marqsim_gc()),
        ("MarQSim-GC-RP", TransitionStrategy::marqsim_gc_rp()),
    ] {
        let cfg = CompilerConfig::new(time, epsilon)
            .with_strategy(strategy)
            .with_seed(2)
            .with_sample_count(budget)
            .without_circuit();
        let result = Compiler::new(cfg).compile(&ham)?;
        let f = metrics::evaluate_fidelity(&result.hamiltonian, time, &result.sequence);
        println!(
            "{:<32} {:>10} {:>12} {:>10.5}",
            label, result.num_samples, result.stats.cnot, f
        );
    }
    println!();
    println!(
        "MarQSim inherits qDRIFT's accuracy while recovering most of the CNOT savings that \
         deterministic ordering enjoys."
    );
    Ok(())
}
