//! Submitting compilation jobs to a MarQSim service over TCP.
//!
//! Spawns an in-process `marqsim-serve` server (the same machinery the
//! `marqsim-served` daemon runs), connects two clients, and shows the three
//! service features: streamed per-job progress, the shared warm transition
//! cache across connections, and cooperative cancellation.
//!
//! Run with `cargo run --example serve_roundtrip`.

use std::sync::Arc;

use marqsim::core::experiment::SweepConfig;
use marqsim::core::TransitionStrategy;
use marqsim::engine::{Engine, EngineConfig};
use marqsim::pauli::Hamiltonian;
use marqsim::serve::{Client, Outcome, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Arc::new(Engine::new(EngineConfig::default().with_threads(2)));
    let server = Server::bind("127.0.0.1:0", engine)?.spawn()?;
    println!("server listening on {}", server.addr());

    let ham =
        Hamiltonian::parse("0.9 ZZZZ + 0.8 ZZIZ + 0.7 XXII + 0.6 IYYI + 0.5 IIZZ + 0.4 XYXY")?;
    let config = SweepConfig {
        time: 0.5,
        epsilons: vec![0.1, 0.05],
        repeats: 3,
        base_seed: 7,
        evaluate_fidelity: false,
    };

    // Client 1: submit a gate-cancellation sweep and stream its progress.
    let mut alice = Client::connect(server.addr())?;
    let job = alice.submit_sweep("alice/gc", &ham, &TransitionStrategy::marqsim_gc(), &config)?;
    println!("alice submitted job {job}");
    let result = alice.wait_with_progress(job, |completed, total| {
        println!("  alice progress: {completed}/{total}");
    })?;
    if let Outcome::Sweep(sweep) = &result.outcome {
        let total_cnot: usize = sweep.points.iter().map(|p| p.stats.cnot).sum();
        println!(
            "alice done: {} points, {} CNOTs total, {} min-cost-flow solves",
            sweep.points.len(),
            total_cnot,
            result.cache_delta.flow_solves
        );
    }

    // Client 2: the identical sweep on a second connection is answered from
    // the shared warm cache — zero flow solves.
    let mut bob = Client::connect(server.addr())?;
    let job = bob.submit_sweep("bob/gc", &ham, &TransitionStrategy::marqsim_gc(), &config)?;
    let result = bob.wait(job)?;
    println!(
        "bob done: warm cache served his job with {} flow solves",
        result.cache_delta.flow_solves
    );

    // Cancellation: submit a large sweep and cancel it immediately.
    let big = SweepConfig {
        epsilons: vec![0.1; 10],
        repeats: 10,
        ..config
    };
    let job = bob.submit_sweep("bob/cancelled", &ham, &TransitionStrategy::QDrift, &big)?;
    bob.cancel(job)?;
    match bob.wait(job) {
        Err(marqsim::serve::ClientError::JobFailed { kind, .. }) => {
            println!("bob's big job terminated as '{kind}'");
        }
        Ok(_) => println!("bob's big job finished before the cancel landed"),
        Err(other) => return Err(other.into()),
    }

    server.shutdown();
    Ok(())
}
