//! Reasoning about convergence speed through transition-matrix spectra
//! (§5.4 / §5.5 of the paper): reproduces the Example 5.3 analysis and shows
//! how random perturbation pushes the sub-dominant eigenvalues down, which
//! translates directly into lower sampling variance.
//!
//! ```sh
//! cargo run --release --example spectral_analysis
//! ```

use marqsim::core::perturb::PerturbationConfig;
use marqsim::core::transition::build_transition_matrix;
use marqsim::core::{metrics, Compiler, CompilerConfig, TransitionStrategy};
use marqsim::markov::spectra::spectrum;
use marqsim::pauli::Hamiltonian;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 5.3 of the paper.
    let ham = Hamiltonian::parse("1.0 IIIZY + 1.0 XXIII + 0.7 ZXZYI + 0.5 IIZZX + 0.3 XXYYZ")?;
    let time = 0.4;

    let strategies = vec![
        ("Pqd (vanilla qDRIFT)", TransitionStrategy::QDrift),
        (
            "0.4 Pqd + 0.6 Pgc",
            TransitionStrategy::GateCancellation { qdrift_weight: 0.4 },
        ),
        (
            "0.4 Pqd + 0.3 Pgc + 0.3 Prp",
            TransitionStrategy::Combined {
                qdrift_weight: 0.4,
                gc_weight: 0.3,
                rp_weight: 0.3,
                perturbation: PerturbationConfig {
                    samples: 50,
                    seed: 1,
                    ..Default::default()
                },
            },
        ),
    ];

    println!("transition-matrix spectra (eigenvalue magnitudes, descending):");
    for (label, strategy) in &strategies {
        let p = build_transition_matrix(&ham, strategy)?;
        let s = spectrum(&p);
        let values: Vec<String> = s.values.iter().map(|v| format!("{v:.3}")).collect();
        println!(
            "  {:<28} [{}]  gap = {:.3}",
            label,
            values.join(", "),
            s.spectral_gap()
        );
    }

    // Empirical sampling variance: repeat the compilation with different
    // seeds and look at the spread of the achieved accuracy.
    println!();
    println!("empirical accuracy spread over 8 seeds (N fixed to 400 samples):");
    for (label, strategy) in &strategies {
        let mut accuracies = Vec::new();
        for seed in 0..8 {
            let cfg = CompilerConfig::new(time, 0.05)
                .with_strategy(strategy.clone())
                .with_seed(seed)
                .with_sample_count(400)
                .without_circuit();
            let result = Compiler::new(cfg).compile(&ham)?;
            accuracies.push(metrics::evaluate_fidelity(
                &result.hamiltonian,
                time,
                &result.sequence,
            ));
        }
        let mean = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
        let var = accuracies
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / accuracies.len() as f64;
        println!(
            "  {:<28} mean accuracy = {:.5}, std = {:.5}",
            label,
            mean,
            var.sqrt()
        );
    }
    println!();
    println!("smaller sub-dominant eigenvalues -> faster mixing -> smaller accuracy spread.");
    Ok(())
}
