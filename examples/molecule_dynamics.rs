//! Simulating a (synthetic) molecular Hamiltonian: the workload the paper's
//! introduction motivates. Builds an electronic-structure-style Hamiltonian
//! via the in-repo Jordan–Wigner pipeline, compiles it with the baseline and
//! with MarQSim, and reports the gate savings and the accuracy of the
//! compiled evolution.
//!
//! ```sh
//! cargo run --release --example molecule_dynamics
//! ```

use marqsim::core::{metrics, Compiler, CompilerConfig, TransitionStrategy};
use marqsim::fermion::molecular::{molecular_hamiltonian, MolecularParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-spin-orbital synthetic molecule (Na+-class size at reduced scale).
    let params = MolecularParams {
        spin_orbitals: 8,
        seed: 42,
        ..Default::default()
    };
    let ham = molecular_hamiltonian(&params, Some(60))?;
    let time = std::f64::consts::FRAC_PI_4;

    println!(
        "synthetic molecule: {} qubits, {} Pauli strings, lambda = {:.2}",
        ham.num_qubits(),
        ham.num_terms(),
        ham.lambda()
    );

    let mut rows = Vec::new();
    for epsilon in [0.1, 0.05, 0.033] {
        let compile = |strategy: TransitionStrategy, seed: u64| {
            let cfg = CompilerConfig::new(time, epsilon)
                .with_strategy(strategy)
                .with_seed(seed)
                .without_circuit();
            Compiler::new(cfg).compile(&ham)
        };
        let baseline = compile(TransitionStrategy::baseline(), 1)?;
        let marqsim = compile(TransitionStrategy::marqsim_gc_rp(), 1)?;
        let f_base = metrics::evaluate_fidelity(&baseline.hamiltonian, time, &baseline.sequence);
        let f_marq = metrics::evaluate_fidelity(&marqsim.hamiltonian, time, &marqsim.sequence);
        rows.push((
            epsilon,
            baseline.stats.cnot,
            f_base,
            marqsim.stats.cnot,
            f_marq,
        ));
    }

    println!();
    println!(
        "{:>8} | {:>14} {:>10} | {:>14} {:>10} | {:>10}",
        "epsilon", "baseline CNOT", "accuracy", "MarQSim CNOT", "accuracy", "reduction"
    );
    for (eps, base_cnot, f_base, marq_cnot, f_marq) in rows {
        println!(
            "{:>8.3} | {:>14} {:>10.4} | {:>14} {:>10.4} | {:>9.1}%",
            eps,
            base_cnot,
            f_base,
            marq_cnot,
            f_marq,
            100.0 * (1.0 - marq_cnot as f64 / base_cnot as f64)
        );
    }
    println!();
    println!("MarQSim keeps the qDRIFT accuracy while cutting the CNOT count.");
    Ok(())
}
