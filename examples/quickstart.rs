//! Quickstart: compile the paper's running example (Example 4.1) with every
//! MarQSim configuration and compare the resulting circuits.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use marqsim::core::{metrics, Compiler, CompilerConfig, TransitionStrategy};
use marqsim::pauli::Hamiltonian;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // H = 1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY (Example 4.1).
    let ham = Hamiltonian::parse("1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY")?;
    let time = std::f64::consts::FRAC_PI_4;
    let epsilon = 0.02;

    println!("Hamiltonian: {ham}");
    println!(
        "lambda = {:.3}, qubits = {}",
        ham.lambda(),
        ham.num_qubits()
    );
    println!();

    for strategy in [
        TransitionStrategy::baseline(),
        TransitionStrategy::marqsim_gc(),
        TransitionStrategy::marqsim_gc_rp(),
    ] {
        let config = CompilerConfig::new(time, epsilon)
            .with_strategy(strategy.clone())
            .with_seed(7);
        let result = Compiler::new(config).compile(&ham)?;
        let fidelity = metrics::evaluate_fidelity(&result.hamiltonian, time, &result.sequence);
        println!("{}", strategy.label());
        println!("  samples (N)          : {}", result.num_samples);
        println!("  sequence CNOTs       : {}", result.stats.cnot);
        println!("  sequence total gates : {}", result.stats.total);
        println!("  circuit CNOTs        : {}", result.circuit.cnot_count());
        println!("  circuit depth        : {}", result.circuit.depth());
        println!("  unitary fidelity     : {fidelity:.5}");
        println!();
    }

    // The transition matrix actually sampled by MarQSim-GC (Equation (15)).
    let config = CompilerConfig::new(time, epsilon)
        .with_strategy(TransitionStrategy::marqsim_gc())
        .with_seed(7);
    let result = Compiler::new(config).compile(&ham)?;
    println!("MarQSim-GC transition matrix (rows = previous term):");
    for i in 0..result.transition.num_states() {
        let row: Vec<String> = result
            .transition
            .row(i)
            .iter()
            .map(|p| format!("{p:.2}"))
            .collect();
        println!("  [{}]", row.join(", "));
    }
    Ok(())
}
